#include "core/robust/orbit_sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/robust/coalition_sweep.h"
#include "util/audit.h"
#include "util/execution_grant.h"
#include "util/orbit_walker.h"
#include "util/thread_pool.h"
#include "util/work_counters.h"

namespace bnash::core {
namespace {

using game::QuotientGame;
using game::SymmetryGroup;
using util::OrbitWalker;
using util::Rational;

// Same polling cadence as the dense serial scans: flush the pending
// counter chunk, then check the grant, so overshoot past a budget is
// bounded by one chunk per executing scan.
constexpr std::uint64_t kGrantCheckCells = 2048;

// Enumerate (x_0..x_{m-1}) with sum x_i == total and x_i <= cap[i],
// x_0-major descending lex (everything in the first class first). fn()
// reads `x` and returns false to stop; the enumerator then propagates
// the false. Vectors this enumerates are per-class coalition/faulty
// SIZES — the orbit analogue of util::SubsetEnumerator's subset lists.
template <typename Fn>
bool bounded_compositions_rec(std::vector<std::size_t>& x, const std::vector<std::size_t>& cap,
                              std::size_t pos, std::size_t remaining, const Fn& fn) {
    if (pos + 1 == x.size()) {
        if (remaining > cap[pos]) return true;  // no completion at this leaf
        x[pos] = remaining;
        return fn();
    }
    const std::size_t top = std::min(remaining, cap[pos]);
    for (std::size_t v = top + 1; v-- > 0;) {
        x[pos] = v;
        if (!bounded_compositions_rec(x, cap, pos + 1, remaining - v, fn)) return false;
    }
    return true;
}

template <typename Fn>
bool for_each_bounded_composition(std::size_t total, const std::vector<std::size_t>& cap,
                                  std::vector<std::size_t>& x, const Fn& fn) {
    x.assign(cap.size(), 0);
    return bounded_compositions_rec(x, cap, 0, total, fn);
}

// Everything one (ccounts, tcounts) resilience scan needs; `cls` lists
// the classes with coalition members.
struct PairContext final {
    const QuotientGame* quotient = nullptr;
    const SymmetryGroup* group = nullptr;
    const std::vector<std::size_t>* base = nullptr;
    std::vector<std::size_t> ccounts;
    std::vector<std::size_t> tcounts;
    std::vector<std::size_t> cls;
    GainCriterion criterion = GainCriterion::kAnyMemberGains;
};

// Expand a representative tuple back to a CONCRETE violation: per class,
// the first t_c members are faulty and the next c_c form the coalition,
// each block taking its histogram's actions in ascending order. The
// payoffs at this concrete tuple equal the representative's by symmetry,
// so the dense checker validates the witness as-is.
RobustnessViolation make_resilience_witness(const PairContext& ctx, const OrbitWalker& walker,
                                            std::size_t witness_class,
                                            std::size_t witness_action, const Rational& before,
                                            const Rational& after) {
    const auto& classes = ctx.group->classes();
    const std::size_t m = ctx.quotient->num_classes();
    RobustnessViolation v;
    for (std::size_t c = 0; c < m; ++c) {
        const auto& members = classes[c];
        std::size_t next = 0;
        const auto& fh = walker.counts(c);
        for (std::size_t a = 0; a < fh.size(); ++a) {
            for (std::size_t r = 0; r < fh[a]; ++r) {
                v.faulty.push_back(members[next++]);
                v.faulty_deviation.push_back(a);
            }
        }
        const auto& ch = walker.counts(m + c);
        for (std::size_t a = 0; a < ch.size(); ++a) {
            for (std::size_t r = 0; r < ch[a]; ++r) {
                v.coalition.push_back(members[next++]);
                v.coalition_deviation.push_back(a);
            }
        }
    }
    // The coalition member of witness_class assigned witness_action: its
    // class block starts after the faulty members, actions ascending.
    std::size_t offset = ctx.tcounts[witness_class];
    const auto& ch = walker.counts(m + witness_class);
    for (std::size_t a = 0; a < witness_action; ++a) offset += ch[a];
    v.witness_player = classes[witness_class][offset];
    v.payoff_before = before.to_double();
    v.payoff_after = after.to_double();
    return v;
}

struct RangeResult final {
    std::optional<RobustnessViolation> violation;
    std::uint64_t hit_rank = 0;
    bool truncated = false;
};

// Scan joint orbits [walker.rank(), hi) of a faulty-digits-then-
// coalition-digits walker (m digits each). Per-class reference payoffs
// are refreshed only when the faulty digits move (they are the SLOW
// digits, so refreshes are rare). Charges its own cells and digit moves
// to util::work_counters — callers never re-charge — and polls the
// grant every kGrantCheckCells cells; `best`, when given, is the block
// sweep's winning-rank early exit.
RangeResult scan_resilience_range(const PairContext& ctx, OrbitWalker& walker, std::uint64_t hi,
                                  util::ExecutionGrant* grant,
                                  const std::atomic<std::uint64_t>* best) {
    const QuotientGame& q = *ctx.quotient;
    const std::vector<std::size_t>& base = *ctx.base;
    const std::size_t m = q.num_classes();
    RangeResult out;
    const std::uint64_t moves_entry = walker.digit_moves();
    std::uint64_t scanned = 0;
    std::uint64_t flushed_cells = 0;
    std::uint64_t flushed_moves = 0;
    const auto flush = [&] {
        const std::uint64_t moves = walker.digit_moves() - moves_entry;
        util::work_counters_add(scanned - flushed_cells, moves - flushed_moves);
        flushed_cells = scanned;
        flushed_moves = moves;
    };

    std::vector<std::vector<std::size_t>> others(m);
    for (std::size_t d = 0; d < m; ++d) others[d].assign(q.class_actions[d], 0);
    std::vector<Rational> ref(m);
    bool ref_valid = false;
    // Reference payoff of a class-c coalition member when the whole
    // coalition still plays the candidate against the same faulty
    // deviation: others = fh_d + (n_d - t_d) at base_d, minus itself.
    const auto refresh_ref = [&] {
        for (const std::size_t c : ctx.cls) {
            for (std::size_t d = 0; d < m; ++d) {
                const auto& fh = walker.counts(d);
                auto& h = others[d];
                for (std::size_t a = 0; a < h.size(); ++a) h[a] = fh[a];
                h[base[d]] += q.class_sizes[d] - ctx.tcounts[d];
            }
            others[c][base[c]] -= 1;
            ref[c] = q.at(c, base[c], q.rank_others(c, others));
        }
        ref_valid = true;
    };

    for (std::uint64_t rank = walker.rank(); rank < hi; ++rank) {
        ++scanned;
        if (grant != nullptr && (scanned % kGrantCheckCells) == 0) {
            flush();
            if (grant->expired()) {
                out.truncated = true;
                return out;
            }
        }
        if (best != nullptr && (scanned & 255) == 0 &&
            rank >= best->load(std::memory_order_acquire)) {
            flush();
            return out;  // a lower rank already won; yield
        }
        if (!ref_valid || walker.lowest_changed() < m) refresh_ref();
        // Deviated-profile template: faulty histogram + coalition
        // histogram + everyone else on the candidate.
        for (std::size_t d = 0; d < m; ++d) {
            const auto& fh = walker.counts(d);
            const auto& ch = walker.counts(m + d);
            auto& h = others[d];
            for (std::size_t a = 0; a < h.size(); ++a) h[a] = fh[a] + ch[a];
            h[base[d]] += q.class_sizes[d] - ctx.tcounts[d] - ctx.ccounts[d];
        }
        bool any_gain = false;
        bool all_gain = true;
        std::size_t witness_class = 0;
        std::size_t witness_action = 0;
        const Rational* witness_before = nullptr;
        Rational witness_after;
        for (const std::size_t c : ctx.cls) {
            const auto& ch = walker.counts(m + c);
            for (std::size_t a = 0; a < ch.size(); ++a) {
                if (ch[a] == 0) continue;
                others[c][a] -= 1;
                const Rational& after = q.at(c, a, q.rank_others(c, others));
                others[c][a] += 1;
                if (after > ref[c]) {
                    if (!any_gain) {
                        witness_class = c;
                        witness_action = a;
                        witness_before = &ref[c];
                        witness_after = after;
                    }
                    any_gain = true;
                } else {
                    all_gain = false;
                }
            }
        }
        const bool violated =
            ctx.criterion == GainCriterion::kAnyMemberGains ? any_gain : all_gain;
        if (violated) {
            out.hit_rank = rank;
            out.violation = make_resilience_witness(ctx, walker, witness_class, witness_action,
                                                    *witness_before, witness_after);
            flush();
            return out;
        }
        if (rank + 1 < hi && !walker.advance()) break;
    }
    flush();
    return out;
}

// Same gate as the dense per-faulty-set scans: kAuto, above the
// sweep-resolved split threshold, and either a real pool or the force
// hook. Orbit pair scans are the whole sweep's work (one scan at a
// time), so the adaptive policy sees num_tasks = 1.
bool should_split(game::SweepMode mode, std::uint64_t total) {
    if (mode != game::SweepMode::kAuto) return false;
    if (total < CoalitionSweep::sweep_intra_split_cells(1, total)) return false;
    if (total < 2 * CoalitionSweep::intra_block_cells()) return false;
    return util::global_pool().size() > 1 || CoalitionSweep::intra_split_force();
}

}  // namespace

OrbitSweep::OrbitSweep(QuotientGame quotient, SymmetryGroup group,
                       std::vector<std::size_t> base_by_class)
    : quotient_(std::move(quotient)), group_(std::move(group)), base_(std::move(base_by_class)) {
    const std::size_t m = quotient_.num_classes();
    if (group_.num_classes() != m) {
        throw std::invalid_argument("OrbitSweep: group/quotient class count mismatch");
    }
    for (std::size_t c = 0; c < m; ++c) {
        if (group_.classes()[c].size() != quotient_.class_sizes[c]) {
            throw std::invalid_argument("OrbitSweep: group/quotient class size mismatch");
        }
    }
    if (base_.size() != m) {
        throw std::invalid_argument("OrbitSweep: base profile class count mismatch");
    }
    for (std::size_t c = 0; c < m; ++c) {
        if (base_[c] >= quotient_.class_actions[c]) {
            throw std::invalid_argument("OrbitSweep: base action out of range");
        }
    }
    if (quotient_.others_orbits_.size() != m) quotient_.finalize();
    // Candidate payoff per class: everyone on base, minus the evaluated
    // member itself.
    std::vector<std::vector<std::size_t>> others(m);
    for (std::size_t d = 0; d < m; ++d) {
        others[d].assign(quotient_.class_actions[d], 0);
        others[d][base_[d]] = quotient_.class_sizes[d];
    }
    baseline_.resize(m);
    for (std::size_t c = 0; c < m; ++c) {
        others[c][base_[c]] -= 1;
        baseline_[c] = quotient_.at(c, base_[c], quotient_.rank_others(c, others));
        others[c][base_[c]] += 1;
    }
}

RobustnessViolation OrbitSweep::make_immunity_witness(const std::vector<std::size_t>& tcounts,
                                                      const OrbitWalker& walker,
                                                      std::size_t witness_class,
                                                      const Rational& after) const {
    const auto& classes = group_.classes();
    RobustnessViolation v;
    for (std::size_t c = 0; c < quotient_.num_classes(); ++c) {
        const auto& members = classes[c];
        std::size_t next = 0;
        const auto& fh = walker.counts(c);
        for (std::size_t a = 0; a < fh.size(); ++a) {
            for (std::size_t r = 0; r < fh[a]; ++r) {
                v.faulty.push_back(members[next++]);
                v.faulty_deviation.push_back(a);
            }
        }
    }
    // First outsider of the hurt class: its members [0, t_c) are faulty.
    v.witness_player = classes[witness_class][tcounts[witness_class]];
    v.payoff_before = baseline_[witness_class].to_double();
    v.payoff_after = after.to_double();
    return v;
}

OrbitSweep::ScanOutcome OrbitSweep::immunity_scan(std::size_t faulty_size) const {
    ScanOutcome out;
    if (faulty_size == 0) return out;
    const std::size_t m = quotient_.num_classes();
    util::ExecutionGrant* const grant = util::active_grant();
    if (grant != nullptr && grant->expired()) {
        out.truncated = true;
        return out;
    }
    std::uint64_t cells = 0;
    std::uint64_t carried_moves = 0;
    std::uint64_t flushed_cells = 0;
    std::uint64_t flushed_moves = 0;
    OrbitWalker walker;
    const auto flush = [&] {
        const std::uint64_t moves = carried_moves + walker.digit_moves();
        util::work_counters_add(cells - flushed_cells, moves - flushed_moves);
        flushed_cells = cells;
        flushed_moves = moves;
    };
    std::vector<std::vector<std::size_t>> others(m);
    for (std::size_t d = 0; d < m; ++d) others[d].assign(quotient_.class_actions[d], 0);
    std::vector<std::size_t> tcounts;
    for_each_bounded_composition(faulty_size, quotient_.class_sizes, tcounts, [&] {
        carried_moves += walker.digit_moves();
        walker.clear();
        walker.reserve(m);
        for (std::size_t d = 0; d < m; ++d) {
            walker.add_class(tcounts[d], quotient_.class_actions[d]);
        }
        bool more = true;
        while (more) {
            ++cells;
            if (grant != nullptr && (cells % kGrantCheckCells) == 0) {
                flush();
                if (grant->expired()) {
                    out.truncated = true;
                    return false;
                }
            }
            // Every class with an outsider left checks its candidate
            // payoff against the faulty deviation.
            for (std::size_t c = 0; c < m; ++c) {
                if (tcounts[c] >= quotient_.class_sizes[c]) continue;
                for (std::size_t d = 0; d < m; ++d) {
                    const auto& fh = walker.counts(d);
                    auto& h = others[d];
                    for (std::size_t a = 0; a < h.size(); ++a) h[a] = fh[a];
                    h[base_[d]] += quotient_.class_sizes[d] - tcounts[d];
                }
                others[c][base_[c]] -= 1;
                const Rational& after =
                    quotient_.at(c, base_[c], quotient_.rank_others(c, others));
                if (after < baseline_[c]) {
                    out.violation = make_immunity_witness(tcounts, walker, c, after);
                    flush();
                    return false;
                }
            }
            more = walker.advance();
        }
        return true;
    });
    flush();
    return out;
}

OrbitSweep::ScanOutcome OrbitSweep::resilience_scan(std::size_t coalition_size,
                                                    std::size_t faulty_size,
                                                    GainCriterion criterion,
                                                    game::SweepMode mode) const {
    ScanOutcome out;
    if (coalition_size == 0) return out;
    const std::size_t m = quotient_.num_classes();
    util::ExecutionGrant* const grant = util::active_grant();
    if (grant != nullptr && grant->expired()) {
        out.truncated = true;
        return out;
    }
    PairContext ctx;
    ctx.quotient = &quotient_;
    ctx.group = &group_;
    ctx.base = &base_;
    ctx.criterion = criterion;
    std::vector<std::size_t> ccounts;
    std::vector<std::size_t> tcounts;
    std::vector<std::size_t> fcap(m);
    for_each_bounded_composition(coalition_size, quotient_.class_sizes, ccounts, [&] {
        ctx.ccounts = ccounts;
        ctx.cls.clear();
        for (std::size_t d = 0; d < m; ++d) {
            if (ccounts[d] > 0) ctx.cls.push_back(d);
            fcap[d] = quotient_.class_sizes[d] - ccounts[d];
        }
        return for_each_bounded_composition(faulty_size, fcap, tcounts, [&] {
            ctx.tcounts = tcounts;
            OrbitWalker proto;
            proto.reserve(2 * m);
            for (std::size_t d = 0; d < m; ++d) {
                proto.add_class(tcounts[d], quotient_.class_actions[d]);
            }
            for (std::size_t d = 0; d < m; ++d) {
                proto.add_class(ccounts[d], quotient_.class_actions[d]);
            }
            const std::uint64_t total = proto.num_orbits();
            if (!should_split(mode, total)) {
                proto.reset();
                RangeResult run = scan_resilience_range(ctx, proto, total, grant, nullptr);
                if (run.violation) {
                    out.violation = std::move(run.violation);
                    return false;
                }
                if (run.truncated) {
                    out.truncated = true;
                    return false;
                }
                return true;
            }
            // Ranged seek() blocks on the pool, deterministic lowest-rank
            // winner — the orbit mirror of intra_resilience_scan. Block
            // size growth keeps the bookkeeping bounded on huge scans.
            constexpr std::uint64_t kMaxIntraBlocks = 4096;
            const std::uint64_t block_cells =
                std::max(CoalitionSweep::intra_block_cells(),
                         (total + kMaxIntraBlocks - 1) / kMaxIntraBlocks);
            const std::uint64_t num_blocks = (total + block_cells - 1) / block_cells;
            std::atomic<std::uint64_t> best{total};
            std::vector<std::optional<RobustnessViolation>> found(num_blocks);
            std::vector<std::uint64_t> hit_rank(num_blocks, total);
            std::vector<std::pair<std::uint64_t, std::exception_ptr>> errors(num_blocks,
                                                                             {total, nullptr});
            util::global_pool().run_blocks(
                static_cast<std::size_t>(num_blocks), [&](std::size_t block) {
                    const std::uint64_t lo = block * block_cells;
                    const std::uint64_t hi = std::min(total, lo + block_cells);
                    if (lo >= best.load(std::memory_order_acquire)) return;
                    try {
                        OrbitWalker walker = proto;
                        walker.seek(lo);
                        RangeResult run = scan_resilience_range(ctx, walker, hi, grant, &best);
                        if (run.violation) {
                            found[block] = std::move(run.violation);
                            hit_rank[block] = run.hit_rank;
                            std::uint64_t current = best.load(std::memory_order_acquire);
                            while (run.hit_rank < current &&
                                   !best.compare_exchange_weak(current, run.hit_rank,
                                                               std::memory_order_acq_rel)) {
                            }
                        }
                    } catch (...) {
                        errors[block] = {lo, std::current_exception()};
                    }
                });
            const std::uint64_t winner = best.load(std::memory_order_acquire);
            std::uint64_t error_rank = total;
            std::exception_ptr error;
            for (std::size_t block = 0; block < num_blocks; ++block) {
                if (errors[block].second != nullptr && errors[block].first < error_rank) {
                    error_rank = errors[block].first;
                    error = errors[block].second;
                }
            }
            // Serial-equivalent error surfacing: an error below the
            // winning rank is what the in-order scan would have hit
            // first.
            if (error != nullptr && error_rank < winner) std::rethrow_exception(error);
            if (winner < total) {
                for (std::size_t block = 0; block < num_blocks; ++block) {
                    if (hit_rank[block] == winner) {
                        out.violation = std::move(found[block]);
                        break;
                    }
                }
                return false;
            }
            if (grant != nullptr && grant->expired()) {
                out.truncated = true;
                return false;
            }
            return true;
        });
    });
    return out;
}

std::optional<RobustnessViolation> OrbitSweep::immunity_violation(std::size_t t,
                                                                  game::SweepMode mode) const {
    // Orbit immunity spaces are composition-sized — always serial.
    (void)mode;
    for (std::size_t s = 1; s <= t; ++s) {
        ScanOutcome outcome = immunity_scan(s);
        if (outcome.violation) return outcome.violation;
        if (outcome.truncated) return std::nullopt;  // caller checks the grant
    }
    return std::nullopt;
}

std::optional<RobustnessViolation> OrbitSweep::resilience_violation(std::size_t k, std::size_t t,
                                                                    GainCriterion criterion,
                                                                    game::SweepMode mode) const {
    // Coalition-size-major, faulty-size-minor: the first hit has the
    // smallest breaking coalition, like the dense size-major task order.
    for (std::size_t coalition_size = 1; coalition_size <= k; ++coalition_size) {
        for (std::size_t faulty_size = 0; faulty_size <= t; ++faulty_size) {
            ScanOutcome outcome = resilience_scan(coalition_size, faulty_size, criterion, mode);
            if (outcome.violation) return outcome.violation;
            if (outcome.truncated) return std::nullopt;
        }
    }
    return std::nullopt;
}

std::optional<RobustnessViolation> OrbitSweep::robustness_violation(
    std::size_t k, std::size_t t, const RobustnessOptions& options) const {
    if (auto violation = immunity_violation(t, options.mode)) return violation;
    return resilience_violation(k, t, options.criterion, options.mode);
}

std::optional<RobustnessViolation> OrbitSweep::robustness_violation(
    std::size_t k, std::size_t t, const RobustnessOptions& options,
    const SweepCheckpoint* resume, SweepCheckpoint* checkpoint) const {
    // An empty checkpoint (no progress recorded) is a fresh run.
    if (resume != nullptr && !resume->immunity_done && resume->immunity_next == 0) {
        resume = nullptr;
    }
    if (checkpoint != nullptr) *checkpoint = SweepCheckpoint{};
    // Part (a) over faulty sizes. Scans below the recorded size were
    // verified clean by the earlier runs, so any hit here is the
    // global-first witness (smallest-size-first order is fixed).
    if (!(resume != nullptr && resume->immunity_done)) {
        const std::size_t start_s =
            resume != nullptr ? static_cast<std::size_t>(resume->immunity_next) : 1;
        for (std::size_t s = std::max<std::size_t>(start_s, 1); s <= t; ++s) {
            ScanOutcome outcome = immunity_scan(s);
            if (outcome.violation) {
                if (checkpoint != nullptr) checkpoint->finished = true;
                return outcome.violation;
            }
            if (outcome.truncated) {
                if (checkpoint != nullptr) checkpoint->immunity_next = s;
                return std::nullopt;
            }
        }
    }
    if (checkpoint != nullptr) checkpoint->immunity_done = true;
    // Part (b) over (coalition size, faulty size) pairs, sc-major; the
    // checkpoint linearizes the pair to its scan rank.
    const std::size_t row = t + 1;
    const std::size_t start_rank = resume != nullptr && resume->immunity_done
                                       ? static_cast<std::size_t>(resume->next_task)
                                       : 0;
    // A resume rank beyond the (sc, st) scan space means the checkpoint
    // was recorded against different sweep parameters.
    BNASH_AUDIT_CHECK(start_rank <= k * row,
                      "OrbitSweep: checkpoint resume rank lies beyond the "
                      "(coalition, faulty) scan space");
    for (std::size_t sc = 1; sc <= k; ++sc) {
        for (std::size_t st = 0; st <= t; ++st) {
            const std::size_t rank = (sc - 1) * row + st;
            if (rank < start_rank) continue;  // verified by earlier runs
            ScanOutcome outcome = resilience_scan(sc, st, options.criterion, options.mode);
            if (outcome.violation) {
                if (checkpoint != nullptr) checkpoint->finished = true;
                return outcome.violation;
            }
            if (outcome.truncated) {
                if (checkpoint != nullptr) checkpoint->next_task = rank;
                return std::nullopt;
            }
        }
    }
    if (checkpoint != nullptr) checkpoint->finished = true;
    return std::nullopt;
}

OrbitSweep::Boundary OrbitSweep::immunity_boundary(std::size_t max_t) const {
    return immunity_boundary_phase(1, max_t).boundary;
}

OrbitSweep::BoundaryPhase OrbitSweep::immunity_boundary_phase(std::size_t start_s,
                                                              std::size_t max_t) const {
    BoundaryPhase phase;
    Boundary& boundary = phase.boundary;
    boundary.max_ok = start_s > 1 ? start_s - 1 : 0;
    for (std::size_t s = std::max<std::size_t>(start_s, 1); s <= max_t; ++s) {
        ScanOutcome outcome = immunity_scan(s);
        if (outcome.violation) {
            boundary.max_ok = s - 1;
            boundary.violation = std::move(outcome.violation);
            phase.next_s = max_t + 1;
            phase.done = true;
            return phase;
        }
        if (outcome.truncated) {
            boundary.max_ok = s - 1;
            boundary.complete = false;
            phase.next_s = s;
            return phase;
        }
        boundary.max_ok = s;
    }
    phase.next_s = max_t + 1;
    phase.done = true;
    return phase;
}

FrontierVerdict OrbitSweep::batch_robustness_frontier(std::size_t max_k, std::size_t max_t,
                                                      GainCriterion criterion,
                                                      game::SweepMode mode) const {
    return batch_robustness_frontier(max_k, max_t, criterion, mode, nullptr, nullptr);
}

FrontierVerdict OrbitSweep::batch_robustness_frontier(std::size_t max_k, std::size_t max_t,
                                                      GainCriterion criterion,
                                                      game::SweepMode mode,
                                                      const SweepCheckpoint* resume,
                                                      SweepCheckpoint* checkpoint) const {
    // An empty checkpoint (no progress recorded) is a fresh run.
    if (resume != nullptr && !resume->immunity_done && resume->immunity_next == 0) {
        resume = nullptr;
    }
    FrontierVerdict out;
    out.max_k = max_k;
    out.max_t = max_t;
    const std::size_t stride = max_t + 1;
    out.cells.assign((max_k + 1) * stride, std::nullopt);

    // Part (a): the t-axis boundary; broken columns take the immunity
    // witness for every k (the independent probes check immunity first).
    // A resumed run whose checkpoint already finished the phase leaves
    // those columns kUnknown — their witnesses were delivered by the run
    // that finished it.
    bool immunity_done = false;
    bool immunity_exact_now = false;  // phase finished THIS run
    std::size_t immunity_ok = 0;
    std::uint64_t immunity_next = 0;
    if (resume != nullptr && resume->immunity_done) {
        immunity_done = true;
        immunity_ok = resume->immunity_ok;
    } else {
        const BoundaryPhase phase = immunity_boundary_phase(
            resume != nullptr ? static_cast<std::size_t>(resume->immunity_next) : 1, max_t);
        immunity_done = phase.done;
        immunity_ok = phase.boundary.max_ok;
        immunity_next = phase.next_s;
        if (immunity_done) {
            immunity_exact_now = true;
            for (std::size_t t = immunity_ok + 1; t <= max_t; ++t) {
                for (std::size_t k = 0; k <= max_k; ++k) {
                    out.cells[k * stride + t] = phase.boundary.violation;
                }
            }
        }
    }
    const std::size_t t_res = std::min(max_t, immunity_ok);

    // Minimal violating pairs earlier runs found: their cells (and the
    // robust prefix below the recorded pair rank) were delivered then and
    // stay kUnknown here. Prior pairs always precede new ones in scan
    // rank, so a cell under both takes the prior witness in an unbudgeted
    // run too — skipping it keeps the merged grid bit-identical.
    std::vector<std::pair<std::size_t, std::size_t>> prior;
    std::size_t start_rank = 0;
    if (resume != nullptr && resume->immunity_done) {
        prior = resume->hit_pairs;
        start_rank = static_cast<std::size_t>(resume->next_task);
    }
    std::vector<std::size_t> breaking_prior(t_res + 1, max_k + 1);
    for (const auto& [psc, pst] : prior) {
        for (std::size_t t = pst; t <= t_res; ++t) {
            breaking_prior[t] = std::min(breaking_prior[t], psc);
        }
    }

    // Part (b): scan (coalition size, faulty size) PAIRS, skipping any
    // pair dominated by an already-found violation — it could only break
    // cells that violation already breaks. The found list therefore
    // holds the minimal violating pairs, and cell (k, t) is broken iff
    // some found pair fits under it: exactly the dense verdict.
    struct PairHit final {
        std::size_t coalition_size;
        std::size_t faulty_size;
        RobustnessViolation violation;
    };
    std::vector<PairHit> found;
    bool truncated = false;
    std::size_t trunc_sc = max_k + 1;
    std::size_t trunc_st = 0;
    const std::size_t row = t_res + 1;  // pairs per coalition size
    std::size_t next_rank = max_k * row;
    if (max_k > 0) {
        for (std::size_t sc = 1; sc <= max_k && !truncated; ++sc) {
            for (std::size_t st = 0; st <= t_res; ++st) {
                const std::size_t rank = (sc - 1) * row + st;
                if (rank < start_rank) continue;  // verified by earlier runs
                bool dominated = false;
                for (const auto& [psc, pst] : prior) {
                    if (psc <= sc && pst <= st) {
                        dominated = true;
                        break;
                    }
                }
                for (const PairHit& hit : found) {
                    if (dominated) break;
                    if (hit.coalition_size <= sc && hit.faulty_size <= st) {
                        dominated = true;
                        break;
                    }
                }
                if (dominated) continue;
                ScanOutcome outcome = resilience_scan(sc, st, criterion, mode);
                if (outcome.violation) {
                    found.push_back({sc, st, std::move(*outcome.violation)});
                    continue;
                }
                if (outcome.truncated) {
                    truncated = true;
                    trunc_sc = sc;
                    trunc_st = st;
                    next_rank = rank;
                    break;
                }
            }
        }
    }
    // First dominating pair in scan order provides each broken cell's
    // violation — deterministic, and valid evidence even when the sweep
    // was later truncated. Cells under a PRIOR pair were delivered by an
    // earlier run and stay untouched.
    for (const PairHit& hit : found) {
        for (std::size_t k = hit.coalition_size; k <= max_k; ++k) {
            for (std::size_t t = hit.faulty_size; t <= t_res; ++t) {
                if (k >= breaking_prior[t]) continue;
                auto& cell = out.cells[k * stride + t];
                if (!cell) cell = hit.violation;
            }
        }
    }

    const bool sweep_finished = immunity_done && !truncated;
    if (checkpoint != nullptr) {
        *checkpoint = SweepCheckpoint{};
        checkpoint->finished = sweep_finished;
        checkpoint->immunity_done = immunity_done;
        checkpoint->immunity_next = immunity_next;
        checkpoint->immunity_ok = immunity_ok;
        if (immunity_done && !sweep_finished) {
            checkpoint->next_task = next_rank;
            checkpoint->hit_pairs = prior;
            for (const PairHit& hit : found) {
                checkpoint->hit_pairs.emplace_back(hit.coalition_size, hit.faulty_size);
            }
        }
    }

    if (resume == nullptr && immunity_exact_now && !truncated) {
        out.cells_resolved = out.cells.size();
        return out;
    }
    out.states.assign(out.cells.size(), CellVerdict::kUnknown);
    for (std::size_t t = 0; t <= max_t; ++t) {
        if (t > t_res) {
            if (immunity_exact_now) {
                for (std::size_t k = 0; k <= max_k; ++k) {
                    out.states[k * stride + t] = CellVerdict::kBroken;
                }
            }
            continue;
        }
        // Pairs (sc <= verified_k, st <= t) all ran (or were dominated)
        // before the cutoff; above that the column is unknown. Ranks
        // below start_rank ran in earlier runs, so the robust prefix they
        // certified — k <= prior_vk — was already delivered then.
        const std::size_t verified_k =
            !truncated ? max_k : (t < trunc_st ? trunc_sc : trunc_sc - 1);
        const std::size_t prior_vk =
            start_rank > t ? std::min(max_k, (start_rank - 1 - t) / row + 1) : 0;
        std::size_t breaking = max_k + 1;
        for (const PairHit& hit : found) {
            if (hit.faulty_size <= t) breaking = std::min(breaking, hit.coalition_size);
        }
        for (std::size_t k = 0; k <= max_k; ++k) {
            if (k >= breaking_prior[t]) continue;  // broken, delivered earlier
            if (k >= breaking) {
                out.states[k * stride + t] = CellVerdict::kBroken;
            } else if (k <= verified_k && (start_rank == 0 || k > prior_vk)) {
                out.states[k * stride + t] = CellVerdict::kRobust;
            }
        }
    }
    for (const CellVerdict state : out.states) {
        if (state != CellVerdict::kUnknown) ++out.cells_resolved;
    }
    return out;
}

MaxKtResult OrbitSweep::max_kt(std::size_t max_k, std::size_t max_t, GainCriterion criterion,
                               game::SweepMode mode) const {
    return max_kt(max_k, max_t, criterion, mode, nullptr, nullptr);
}

MaxKtResult OrbitSweep::max_kt(std::size_t max_k, std::size_t max_t, GainCriterion criterion,
                               game::SweepMode mode, const SweepCheckpoint* resume,
                               SweepCheckpoint* checkpoint) const {
    // An empty checkpoint (no progress recorded) is a fresh run.
    if (resume != nullptr && !resume->immunity_done && resume->immunity_next == 0) {
        resume = nullptr;
    }
    MaxKtResult out;
    out.max_k = max_k;
    out.max_t = max_t;
    std::size_t t0 = 0;
    std::size_t k_prev = max_k;
    std::size_t sc_start = 1;
    if (resume != nullptr && resume->immunity_done) {
        out.immunity_ok = resume->immunity_ok;
        out.immunity_exact = true;
        out.complete = true;
        out.cells_resolved = static_cast<std::size_t>(resume->walk_cells_resolved);
        out.k_of_t = resume->walk_k_of_t;
        t0 = resume->walk_t;
        k_prev = resume->walk_k_prev;
        sc_start = std::max<std::size_t>(static_cast<std::size_t>(resume->next_task), 1);
    } else {
        const BoundaryPhase phase = immunity_boundary_phase(
            resume != nullptr ? static_cast<std::size_t>(resume->immunity_next) : 1, max_t);
        out.immunity_ok = phase.boundary.max_ok;
        out.immunity_exact = phase.done;
        out.complete = phase.done;
        // Same resolution accounting as the dense walk: the
        // (0, immunity_ok) confirmation, plus the broken cell above it
        // when interior & exact.
        out.cells_resolved = 1 + (out.immunity_ok < max_t && phase.done ? 1 : 0);
        if (!phase.done && checkpoint != nullptr) {
            // A resumable run truncated mid-immunity reports no columns:
            // the retry re-derives the walk from the exact boundary more
            // cheaply than re-walking a provisional one.
            *checkpoint = SweepCheckpoint{};
            checkpoint->immunity_next = phase.next_s;
            return out;
        }
    }
    out.k_of_t.reserve(out.immunity_ok + 1);
    bool truncated_walk = false;
    std::uint64_t walk_next = 1;
    for (std::size_t t = t0; t <= out.immunity_ok; ++t) {
        if (k_prev == 0) {
            out.k_of_t.push_back(0);  // column survives on immunity alone
            sc_start = 1;
            continue;
        }
        // Coalition sizes <= k_prev are clean for faulty sizes < t, so
        // this column sweeps faulty size EXACTLY t; the first violating
        // coalition size pins kmax(t). The seek applies only to the
        // resumed column: sizes below sc_start were verified clean for
        // this exact column by the run that truncated here.
        std::optional<std::size_t> hit_size;
        bool truncated = false;
        std::size_t sc = sc_start;
        sc_start = 1;
        for (; sc <= k_prev; ++sc) {
            ScanOutcome outcome = resilience_scan(sc, t, criterion, mode);
            if (outcome.violation) {
                hit_size = sc;
                break;
            }
            if (outcome.truncated) {
                truncated = true;
                break;
            }
        }
        if (truncated && !hit_size) {
            out.complete = false;
            truncated_walk = true;
            walk_next = sc;
            break;
        }
        const std::size_t kt = hit_size ? *hit_size - 1 : k_prev;
        out.k_of_t.push_back(kt);
        out.cells_resolved += 1 + (hit_size ? 1 : 0);
        k_prev = kt;
    }
    if (checkpoint != nullptr) {
        *checkpoint = SweepCheckpoint{};
        checkpoint->immunity_done = true;
        checkpoint->immunity_ok = out.immunity_ok;
        checkpoint->finished = !truncated_walk;
        if (truncated_walk) {
            checkpoint->walk_t = out.k_of_t.size();
            checkpoint->walk_k_prev = k_prev;
            checkpoint->walk_k_of_t = out.k_of_t;
            checkpoint->walk_cells_resolved = out.cells_resolved;
            checkpoint->next_task = walk_next;
        }
    }
    for (std::size_t t = 0; t < out.k_of_t.size(); ++t) {
        if (t + 1 == out.k_of_t.size() || out.k_of_t[t + 1] < out.k_of_t[t]) {
            out.maximal.emplace_back(out.k_of_t[t], t);
        }
    }
    return out;
}

// --- routed entry points ----------------------------------------------------

namespace {

OrbitSweep make_orbit_sweep(const game::GameView& view, const SymmetryGroup& group,
                            const game::PureProfile& pure) {
    std::vector<std::size_t> base(group.num_classes());
    for (std::size_t c = 0; c < group.num_classes(); ++c) {
        base[c] = pure[group.classes()[c].front()];
    }
    return OrbitSweep(game::build_quotient(view, group), group, std::move(base));
}

}  // namespace

bool orbit_applicable(const SymmetryGroup& group, const game::ExactMixedProfile& profile) {
    if (group.is_trivial()) return false;
    const auto pure = as_pure_profile(profile);
    return pure.has_value() && group.class_constant(*pure);
}

std::optional<RobustnessViolation> find_robustness_violation(
    const game::GameView& view, const SymmetryGroup& group,
    const game::ExactMixedProfile& profile, std::size_t k, std::size_t t,
    const RobustnessOptions& options) {
    if (!orbit_applicable(group, profile)) {
        return find_robustness_violation(view, profile, k, t, options);
    }
    const auto pure = as_pure_profile(profile);
    return make_orbit_sweep(view, group, *pure).robustness_violation(k, t, options);
}

bool is_kt_robust(const game::GameView& view, const SymmetryGroup& group,
                  const game::ExactMixedProfile& profile, std::size_t k, std::size_t t,
                  const RobustnessOptions& options) {
    return !find_robustness_violation(view, group, profile, k, t, options).has_value();
}

FrontierVerdict batch_robustness_frontier(const game::GameView& view,
                                          const SymmetryGroup& group,
                                          const game::ExactMixedProfile& profile,
                                          std::size_t max_k, std::size_t max_t,
                                          const RobustnessOptions& options) {
    if (!orbit_applicable(group, profile)) {
        return batch_robustness_frontier(view, profile, max_k, max_t, options);
    }
    const auto pure = as_pure_profile(profile);
    return make_orbit_sweep(view, group, *pure)
        .batch_robustness_frontier(max_k, max_t, options.criterion, options.mode);
}

MaxKtResult max_kt(const game::GameView& view, const SymmetryGroup& group,
                   const game::ExactMixedProfile& profile, std::size_t max_k, std::size_t max_t,
                   const RobustnessOptions& options) {
    if (!orbit_applicable(group, profile)) {
        return max_kt(view, profile, max_k, max_t, options);
    }
    const auto pure = as_pure_profile(profile);
    return make_orbit_sweep(view, group, *pure)
        .max_kt(max_k, max_t, options.criterion, options.mode);
}

}  // namespace bnash::core
