// Anonymous binary-action games with O(k) robustness checks.
//
// The paper's Section 2 examples (the attack/coordination game and the
// bargaining game) are ANONYMOUS: a player's payoff depends only on its
// own action and on HOW MANY players chose 1, not on who. For such games
// the payoff tensor (2^n entries) never needs materializing, and checking
// k-resilience / t-immunity of a symmetric profile reduces to scanning
// deviation counts -- the benches sweep these games to n = 50 and beyond,
// far past what the generic checkers can store. Cross-validated against
// the exact tensor checkers for small n in the tests.
//
// LARGE-n path: the closed-form scans are the fast path, but at very
// large n the O(k^2) (coalition size, switcher count) pair scan itself
// dominates (each pair costs a PayoffFn call). Above
// kPooledWorkThreshold scanned pairs, kAuto mode splits the scan into
// CoalitionSweep-style coalition-size blocks on util::global_pool() with
// an atomic-min winner, so verdicts and boundaries are identical to the
// serial scan in both modes (cross-validated in test_robust_fuzz against
// serial scans at large n and against tensor twins at small n).
#pragma once

#include <cstddef>
#include <functional>

#include "core/robust/robustness.h"
#include "game/normal_form.h"
#include "game/symmetry.h"
#include "util/rational.h"

namespace bnash::core {

class AnonymousBinaryGame final {
public:
    // payoff(action, total_ones, n): utility of a player choosing `action`
    // when `total_ones` players (including itself) chose 1. Must be safe
    // to call concurrently (the pooled large-n scans invoke it from
    // several workers); pure functions of the arguments always are.
    using PayoffFn =
        std::function<util::Rational(std::size_t action, std::size_t total_ones, std::size_t n)>;

    AnonymousBinaryGame(std::size_t num_players, PayoffFn payoff);

    // Section 2's games.
    static AnonymousBinaryGame attack(std::size_t num_players);
    static AnonymousBinaryGame bargaining(std::size_t num_players);

    // Data-driven construction: table[action][total_ones] with
    // total_ones = 0..n (so each row has n+1 entries). The randomized
    // cross-validation harness feeds arbitrary tables through this.
    static AnonymousBinaryGame from_table(std::vector<std::vector<util::Rational>> table);

    [[nodiscard]] std::size_t num_players() const noexcept { return n_; }
    [[nodiscard]] util::Rational payoff(std::size_t action, std::size_t total_ones) const;

    // Scanned pairs (resp. switcher counts) above which kAuto pools the
    // scan; below it the closed-form serial loop wins outright.
    static constexpr std::uint64_t kPooledWorkThreshold = 4096;

    // Checks on the symmetric profile "everyone plays base_action":
    [[nodiscard]] bool all_base_is_nash(std::size_t base_action) const;
    [[nodiscard]] bool all_base_is_k_resilient(
        std::size_t base_action, std::size_t k,
        GainCriterion criterion = GainCriterion::kAnyMemberGains,
        game::SweepMode mode = game::SweepMode::kAuto) const;
    [[nodiscard]] bool all_base_is_t_immune(
        std::size_t base_action, std::size_t t,
        game::SweepMode mode = game::SweepMode::kAuto) const;

    // Smallest coalition size that can profitably deviate from all-base
    // (searching up to max_k); 0 when none found. One (c, j) pair scan —
    // not max_k probe restarts — serial or pooled (identical boundary).
    [[nodiscard]] std::size_t min_breaking_coalition(
        std::size_t base_action, std::size_t max_k,
        game::SweepMode mode = game::SweepMode::kAuto) const;

    // Largest t <= max_t such that all-base is t-immune (0 when not even
    // 1-immune): the anonymous sibling of core::batch_immunity's max_ok,
    // found in ONE O(max_t) scan over switcher counts.
    [[nodiscard]] std::size_t max_immunity(std::size_t base_action, std::size_t max_t,
                                           game::SweepMode mode = game::SweepMode::kAuto) const;

    // Materializes the payoff tensor (small n only; throws above 16).
    [[nodiscard]] game::NormalFormGame to_normal_form() const;

    // The single-class game::QuotientGame of this game — one payoff per
    // (own action, #ones among the other n-1 players) — built from the
    // closed form without any tensor. Pair with
    // game::SymmetryGroup::single_class(n) to run core::OrbitSweep
    // frontiers at n far beyond what to_normal_form() can materialize.
    [[nodiscard]] game::QuotientGame quotient() const;

private:
    [[nodiscard]] std::size_t min_breaking_coalition_impl(std::size_t base_action,
                                                          std::size_t max_k,
                                                          GainCriterion criterion,
                                                          game::SweepMode mode) const;
    [[nodiscard]] std::size_t first_harmful_switchers(std::size_t base_action,
                                                      std::size_t limit,
                                                      game::SweepMode mode) const;

    std::size_t n_;
    PayoffFn payoff_;
};

}  // namespace bnash::core
