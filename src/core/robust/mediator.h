// Mediators for Bayesian games (Section 2's Gamma_d).
//
// A mediator policy is a randomized map from reported type profiles to
// recommended action profiles. The mediated extension's canonical strategy
// is "report truthfully, follow the recommendation"; the analysis routines
// here check whether that canonical strategy is an equilibrium (and how
// resilient it is), and the cheap-talk module implements the same policy
// without the trusted party.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/robust/robustness.h"
#include "game/bayesian.h"
#include "game/payoff_engine.h"
#include "game/strategy.h"
#include "util/rational.h"
#include "util/rng.h"

namespace bnash::core {

class MediatorPolicy final {
public:
    explicit MediatorPolicy(const game::BayesianGame& game);

    // The mediator recommends joint action profile `actions` with
    // probability `prob` when types are reported as `types`.
    void set_recommendation(const game::TypeProfile& types, const game::PureProfile& actions,
                            util::Rational prob);
    [[nodiscard]] const util::Rational& recommendation_prob(
        const game::TypeProfile& types, const game::PureProfile& actions) const;
    // Every row must be a distribution; throws otherwise.
    void validate() const;

    [[nodiscard]] const game::BayesianGame& base() const noexcept { return *game_; }

    // --- canonical policies ------------------------------------------------
    // Byzantine agreement with a mediator: "the general sends the mediator
    // his preference, and the mediator sends it to all the soldiers".
    static MediatorPolicy byzantine_consensus(const game::BayesianGame& game);
    // For catalog::correlated_types_game: tells each player the other's type.
    static MediatorPolicy reveal_types(const game::BayesianGame& game);

    // --- analysis ------------------------------------------------------------
    // Ex-ante value of truthful reporting + obedient play.
    [[nodiscard]] util::Rational truthful_value(std::size_t player) const;

    // Distribution over action-profile ranks induced by truthful play at a
    // fixed TRUE type profile (the object cheap talk must reproduce).
    [[nodiscard]] std::vector<util::Rational> induced_action_distribution(
        const game::TypeProfile& types) const;

    // Checks that no single player gains by any (misreport, disobey)
    // deviation map, holding others truthful and obedient. Exhaustive over
    // all report maps T_i -> T_i and response maps (T_i x A_i) -> A_i.
    [[nodiscard]] bool is_truthful_equilibrium() const;

    // Coalition version where each coalition member independently picks a
    // (misreport, disobey) map. NOTE: full ADGH resilience allows
    // coalition members to share types and recommendations mid-protocol;
    // this checker covers the communication-free subclass (exhaustive over
    // independent maps), which is exact for singleton coalitions and a
    // sound necessary condition for larger ones.
    //
    // Runs as a coalition sweep on the shared kernel: one pooled task per
    // coalition, a util::OffsetWalker odometer over the (report, response)
    // deviation maps with incremental reported-row / action-rank updates,
    // and relevance pruning — a response entry (type, recommendation) the
    // mediator can never reach under the current report map is held fixed,
    // so each scan evaluates one representative per class of maps with
    // equal member values. Verdicts match reference::
    // is_truthful_resilient_independent exactly; work is charged to the
    // thread's util::ExecutionGrant and an expired grant truncates the
    // scan (callers observing grant->expired() must treat the verdict as
    // truncated).
    //
    // `criterion` picks the coalition-gain semantics (kAnyMemberGains is
    // the classical some-member-strictly-gains reading; kAllMembersGain
    // requires every member to strictly gain). The two coincide for
    // singleton coalitions.
    [[nodiscard]] bool is_truthful_resilient_independent(
        std::size_t k, GainCriterion criterion = GainCriterion::kAnyMemberGains,
        game::SweepMode mode = game::SweepMode::kAuto) const;

    // --- sampling (cheap-talk substrate) ---------------------------------
    // Smallest R such that every probability in the table is a multiple of
    // 1/R (so a uniform coin in {0..R-1} samples the policy exactly).
    [[nodiscard]] std::size_t coin_space() const;
    // The action-profile rank selected at `types` by uniform coin value
    // `coin` in {0..coin_space-1}.
    [[nodiscard]] std::size_t sample_rank(const game::TypeProfile& types, std::size_t coin,
                                          std::size_t coin_space_size) const;

private:
    [[nodiscard]] std::uint64_t row_index(const game::TypeProfile& types) const;

    const game::BayesianGame* game_;
    std::uint64_t num_action_profiles_;
    std::vector<std::vector<util::Rational>> table_;  // [type_rank][action_rank]
};

namespace reference {

// The archived pre-sweep checker: enumerates EVERY joint (report,
// response) deviation map, re-unranking both maps and walking the full
// type x action-rank tensor per candidate. Golden baseline for the sweep's
// fuzz cross-validation and for the bench's deviation-map-evaluation
// comparison (it reports one cells_visited per evaluated map, like the
// sweep); not for production call sites.
[[nodiscard]] bool is_truthful_resilient_independent(
    const MediatorPolicy& policy, std::size_t k,
    GainCriterion criterion = GainCriterion::kAnyMemberGains);

}  // namespace reference

}  // namespace bnash::core
