// The paper's Section 2 theorem list as a decision procedure.
//
// Abraham et al. [2006, 2008] "essentially characterize when mediators can
// be implemented" via nine threshold results over (n, k, t) and the
// available infrastructure. classify() encodes that characterization: it
// returns the STRONGEST implementation guarantee obtainable for a
// (k,t)-robust mediator strategy with n players and the given
// capabilities, together with the caveats the theorems attach (utility
// knowledge, punishment strategies, running-time shape). bench_mediator
// prints the resulting frontier table; the tests pin every bullet.
#pragma once

#include <cstddef>
#include <string>

namespace bnash::core {

struct Capabilities final {
    bool utilities_known = false;        // players know each other's utilities
    bool punishment_strategy = false;    // a (k+t)-punishment strategy exists
    bool broadcast_channel = false;      // physical broadcast available
    bool cryptography = false;           // crypto + polynomially-bounded players
    bool pki = false;                    // public-key infrastructure (implies crypto use)
};

enum class Guarantee {
    kExact,           // mediator implemented exactly
    kEpsilon,         // implemented within epsilon utility
    kImpossible,      // no implementation in general
};

enum class RunningTime {
    kBounded,             // bounded, utility-independent
    kBoundedExpected,     // bounded in expectation, utility-independent
    kFiniteExpected,      // finite expected, utility-independent
    kUtilityDependent,    // depends on utilities (and epsilon)
    kNotApplicable,
};

struct FeasibilityVerdict final {
    Guarantee guarantee = Guarantee::kImpossible;
    RunningTime running_time = RunningTime::kNotApplicable;
    bool requires_utility_knowledge = false;
    bool requires_punishment = false;
    bool uses_broadcast = false;
    bool uses_cryptography = false;
    bool uses_pki = false;
    // Which bullet of the paper's list decided the verdict, e.g.
    // "n > 3k+3t".
    std::string theorem;
};

[[nodiscard]] FeasibilityVerdict classify(std::size_t n, std::size_t k, std::size_t t,
                                          const Capabilities& capabilities);

[[nodiscard]] std::string to_string(Guarantee guarantee);
[[nodiscard]] std::string to_string(RunningTime running_time);

}  // namespace bnash::core
