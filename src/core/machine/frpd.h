// Example 3.2: finitely repeated prisoner's dilemma with memory-charged
// machines.
//
// Machine utility = sum_{m=1..N} delta^m * r_m  -  memory_price * bits(M).
// Tit-for-tat reacts to the per-round observation and carries no
// persistent state; the profitable classical deviation ("tit-for-tat, but
// defect at the last round") must carry a round counter
// (ceil(log2 N) persistent bits). The paper's claim, reproduced here: for
// any positive memory price and 1/2 < delta < 1, (TfT, TfT) is a Nash
// equilibrium of the machine game for every sufficiently long horizon,
// because the discounted last-round gain 2*delta^N dips below the counter's
// memory cost. The asymmetric variant (only one player charged) is also
// analyzed: the free player best-responds with the defect-last machine.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "repeated/repeated_game.h"
#include "repeated/strategies.h"

namespace bnash::core {

struct FrpdParams final {
    std::size_t rounds = 50;
    double delta = 0.9;        // in (1/2, 1) per the example
    double memory_price = 0.2;  // per bit of machine memory
};

// The machine set the analysis quantifies over (deterministic only).
[[nodiscard]] std::vector<std::unique_ptr<repeated::Strategy>> frpd_machine_set(
    std::size_t rounds);

// Discounted match payoff of `own` against `opponent` minus the memory
// charge on `own` (when charged = true).
[[nodiscard]] double frpd_machine_utility(const repeated::Strategy& own,
                                          const repeated::Strategy& opponent,
                                          const FrpdParams& params, bool charged = true);

struct FrpdAnalysis final {
    bool tft_pair_is_equilibrium = false;
    double tft_utility = 0.0;
    std::string best_deviation;       // name of the best deviating machine
    double best_deviation_utility = 0.0;
    // The closed-form boundary quantities of the example:
    double last_round_gain = 0.0;     // 2 * delta^N
    double counter_memory_cost = 0.0; // memory_price * ceil(log2 N)
};

// Symmetric analysis: both players charged; checks (TfT, TfT) against
// every machine in frpd_machine_set.
[[nodiscard]] FrpdAnalysis analyze_tft_equilibrium(const FrpdParams& params);

// Asymmetric variant: player 0 charged, player 1 free. Checks that
// (TfT, tft_defect_last) is an equilibrium: the bounded player keeps
// tit-for-tat while the free player cooperates up to (but not including)
// the last round.
[[nodiscard]] bool asymmetric_equilibrium_holds(const FrpdParams& params);

}  // namespace bnash::core
