#include "core/machine/frpd.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "game/catalog.h"

namespace bnash::core {
namespace {

repeated::RepeatedGame make_game(const FrpdParams& params) {
    if (params.delta <= 0.5 || params.delta >= 1.0) {
        throw std::invalid_argument("FrpdParams: delta must lie in (1/2, 1)");
    }
    return repeated::RepeatedGame(game::catalog::prisoners_dilemma(), params.rounds,
                                  params.delta);
}

}  // namespace

std::vector<std::unique_ptr<repeated::Strategy>> frpd_machine_set(std::size_t rounds) {
    std::vector<std::unique_ptr<repeated::Strategy>> out;
    out.push_back(repeated::always_cooperate());
    out.push_back(repeated::always_defect());
    out.push_back(repeated::tit_for_tat());
    out.push_back(repeated::grim_trigger());
    out.push_back(repeated::pavlov());
    out.push_back(repeated::tft_defect_last(rounds));
    if (rounds >= 2) out.push_back(repeated::tft_defect_last_k(rounds, 2));
    return out;
}

double frpd_machine_utility(const repeated::Strategy& own, const repeated::Strategy& opponent,
                            const FrpdParams& params, bool charged) {
    const auto game = make_game(params);
    util::Rng rng{0};  // deterministic machines
    const auto mine = own.clone();
    const auto theirs = opponent.clone();
    const auto result = game.play(*mine, *theirs, rng);
    double utility = result.payoff0;
    if (charged) {
        utility -=
            params.memory_price * static_cast<double>(own.complexity().memory_bits);
    }
    return utility;
}

FrpdAnalysis analyze_tft_equilibrium(const FrpdParams& params) {
    FrpdAnalysis analysis;
    const auto tft = repeated::tit_for_tat();
    analysis.tft_utility = frpd_machine_utility(*tft, *tft, params);
    analysis.best_deviation_utility = analysis.tft_utility;
    analysis.best_deviation = tft->name();
    for (const auto& machine : frpd_machine_set(params.rounds)) {
        const double value = frpd_machine_utility(*machine, *tft, params);
        if (value > analysis.best_deviation_utility) {
            analysis.best_deviation_utility = value;
            analysis.best_deviation = machine->name();
        }
    }
    analysis.tft_pair_is_equilibrium =
        analysis.best_deviation_utility <= analysis.tft_utility + 1e-12;
    analysis.last_round_gain =
        2.0 * std::pow(params.delta, static_cast<double>(params.rounds));
    analysis.counter_memory_cost =
        params.memory_price *
        static_cast<double>(std::bit_width(params.rounds - 1));
    return analysis;
}

bool asymmetric_equilibrium_holds(const FrpdParams& params) {
    const auto tft = repeated::tit_for_tat();
    const auto sneak = repeated::tft_defect_last(params.rounds);
    // Player 0 (charged) plays TfT against the free player's defect-last.
    const double p0_current = frpd_machine_utility(*tft, *sneak, params, /*charged=*/true);
    for (const auto& machine : frpd_machine_set(params.rounds)) {
        if (frpd_machine_utility(*machine, *sneak, params, true) > p0_current + 1e-12) {
            return false;
        }
    }
    // Player 1 (free) plays defect-last against TfT.
    const double p1_current = frpd_machine_utility(*sneak, *tft, params, /*charged=*/false);
    for (const auto& machine : frpd_machine_set(params.rounds)) {
        if (frpd_machine_utility(*machine, *tft, params, false) > p1_current + 1e-12) {
            return false;
        }
    }
    return true;
}

}  // namespace bnash::core
