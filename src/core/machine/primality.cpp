#include "core/machine/primality.h"

#include <array>
#include <stdexcept>

namespace bnash::core {
namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m,
                     std::uint64_t* op_count) {
    if (op_count != nullptr) ++*op_count;
    return static_cast<std::uint64_t>((static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m,
                     std::uint64_t* op_count) {
    std::uint64_t result = 1;
    base %= m;
    while (exp > 0) {
        if (exp & 1) result = mulmod(result, base, m, op_count);
        base = mulmod(base, base, m, op_count);
        exp >>= 1;
    }
    return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t value, std::uint64_t* op_count) {
    if (value < 2) return false;
    for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                                  29ULL, 31ULL, 37ULL}) {
        if (value == p) return true;
        if (value % p == 0) return false;
    }
    // value - 1 = d * 2^r with d odd.
    std::uint64_t d = value - 1;
    unsigned r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This base set is a proven deterministic witness set for all 64-bit
    // integers (Sinclair / Feitsma-Galway verification).
    constexpr std::array<std::uint64_t, 12> kBases{2,  3,  5,  7,  11, 13,
                                                   17, 19, 23, 29, 31, 37};
    for (const std::uint64_t base : kBases) {
        std::uint64_t x = powmod(base % value, d, value, op_count);
        if (x == 1 || x == value - 1) continue;
        bool composite = true;
        for (unsigned i = 1; i < r; ++i) {
            x = mulmod(x, x, value, op_count);
            if (x == value - 1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

std::string to_string(PrimalityMachineKind kind) {
    switch (kind) {
        case PrimalityMachineKind::kMillerRabin: return "miller-rabin";
        case PrimalityMachineKind::kPlaySafe: return "play-safe";
        case PrimalityMachineKind::kAlwaysPrime: return "always-prime";
        case PrimalityMachineKind::kAlwaysComposite: return "always-composite";
    }
    return "?";
}

PrimalityReport evaluate_primality_machine(PrimalityMachineKind kind,
                                           const PrimalityParams& params) {
    if (params.bits < 2 || params.bits > 63) {
        throw std::invalid_argument("evaluate_primality_machine: bits in [2, 63]");
    }
    if (params.samples == 0) throw std::invalid_argument("samples == 0");
    util::Rng rng{params.seed};
    const std::uint64_t lo = std::uint64_t{1} << (params.bits - 1);
    const std::uint64_t span = std::uint64_t{1} << (params.bits - 1);

    // Balanced sampler: with probability 1/2 the next prime at or above a
    // uniform draw, otherwise a composite (see PrimalityParams).
    const auto draw_input = [&]() -> std::uint64_t {
        std::uint64_t x = lo + rng.next_below(span);
        if (rng.next_bool()) {
            while (!is_prime_u64(x)) ++x;
        } else if (is_prime_u64(x)) {
            x += (x % 2 == 0) ? 2 : 1;  // an even number > 2 is composite
        }
        return x;
    };

    PrimalityReport report;
    double utility_total = 0.0;
    double steps_total = 0.0;
    std::size_t primes = 0;
    for (std::size_t s = 0; s < params.samples; ++s) {
        const std::uint64_t x = draw_input();
        std::uint64_t ops = 0;
        const bool prime = is_prime_u64(x, &ops);  // ground truth
        primes += prime;
        switch (kind) {
            case PrimalityMachineKind::kMillerRabin:
                // The test is exact, so the guess is always correct; the
                // machine pays for every modular multiplication it ran.
                utility_total +=
                    params.reward_correct - params.step_price * static_cast<double>(ops);
                steps_total += static_cast<double>(ops);
                break;
            case PrimalityMachineKind::kPlaySafe:
                utility_total += params.reward_safe;
                steps_total += 1.0;
                break;
            case PrimalityMachineKind::kAlwaysPrime:
                utility_total += prime ? params.reward_correct : params.penalty_wrong;
                steps_total += 1.0;
                break;
            case PrimalityMachineKind::kAlwaysComposite:
                utility_total += prime ? params.penalty_wrong : params.reward_correct;
                steps_total += 1.0;
                break;
        }
    }
    report.expected_utility = utility_total / static_cast<double>(params.samples);
    report.average_steps = steps_total / static_cast<double>(params.samples);
    report.fraction_prime = static_cast<double>(primes) / static_cast<double>(params.samples);
    return report;
}

PrimalityMachineKind best_primality_machine(const PrimalityParams& params) {
    PrimalityMachineKind best = PrimalityMachineKind::kPlaySafe;
    double best_value = -1e300;
    for (const auto kind :
         {PrimalityMachineKind::kMillerRabin, PrimalityMachineKind::kPlaySafe,
          PrimalityMachineKind::kAlwaysPrime, PrimalityMachineKind::kAlwaysComposite}) {
        const auto report = evaluate_primality_machine(kind, params);
        if (report.expected_utility > best_value) {
            best_value = report.expected_utility;
            best = kind;
        }
    }
    return best;
}

}  // namespace bnash::core
