#include "core/machine/machine_game.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <stdexcept>

#include "game/catalog.h"
#include "util/combinatorics.h"
#include "util/offset_walker.h"
#include "util/thread_pool.h"
#include "util/work_counters.h"

namespace bnash::core {
namespace {

class ConstantMachine final : public Machine {
public:
    ConstantMachine(std::size_t action, std::string name)
        : action_(action), name_(name.empty() ? "const" + std::to_string(action)
                                              : std::move(name)) {}
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] std::vector<double> action_distribution(std::size_t,
                                                          std::size_t num_actions) const override {
        std::vector<double> out(num_actions, 0.0);
        out.at(action_) = 1.0;
        return out;
    }
    [[nodiscard]] std::size_t run(std::size_t, util::Rng&, MachineMetrics& metrics) const override {
        metrics = static_metrics();
        metrics.steps = 1;
        return action_;
    }
    [[nodiscard]] MachineMetrics static_metrics() const override { return {1, 0, 0, false}; }

private:
    std::size_t action_;
    std::string name_;
};

class TypeEchoMachine final : public Machine {
public:
    [[nodiscard]] std::string name() const override { return "echo"; }
    [[nodiscard]] std::vector<double> action_distribution(std::size_t type,
                                                          std::size_t num_actions) const override {
        std::vector<double> out(num_actions, 0.0);
        out.at(type % num_actions) = 1.0;
        return out;
    }
    [[nodiscard]] std::size_t run(std::size_t type, util::Rng&,
                                  MachineMetrics& metrics) const override {
        metrics = static_metrics();
        metrics.steps = 1;
        return type;
    }
    [[nodiscard]] MachineMetrics static_metrics() const override { return {1, 0, 0, false}; }
};

class UniformRandomMachine final : public Machine {
public:
    [[nodiscard]] std::string name() const override { return "uniform"; }
    [[nodiscard]] std::vector<double> action_distribution(std::size_t,
                                                          std::size_t num_actions) const override {
        return std::vector<double>(num_actions, 1.0 / static_cast<double>(num_actions));
    }
    [[nodiscard]] std::size_t run(std::size_t, util::Rng& rng,
                                  MachineMetrics& metrics) const override {
        metrics = static_metrics();
        metrics.steps = 1;
        return 0 + rng.next_below(3);  // callers use action_distribution for exact math
    }
    [[nodiscard]] MachineMetrics static_metrics() const override { return {1, 0, 0, true}; }
};

class TableMachine final : public Machine {
public:
    TableMachine(std::vector<std::size_t> table, std::string name)
        : table_(std::move(table)), name_(std::move(name)) {
        if (table_.empty()) throw std::invalid_argument("table_machine: empty table");
    }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] std::vector<double> action_distribution(std::size_t type,
                                                          std::size_t num_actions) const override {
        std::vector<double> out(num_actions, 0.0);
        out.at(table_.at(type)) = 1.0;
        return out;
    }
    [[nodiscard]] std::size_t run(std::size_t type, util::Rng&,
                                  MachineMetrics& metrics) const override {
        metrics = static_metrics();
        metrics.steps = 1;
        return table_.at(type);
    }
    [[nodiscard]] MachineMetrics static_metrics() const override {
        // One state per distinct table entry; log2(|table|) bits to read
        // the type.
        std::vector<std::size_t> distinct = table_;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
        return {distinct.size(), 0, 0, false};
    }

private:
    std::vector<std::size_t> table_;
    std::string name_;
};

}  // namespace

double MachineCost::cost(const MachineMetrics& metrics) const noexcept {
    return base + per_state * static_cast<double>(metrics.states) +
           per_step * static_cast<double>(metrics.steps) +
           per_memory_bit * static_cast<double>(metrics.memory_bits) +
           (metrics.randomized ? randomized_surcharge : 0.0);
}

std::shared_ptr<Machine> constant_machine(std::size_t action, std::string name) {
    return std::make_shared<ConstantMachine>(action, std::move(name));
}

std::shared_ptr<Machine> type_echo_machine() { return std::make_shared<TypeEchoMachine>(); }

std::shared_ptr<Machine> uniform_random_machine() {
    return std::make_shared<UniformRandomMachine>();
}

std::shared_ptr<Machine> table_machine(std::vector<std::size_t> action_per_type,
                                       std::string name) {
    return std::make_shared<TableMachine>(std::move(action_per_type), std::move(name));
}

game::BayesianGame lift_to_bayesian(const game::NormalFormGame& game) {
    game::BayesianGame out(std::vector<std::size_t>(game.num_players(), 1),
                           game.action_counts());
    out.set_prior(game::TypeProfile(game.num_players(), 0), util::Rational{1});
    util::product_for_each(game.action_counts(), [&](const game::PureProfile& actions) {
        for (std::size_t player = 0; player < game.num_players(); ++player) {
            out.set_payoff(game::TypeProfile(game.num_players(), 0), actions, player,
                           game.payoff(actions, player));
        }
        return true;
    });
    return out;
}

MachineGame::MachineGame(game::BayesianGame base, MachineCost cost)
    : base_(std::move(base)), cost_(cost), machines_(base_.num_players()) {
    base_.validate_prior();
}

void MachineGame::add_machine(std::size_t player, std::shared_ptr<Machine> machine) {
    if (!machine) throw std::invalid_argument("add_machine: null machine");
    machines_.at(player).push_back(std::move(machine));
}

std::size_t MachineGame::num_machines(std::size_t player) const {
    return machines_.at(player).size();
}

const Machine& MachineGame::machine(std::size_t player, std::size_t index) const {
    return *machines_.at(player).at(index);
}

double MachineGame::utility(const std::vector<std::size_t>& machine_profile,
                            std::size_t player) const {
    if (machine_profile.size() != base_.num_players()) {
        throw std::invalid_argument("MachineGame::utility: profile width");
    }
    const std::size_t n = base_.num_players();
    double expected = 0.0;
    std::vector<std::vector<double>> dists(n);
    std::vector<std::vector<double>> support_probs(n);
    // prefix[i + 1] = prior * dists[0..i], multiplied in player order —
    // the same association as the dense `weight *=` loop, so the sparse
    // walk reproduces its sum bit for bit.
    std::vector<double> prefix(n + 1);
    std::uint64_t cells = 0;
    std::uint64_t moves = 0;
    util::product_for_each(base_.type_counts(), [&](const game::TypeProfile& types) {
        const double prior = base_.prior(types).to_double();
        if (prior == 0.0) return true;
        for (std::size_t i = 0; i < n; ++i) {
            dists[i] = machines_[i][machine_profile[i]]->action_distribution(
                types[i], base_.num_actions(i));
        }
        // One sparse support plan per type profile: the walker's row IS
        // the action rank (offsets are rank strides), so the payoff lookup
        // needs no per-cell re-ranking.
        const auto plan =
            game::build_support_plan_from_dists(dists, base_.action_rank_strides());
        if (plan.dead) return true;
        for (std::size_t i = 0; i < n; ++i) {
            support_probs[i].clear();
            for (const std::size_t action : plan.actions[i]) {
                support_probs[i].push_back(dists[i][action]);
            }
        }
        auto walker = plan.make_walker();
        walker.reset();
        const std::uint64_t type_rank = base_.type_profile_rank(types);
        prefix[0] = prior;
        std::size_t low = 0;
        bool more = true;
        while (more) {
            const auto& tuple = walker.tuple();
            for (std::size_t i = low; i < n; ++i) {
                prefix[i + 1] = prefix[i] * support_probs[i][tuple[i]];
            }
            const double weight = prefix[n];
            if (weight > 0.0) {
                expected += weight * base_.payoff_d_at(type_rank, walker.row(), player);
            }
            more = walker.advance();
            low = walker.lowest_changed();
        }
        cells += plan.num_tuples;
        moves += walker.digit_moves();
        return true;
    });
    util::work_counters_add(cells, moves);
    return expected - cost_.cost(machines_[player][machine_profile[player]]->static_metrics());
}

double MachineGame::utility_reference(const std::vector<std::size_t>& machine_profile,
                                      std::size_t player) const {
    if (machine_profile.size() != base_.num_players()) {
        throw std::invalid_argument("MachineGame::utility: profile width");
    }
    double expected = 0.0;
    util::product_for_each(base_.type_counts(), [&](const game::TypeProfile& types) {
        const double prior = base_.prior(types).to_double();
        if (prior == 0.0) return true;
        // Product distribution over actions from each machine.
        std::vector<std::vector<double>> dists(base_.num_players());
        for (std::size_t i = 0; i < base_.num_players(); ++i) {
            dists[i] = machines_[i][machine_profile[i]]->action_distribution(
                types[i], base_.num_actions(i));
        }
        std::uint64_t cells = 0;
        util::product_for_each(base_.action_counts(), [&](const game::PureProfile& actions) {
            ++cells;
            double weight = prior;
            for (std::size_t i = 0; i < base_.num_players() && weight > 0.0; ++i) {
                weight *= dists[i][actions[i]];
            }
            if (weight > 0.0) expected += weight * base_.payoff_d(types, actions, player);
            return true;
        });
        util::work_counters_add(cells, 0);
        return true;
    });
    return expected - cost_.cost(machines_[player][machine_profile[player]]->static_metrics());
}

bool MachineGame::is_machine_equilibrium(const std::vector<std::size_t>& machine_profile,
                                         double tol) const {
    for (std::size_t player = 0; player < base_.num_players(); ++player) {
        const double current = utility(machine_profile, player);
        auto deviated = machine_profile;
        for (std::size_t m = 0; m < num_machines(player); ++m) {
            deviated[player] = m;
            if (utility(deviated, player) > current + tol) return false;
        }
    }
    return true;
}

std::vector<std::vector<std::size_t>> MachineGame::machine_equilibria(
    double tol, game::SweepMode mode) const {
    std::vector<std::size_t> radices(base_.num_players());
    for (std::size_t i = 0; i < base_.num_players(); ++i) radices[i] = num_machines(i);
    const std::uint64_t total = util::product_size(radices);
    // Fixed block size: the decomposition (and thus the per-block work
    // counters) is independent of worker count.
    constexpr std::uint64_t kBlock = 16;
    const std::uint64_t num_blocks = (total + kBlock - 1) / kBlock;
    auto& pool = util::global_pool();
    if (mode == game::SweepMode::kSerial || num_blocks <= 1 || pool.size() <= 1) {
        std::vector<std::vector<std::size_t>> out;
        util::product_for_each(radices, [&](const std::vector<std::size_t>& profile) {
            if (is_machine_equilibrium(profile, tol)) out.push_back(profile);
            return true;
        });
        return out;
    }
    std::vector<std::vector<std::vector<std::size_t>>> partials(num_blocks);
    std::vector<std::exception_ptr> errors(num_blocks);
    // lint: grant-ok(blocks charge the active grant through utility()'s
    // work_counters_add on every machine-profile evaluation)
    pool.run_blocks(static_cast<std::size_t>(num_blocks), [&](std::size_t block) {
        try {
            const std::uint64_t lo = static_cast<std::uint64_t>(block) * kBlock;
            const std::uint64_t hi = std::min(total, lo + kBlock);
            util::product_for_each(radices, lo, hi,
                                   [&](const std::vector<std::size_t>& profile) {
                                       if (is_machine_equilibrium(profile, tol)) {
                                           partials[block].push_back(profile);
                                       }
                                       return true;
                                   });
        } catch (...) {
            errors[block] = std::current_exception();
        }
    });
    for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }
    // Blocks merged in rank order: output order matches the serial scan.
    std::vector<std::vector<std::size_t>> out;
    for (auto& part : partials) {
        for (auto& profile : part) out.push_back(std::move(profile));
    }
    return out;
}

std::vector<std::size_t> MachineGame::best_machines(
    const std::vector<std::size_t>& machine_profile, std::size_t player, double tol) const {
    auto probe = machine_profile;
    double best = -std::numeric_limits<double>::infinity();
    std::vector<double> values(num_machines(player));
    for (std::size_t m = 0; m < num_machines(player); ++m) {
        probe[player] = m;
        values[m] = utility(probe, player);
        best = std::max(best, values[m]);
    }
    std::vector<std::size_t> out;
    for (std::size_t m = 0; m < num_machines(player); ++m) {
        if (values[m] >= best - tol) out.push_back(m);
    }
    return out;
}

std::vector<std::vector<std::size_t>> MachineGame::best_response_cycle(
    std::vector<std::size_t> start, std::size_t max_steps) const {
    std::vector<std::vector<std::size_t>> trail{start};
    for (std::size_t step = 0; step < max_steps; ++step) {
        auto next = trail.back();
        // One round of sequential best responses.
        for (std::size_t player = 0; player < base_.num_players(); ++player) {
            next[player] = best_machines(next, player).front();
        }
        const auto seen = std::find(trail.begin(), trail.end(), next);
        if (seen != trail.end()) {
            return {seen, trail.end()};  // the cycle
        }
        trail.push_back(next);
    }
    return {};
}

MachineGame computational_roshambo(double randomized_surcharge) {
    MachineCost cost;
    cost.base = 1.0;
    cost.randomized_surcharge = randomized_surcharge;
    MachineGame game(lift_to_bayesian(game::catalog::roshambo()), cost);
    for (std::size_t player = 0; player < 2; ++player) {
        game.add_machine(player, constant_machine(0, "rock"));
        game.add_machine(player, constant_machine(1, "paper"));
        game.add_machine(player, constant_machine(2, "scissors"));
        game.add_machine(player, uniform_random_machine());
    }
    return game;
}

}  // namespace bnash::core
