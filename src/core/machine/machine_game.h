// Machine games: Bayesian games where players choose MACHINES and utility
// is charged for the complexity profile (Section 3, after Halpern-Pass).
//
// A machine maps the player's type (the machine's input) to an action and
// exposes a complexity profile; following the paper, complexity is
// associated with the (machine, input) PAIR -- run() reports metrics that
// may depend on the input. Utility = game payoff - cost(complexity).
//
// Nash equilibrium of a machine game quantifies over the machine set
// itself: a player cannot "mix" over machines for free, because a mixture
// IS a randomized machine and pays the randomization surcharge (this is
// exactly why computational roshambo, Example 3.3, has NO equilibrium --
// existence fails once randomness is priced).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "game/bayesian.h"
#include "game/normal_form.h"
#include "game/payoff_engine.h"
#include "util/rng.h"

namespace bnash::core {

struct MachineMetrics final {
    std::size_t states = 1;
    std::size_t steps = 0;
    std::size_t memory_bits = 0;
    bool randomized = false;
};

struct MachineCost final {
    double base = 0.0;
    double per_state = 0.0;
    double per_step = 0.0;
    double per_memory_bit = 0.0;
    double randomized_surcharge = 0.0;
    [[nodiscard]] double cost(const MachineMetrics& metrics) const noexcept;
};

class Machine {
public:
    virtual ~Machine() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    // Exact action distribution on input `type` (used for exact expected
    // utility; deterministic machines return a point mass).
    [[nodiscard]] virtual std::vector<double> action_distribution(
        std::size_t type, std::size_t num_actions) const = 0;
    // Executes once, recording input-dependent resource use.
    [[nodiscard]] virtual std::size_t run(std::size_t type, util::Rng& rng,
                                          MachineMetrics& metrics) const = 0;
    // Input-independent complexity summary (states, memory, randomized).
    [[nodiscard]] virtual MachineMetrics static_metrics() const = 0;
};

// Plays `action` regardless of type. 1 state, deterministic.
[[nodiscard]] std::shared_ptr<Machine> constant_machine(std::size_t action,
                                                        std::string name = {});
// Plays its own type as the action.
[[nodiscard]] std::shared_ptr<Machine> type_echo_machine();
// Uniform over all actions; randomized.
[[nodiscard]] std::shared_ptr<Machine> uniform_random_machine();
// Arbitrary type -> action table.
[[nodiscard]] std::shared_ptr<Machine> table_machine(std::vector<std::size_t> action_per_type,
                                                     std::string name);

// Wraps a complete-information game as a Bayesian game with single types
// (machine games consume Bayesian games; Example 3.3's roshambo enters
// through this lift).
[[nodiscard]] game::BayesianGame lift_to_bayesian(const game::NormalFormGame& game);

class MachineGame final {
public:
    MachineGame(game::BayesianGame base, MachineCost cost);

    void add_machine(std::size_t player, std::shared_ptr<Machine> machine);
    [[nodiscard]] std::size_t num_machines(std::size_t player) const;
    [[nodiscard]] const Machine& machine(std::size_t player, std::size_t index) const;
    [[nodiscard]] const game::BayesianGame& base() const noexcept { return base_; }

    // Exact expected utility of the machine profile for `player`:
    // E_types E_actions payoff - cost(static metrics).
    //
    // Machine action distributions are SUPPORTS (deterministic machines
    // are point masses), so the inner expectation runs as a
    // game::SupportPlan walk over the Bayesian action slice — one plan per
    // type profile, prefix-product weights keyed off the walker's
    // lowest-changed digit. Sums are bit-identical to utility_reference's
    // dense double loop (same cells, same order, same association).
    [[nodiscard]] double utility(const std::vector<std::size_t>& machine_profile,
                                 std::size_t player) const;

    // The archived pre-sweep utility: dense product_for_each over the full
    // action tensor with a per-cell `weight *=` loop. Golden baseline for
    // the sparse walk's fuzz cross-validation; not for production call
    // sites.
    [[nodiscard]] double utility_reference(const std::vector<std::size_t>& machine_profile,
                                           std::size_t player) const;

    // True iff no player can gain more than `tol` by switching machines.
    [[nodiscard]] bool is_machine_equilibrium(const std::vector<std::size_t>& machine_profile,
                                              double tol = 1e-9) const;

    // Exhaustive machine-profile scan, parallelized over ranked blocks of
    // the profile odometer (fixed block size: results and work counters
    // are independent of worker count; blocks are merged in rank order,
    // so output matches the serial scan exactly).
    [[nodiscard]] std::vector<std::vector<std::size_t>> machine_equilibria(
        double tol = 1e-9, game::SweepMode mode = game::SweepMode::kAuto) const;

    // Best-response machine indices of `player` against the profile.
    [[nodiscard]] std::vector<std::size_t> best_machines(
        const std::vector<std::size_t>& machine_profile, std::size_t player,
        double tol = 1e-9) const;

    // The best-response dynamic starting from `start`; returns the cycle
    // it falls into (profiles revisited), demonstrating nonexistence
    // constructively for Example 3.3.
    [[nodiscard]] std::vector<std::vector<std::size_t>> best_response_cycle(
        std::vector<std::size_t> start, std::size_t max_steps = 100) const;

private:
    game::BayesianGame base_;
    MachineCost cost_;
    std::vector<std::vector<std::shared_ptr<Machine>>> machines_;
};

// Example 3.3: computational roshambo. Machine sets {rock, paper,
// scissors, uniform-random} for both players; cost: deterministic 1,
// randomized 1 + surcharge.
[[nodiscard]] MachineGame computational_roshambo(double randomized_surcharge = 1.0);

}  // namespace bnash::core
