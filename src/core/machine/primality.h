// Example 3.1: the primality-guessing game with real computation costs.
//
// "You are given an n-bit number x. You can guess whether it is prime, or
// play safe and say nothing. If you guess right, you get $10; if you guess
// wrong, you lose $10; if you play safe, you get $1."
//
// The compute machine is a REAL deterministic Miller-Rabin primality test
// instrumented to count modular multiplications; its cost grows with the
// bit-length of x, so for a positive step price there is a bit-length
// beyond which "play safe" becomes the computational Nash equilibrium --
// exactly the paper's point that the unique classical equilibrium (always
// answer correctly) stops being one once computation is charged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace bnash::core {

// Deterministic Miller-Rabin, valid for all 64-bit inputs; increments
// *op_count per modular multiplication (the instrumented "steps").
[[nodiscard]] bool is_prime_u64(std::uint64_t value, std::uint64_t* op_count = nullptr);

enum class PrimalityMachineKind {
    kMillerRabin,     // computes the answer; pays per modular multiplication
    kPlaySafe,        // says nothing: guaranteed $1
    kAlwaysPrime,     // guesses "prime" unconditionally
    kAlwaysComposite, // guesses "composite" unconditionally
};

[[nodiscard]] std::string to_string(PrimalityMachineKind kind);

struct PrimalityParams final {
    // Inputs are `bits`-bit numbers drawn HALF PRIME / HALF COMPOSITE.
    // Substitution note (DESIGN.md): under a uniform prior the prime
    // density ~1/ln x makes blind "composite!" guessing dominate at large
    // bit lengths -- a density artifact orthogonal to the example's point
    // about computation costs. Balancing the prior keeps every blind
    // guesser at expected 0 (< the safe $1) at every size, isolating the
    // compute-vs-safe tradeoff the paper describes.
    unsigned bits = 16;
    double step_price = 0.01;        // dollars per modular multiplication
    double reward_correct = 10.0;
    double penalty_wrong = -10.0;
    double reward_safe = 1.0;
    std::size_t samples = 2000;
    std::uint64_t seed = 1;
};

struct PrimalityReport final {
    double expected_utility = 0.0;
    double average_steps = 0.0;
    double fraction_prime = 0.0;  // of sampled inputs
};

// Monte-Carlo expected utility of a machine over random `bits`-bit inputs.
[[nodiscard]] PrimalityReport evaluate_primality_machine(PrimalityMachineKind kind,
                                                         const PrimalityParams& params);

// The computational equilibrium of the 1-player game: the utility-
// maximizing machine at these parameters.
[[nodiscard]] PrimalityMachineKind best_primality_machine(const PrimalityParams& params);

}  // namespace bnash::core
