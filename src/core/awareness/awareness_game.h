// Games with awareness (Section 4, after Halpern-Rego 2006).
//
// A game with awareness is a tuple Gamma* = (G, Gamma_m, F): a set G of
// AUGMENTED GAMES (extensive games annotated with what each mover is aware
// of), a distinguished modeler's game Gamma_m describing the objective
// situation, and a map F assigning to each decision point (Gamma+, h) the
// game the mover BELIEVES is being played there and the information set
// within it that describes what the mover considers possible.
//
// A GENERALIZED STRATEGY PROFILE holds one behavioral strategy per
// (player, believed game) pair; play at a node always consults the
// strategy of the game its mover believes in. A profile is a GENERALIZED
// NASH EQUILIBRIUM when, for every ACTIVE pair (i, Gamma') (some node's
// belief points into Gamma'), sigma_{i,Gamma'} is a best response within
// Gamma' to the strategies induced there. Halpern-Rego: every game with
// awareness has one, and for the canonical representation of a standard
// game the generalized equilibria are exactly the Nash equilibria -- both
// facts are exercised by the tests.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "game/extensive.h"
#include "game/strategy.h"

namespace bnash::core {

class AwarenessGame final {
public:
    using GameIndex = std::size_t;
    using NodeId = game::ExtensiveGame::NodeId;

    // Belief target: the game the mover thinks is being played and the
    // information set (in that game) of histories it considers possible.
    struct Belief final {
        GameIndex game = 0;
        std::size_t info_set = 0;
    };

    AwarenessGame() = default;

    // The first added game is the modeler's game Gamma_m.
    GameIndex add_game(game::ExtensiveGame g);
    // Declares F(game, node) = belief. Unset decision nodes default to
    // (same game, own info set).
    void set_belief(GameIndex g, NodeId node, Belief belief);
    // Validates: belief targets exist, movers match, action counts agree.
    void finalize();

    [[nodiscard]] std::size_t num_games() const noexcept { return games_.size(); }
    [[nodiscard]] const game::ExtensiveGame& game_at(GameIndex g) const {
        return games_.at(g);
    }
    [[nodiscard]] Belief belief(GameIndex g, NodeId node) const;

    // Active (player, game) pairs and active (game, info set) slots --
    // those reachable through F, the only ones equilibrium conditions
    // quantify over.
    [[nodiscard]] std::vector<std::pair<std::size_t, GameIndex>> active_pairs() const;
    [[nodiscard]] bool is_active_slot(GameIndex g, std::size_t info_set) const;

    // profile[g][info_set] = mixed action distribution. Slots that are not
    // active are carried but never consulted.
    using Profile = std::vector<std::vector<game::MixedStrategy>>;

    [[nodiscard]] Profile uniform_profile() const;

    // Expected payoffs of playing out game g with every mover consulting
    // its believed strategy.
    [[nodiscard]] std::vector<double> local_expected_payoffs(GameIndex g,
                                                             const Profile& profile) const;

    [[nodiscard]] bool is_generalized_nash(const Profile& profile, double tol = 1e-9) const;

    // Coupled best-response iteration over the active pairs; returns a
    // profile (a generalized Nash equilibrium whenever it converged, which
    // the caller can confirm via is_generalized_nash).
    [[nodiscard]] Profile solve_by_best_response(std::size_t max_sweeps = 200,
                                                 double tol = 1e-9) const;

    // Exhaustive enumeration of pure generalized equilibria over the
    // active slots (inactive slots pinned to action 0).
    [[nodiscard]] std::vector<Profile> pure_generalized_equilibria(double tol = 1e-9) const;

    // Canonical representation of a standard extensive game: G = {Gamma},
    // F(Gamma, h) = (Gamma, info set of h).
    [[nodiscard]] static AwarenessGame canonical(game::ExtensiveGame g);

private:
    void require_finalized() const;
    // Best pure response of `player` over its active info sets in game g,
    // holding the rest of the profile fixed. Returns improvement found.
    double best_response_in(GameIndex g, std::size_t player, Profile& profile,
                            double tol) const;

    std::vector<game::ExtensiveGame> games_;
    std::map<std::pair<GameIndex, NodeId>, Belief> beliefs_;
    bool finalized_ = false;
};

// ------------------------------------------------------------- constructors

// The paper's Figures 1-3 as a game with awareness (payoffs reconstructed;
// see DESIGN.md). `p` = A's probability that B is unaware of down_B.
// Games: 0 = Gamma_m (Figure 1), 1 = Gamma_A (Figure 2: nature chooses
// B's awareness), 2 = Gamma_B (Figure 3: down_B absent).
struct Figure1Awareness final {
    AwarenessGame game;
    AwarenessGame::GameIndex modeler = 0;
    AwarenessGame::GameIndex gamma_a = 1;
    AwarenessGame::GameIndex gamma_b = 2;
    std::size_t a_infoset_in_gamma_a = 0;  // filled by the builder
};
[[nodiscard]] Figure1Awareness figure1_awareness_game(const util::Rational& p);

// Awareness of unawareness: A knows B has SOME move it cannot conceive of
// and models it as a virtual move with believed payoffs
// (believed_a, believed_b). Games: 0 = modeler (Figure 1), 1 = A's
// subjective game with the virtual third move for B.
[[nodiscard]] AwarenessGame virtual_move_game(const util::Rational& believed_a,
                                              const util::Rational& believed_b);

}  // namespace bnash::core
