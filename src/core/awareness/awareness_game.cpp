#include "core/awareness/awareness_game.h"

#include <algorithm>
#include <functional>
#include <set>
#include <stdexcept>

#include "game/catalog.h"
#include "util/combinatorics.h"
#include "util/work_counters.h"

namespace bnash::core {

using game::ExtensiveGame;
using util::Rational;

AwarenessGame::GameIndex AwarenessGame::add_game(ExtensiveGame g) {
    if (finalized_) throw std::logic_error("AwarenessGame: already finalized");
    games_.push_back(std::move(g));
    return games_.size() - 1;
}

void AwarenessGame::set_belief(GameIndex g, NodeId node, Belief belief) {
    if (finalized_) throw std::logic_error("AwarenessGame: already finalized");
    if (g >= games_.size()) throw std::out_of_range("set_belief: bad game");
    beliefs_[{g, node}] = belief;
}

AwarenessGame::Belief AwarenessGame::belief(GameIndex g, NodeId node) const {
    if (const auto it = beliefs_.find({g, node}); it != beliefs_.end()) return it->second;
    // Default: the mover believes the game it is actually in, at the
    // node's own information set.
    return Belief{g, games_.at(g).node(node).info_set};
}

void AwarenessGame::finalize() {
    if (games_.empty()) throw std::logic_error("AwarenessGame: no games");
    for (GameIndex g = 0; g < games_.size(); ++g) {
        for (NodeId node = 0; node < games_[g].num_nodes(); ++node) {
            if (games_[g].node(node).kind != ExtensiveGame::NodeKind::kDecision) continue;
            const auto b = belief(g, node);
            if (b.game >= games_.size()) {
                throw std::logic_error("AwarenessGame: belief into missing game");
            }
            const auto& own_set = games_[g].info_set(games_[g].node(node).info_set);
            if (b.info_set >= games_[b.game].num_info_sets()) {
                throw std::logic_error("AwarenessGame: belief into missing info set");
            }
            const auto& target_set = games_[b.game].info_set(b.info_set);
            if (target_set.player != own_set.player) {
                throw std::logic_error("AwarenessGame: belief changes the mover");
            }
            if (target_set.num_actions() != own_set.num_actions()) {
                throw std::logic_error(
                    "AwarenessGame: belief target has a different action count");
            }
        }
    }
    finalized_ = true;
}

std::vector<std::pair<std::size_t, AwarenessGame::GameIndex>> AwarenessGame::active_pairs()
    const {
    require_finalized();
    std::set<std::pair<std::size_t, GameIndex>> seen;
    for (GameIndex g = 0; g < games_.size(); ++g) {
        for (NodeId node = 0; node < games_[g].num_nodes(); ++node) {
            if (games_[g].node(node).kind != ExtensiveGame::NodeKind::kDecision) continue;
            const auto b = belief(g, node);
            seen.insert({games_[b.game].info_set(b.info_set).player, b.game});
        }
    }
    return {seen.begin(), seen.end()};
}

bool AwarenessGame::is_active_slot(GameIndex g, std::size_t info_set) const {
    require_finalized();
    for (GameIndex src = 0; src < games_.size(); ++src) {
        for (NodeId node = 0; node < games_[src].num_nodes(); ++node) {
            if (games_[src].node(node).kind != ExtensiveGame::NodeKind::kDecision) continue;
            const auto b = belief(src, node);
            if (b.game == g && b.info_set == info_set) return true;
        }
    }
    return false;
}

AwarenessGame::Profile AwarenessGame::uniform_profile() const {
    require_finalized();
    Profile out(games_.size());
    for (GameIndex g = 0; g < games_.size(); ++g) {
        out[g].reserve(games_[g].num_info_sets());
        for (std::size_t i = 0; i < games_[g].num_info_sets(); ++i) {
            out[g].push_back(game::uniform_strategy(games_[g].info_set(i).num_actions()));
        }
    }
    return out;
}

std::vector<double> AwarenessGame::local_expected_payoffs(GameIndex g,
                                                          const Profile& profile) const {
    require_finalized();
    const auto& tree = games_.at(g);
    std::vector<double> totals(tree.num_players(), 0.0);

    struct Walker final {
        const AwarenessGame& owner;
        GameIndex g;
        const Profile& profile;
        const ExtensiveGame& tree;
        std::vector<double>& totals;
        void walk(NodeId node, double weight) {
            const auto& n = tree.node(node);
            switch (n.kind) {
                case ExtensiveGame::NodeKind::kTerminal:
                    for (std::size_t p = 0; p < tree.num_players(); ++p) {
                        totals[p] += weight * n.payoffs[p].to_double();
                    }
                    return;
                case ExtensiveGame::NodeKind::kChance:
                    for (std::size_t a = 0; a < n.children.size(); ++a) {
                        const double prob = n.chance_probs[a].to_double();
                        if (prob > 0.0) walk(n.children[a], weight * prob);
                    }
                    return;
                case ExtensiveGame::NodeKind::kDecision: {
                    const auto b = owner.belief(g, node);
                    const auto& strategy = profile.at(b.game).at(b.info_set);
                    for (std::size_t a = 0; a < n.children.size(); ++a) {
                        if (strategy[a] > 0.0) walk(n.children[a], weight * strategy[a]);
                    }
                    return;
                }
            }
        }
    };
    Walker walker{*this, g, profile, tree, totals};
    walker.walk(tree.root(), 1.0);
    return totals;
}

namespace {

// Active info sets of `player` within game g, given an activity oracle.
std::vector<std::size_t> player_slots(const ExtensiveGame& tree, std::size_t player,
                                      const std::function<bool(std::size_t)>& active) {
    std::vector<std::size_t> out;
    for (const std::size_t info_set : tree.info_sets_of(player)) {
        if (active(info_set)) out.push_back(info_set);
    }
    return out;
}

}  // namespace

bool AwarenessGame::is_generalized_nash(const Profile& profile, double tol) const {
    require_finalized();
    auto working = profile;
    for (const auto& [player, g] : active_pairs()) {
        const double current = local_expected_payoffs(g, working)[player];
        const auto slots = player_slots(games_[g], player, [&](std::size_t info_set) {
            return is_active_slot(g, info_set);
        });
        if (slots.empty()) continue;
        std::vector<std::size_t> radices;
        radices.reserve(slots.size());
        for (const std::size_t s : slots) {
            radices.push_back(games_[g].info_set(s).num_actions());
        }
        const auto saved = working[g];
        bool improved = false;
        util::product_for_each(radices, [&](const std::vector<std::size_t>& assignment) {
            for (std::size_t i = 0; i < slots.size(); ++i) {
                working[g][slots[i]] = game::pure_as_mixed(
                    assignment[i], games_[g].info_set(slots[i]).num_actions());
            }
            if (local_expected_payoffs(g, working)[player] > current + tol) {
                improved = true;
                return false;
            }
            return true;
        });
        working[g] = saved;
        if (improved) return false;
    }
    return true;
}

double AwarenessGame::best_response_in(GameIndex g, std::size_t player, Profile& profile,
                                       double tol) const {
    const auto slots = player_slots(games_[g], player, [&](std::size_t info_set) {
        return is_active_slot(g, info_set);
    });
    if (slots.empty()) return 0.0;
    std::vector<std::size_t> radices;
    for (const std::size_t s : slots) radices.push_back(games_[g].info_set(s).num_actions());

    // Trembling-hand evaluation: mix every OTHER slot with a whiff of
    // uniform noise so off-path nodes still discipline the choice (without
    // it, a player whose node is unreachable under the current profile
    // would never refine its strategy there and the iteration can stall in
    // coarse equilibria the paper's narrative excludes). The final profile
    // is verified unperturbed by is_generalized_nash.
    constexpr double kTremble = 1e-3;
    Profile perturbed = profile;
    for (GameIndex pg = 0; pg < games_.size(); ++pg) {
        for (std::size_t is = 0; is < perturbed[pg].size(); ++is) {
            auto& strategy = perturbed[pg][is];
            const double uniform = 1.0 / static_cast<double>(strategy.size());
            for (double& mass : strategy) {
                mass = (1.0 - kTremble) * mass + kTremble * uniform;
            }
        }
    }

    const auto evaluate = [&](const std::vector<std::size_t>& assignment) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            perturbed[g][slots[i]] = game::pure_as_mixed(
                assignment[i], games_[g].info_set(slots[i]).num_actions());
        }
        return local_expected_payoffs(g, perturbed)[player];
    };

    // Current assignment's perturbed value: restore the candidate slots to
    // the (perturbed) incumbent strategies first.
    double current = 0.0;
    {
        Profile incumbent = perturbed;
        current = local_expected_payoffs(g, incumbent)[player];
    }
    double best_value = current;
    std::optional<std::vector<std::size_t>> best_assignment;
    util::product_for_each(radices, [&](const std::vector<std::size_t>& assignment) {
        const double value = evaluate(assignment);
        if (value > best_value + tol) {
            best_value = value;
            best_assignment = assignment;
        }
        return true;
    });
    if (best_assignment) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            profile[g][slots[i]] = game::pure_as_mixed(
                (*best_assignment)[i], games_[g].info_set(slots[i]).num_actions());
        }
        return best_value - current;
    }
    return 0.0;
}

AwarenessGame::Profile AwarenessGame::solve_by_best_response(std::size_t max_sweeps,
                                                             double tol) const {
    require_finalized();
    auto profile = uniform_profile();
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        double improvement = 0.0;
        for (const auto& [player, g] : active_pairs()) {
            improvement += best_response_in(g, player, profile, tol);
        }
        if (improvement <= tol) break;
    }
    return profile;
}

std::vector<AwarenessGame::Profile> AwarenessGame::pure_generalized_equilibria(
    double tol) const {
    require_finalized();
    // Enumerate assignments over all active slots.
    std::vector<std::pair<GameIndex, std::size_t>> slots;
    std::vector<std::size_t> radices;
    for (GameIndex g = 0; g < games_.size(); ++g) {
        for (std::size_t i = 0; i < games_[g].num_info_sets(); ++i) {
            if (is_active_slot(g, i)) {
                slots.emplace_back(g, i);
                radices.push_back(games_[g].info_set(i).num_actions());
            }
        }
    }
    std::vector<Profile> out;
    std::uint64_t assignments = 0;
    util::product_for_each(radices, [&](const std::vector<std::size_t>& assignment) {
        ++assignments;
        Profile profile(games_.size());
        for (GameIndex g = 0; g < games_.size(); ++g) {
            for (std::size_t i = 0; i < games_[g].num_info_sets(); ++i) {
                profile[g].push_back(
                    game::pure_as_mixed(0, games_[g].info_set(i).num_actions()));
            }
        }
        for (std::size_t s = 0; s < slots.size(); ++s) {
            profile[slots[s].first][slots[s].second] = game::pure_as_mixed(
                assignment[s],
                games_[slots[s].first].info_set(slots[s].second).num_actions());
        }
        if (is_generalized_nash(profile, tol)) out.push_back(std::move(profile));
        return true;
    });
    // One cell per candidate assignment: the bench-gated work metric for
    // the enumeration (the awareness solver has no tensor sweep to count).
    util::work_counters_add(assignments, 0);
    return out;
}

AwarenessGame AwarenessGame::canonical(ExtensiveGame g) {
    AwarenessGame out;
    (void)out.add_game(std::move(g));
    out.finalize();
    return out;
}

void AwarenessGame::require_finalized() const {
    if (!finalized_) throw std::logic_error("AwarenessGame: finalize() not called");
}

// ---------------------------------------------------------------- builders

Figure1Awareness figure1_awareness_game(const Rational& p) {
    if (p.sign() < 0 || p > Rational{1}) {
        throw std::invalid_argument("figure1_awareness_game: p in [0,1]");
    }
    Figure1Awareness out;

    // Gamma_A: nature decides whether B is aware of down_B; A cannot tell.
    ExtensiveGame gamma_a(2);
    const auto nature = gamma_a.add_chance({Rational{1} - p, p});  // 0: aware, 1: unaware
    const auto a_aware = gamma_a.add_decision(0, "A.1", {"down_A", "across_A"});
    const auto a_unaware = gamma_a.add_decision(0, "A.1", {"down_A", "across_A"});
    const auto down1 = gamma_a.add_terminal({1, 1});
    const auto down2 = gamma_a.add_terminal({1, 1});
    const auto b_aware = gamma_a.add_decision(1, "B.1", {"down_B", "across_B"});
    const auto b_unaware = gamma_a.add_decision(1, "B.2", {"across_B"});
    const auto aware_down = gamma_a.add_terminal({2, 2});
    const auto aware_across = gamma_a.add_terminal({0, 0});
    const auto unaware_across = gamma_a.add_terminal({0, 0});
    gamma_a.set_child(nature, 0, a_aware);
    gamma_a.set_child(nature, 1, a_unaware);
    gamma_a.set_child(a_aware, 0, down1);
    gamma_a.set_child(a_aware, 1, b_aware);
    gamma_a.set_child(a_unaware, 0, down2);
    gamma_a.set_child(a_unaware, 1, b_unaware);
    gamma_a.set_child(b_aware, 0, aware_down);
    gamma_a.set_child(b_aware, 1, aware_across);
    gamma_a.set_child(b_unaware, 0, unaware_across);
    gamma_a.finalize();

    auto modeler = game::catalog::figure1_game();
    auto gamma_b = game::catalog::figure1_game_without_downB();

    const auto modeler_a_node = modeler.node_at({});
    const auto modeler_b_set = *modeler.find_info_set("B");
    const auto gamma_b_b_set = *gamma_b.find_info_set("B");
    const auto gamma_a_a_set = *gamma_a.find_info_set("A.1");

    out.modeler = out.game.add_game(std::move(modeler));
    out.gamma_a = out.game.add_game(std::move(gamma_a));
    out.gamma_b = out.game.add_game(std::move(gamma_b));
    out.a_infoset_in_gamma_a = gamma_a_a_set;

    // F wiring per the paper's narrative:
    // - At the modeler-game root, A believes Gamma_A (it is uncertain
    //   whether B is aware): F(Gamma_m, <>) = (Gamma_A, A.1).
    out.game.set_belief(out.modeler, modeler_a_node, {out.gamma_a, gamma_a_a_set});
    // - The aware B (node B.1 of Gamma_A) believes the true game is the
    //   modeler's game.
    out.game.set_belief(out.gamma_a, b_aware,
                        {out.modeler, modeler_b_set});
    // - The unaware B (node B.2) believes Gamma_B:
    //   F(Gamma_A, <unaware, across_A>) = (Gamma_B, {<across_A>}).
    out.game.set_belief(out.gamma_a, b_unaware, {out.gamma_b, gamma_b_b_set});
    // Everything else defaults to (own game, own info set).
    out.game.finalize();
    return out;
}

AwarenessGame virtual_move_game(const Rational& believed_a, const Rational& believed_b) {
    AwarenessGame out;

    // A's subjective game: B has a third, "virtual" move whose payoffs A
    // can only estimate (the chess-evaluation analogy of Section 4).
    ExtensiveGame subjective(2);
    const auto a_node = subjective.add_decision(0, "A", {"down_A", "across_A"});
    const auto down_a = subjective.add_terminal({1, 1});
    const auto b_node =
        subjective.add_decision(1, "B+virtual", {"down_B", "across_B", "virtual"});
    const auto down_b = subjective.add_terminal({2, 2});
    const auto across_b = subjective.add_terminal({0, 0});
    const auto virtual_move = subjective.add_terminal({believed_a, believed_b});
    subjective.set_child(a_node, 0, down_a);
    subjective.set_child(a_node, 1, b_node);
    subjective.set_child(b_node, 0, down_b);
    subjective.set_child(b_node, 1, across_b);
    subjective.set_child(b_node, 2, virtual_move);
    subjective.finalize();

    auto modeler = game::catalog::figure1_game();
    const auto modeler_root = modeler.node_at({});
    const auto subjective_a_set = *subjective.find_info_set("A");

    const auto modeler_index = out.add_game(std::move(modeler));
    const auto subjective_index = out.add_game(std::move(subjective));
    out.set_belief(modeler_index, modeler_root, {subjective_index, subjective_a_set});
    out.finalize();
    return out;
}

}  // namespace bnash::core
