// Nash-equilibrium verification oracles and exhaustive pure enumeration.
//
// Every solver in this library is validated against these oracles: a
// candidate profile is accepted only if no unilateral deviation gains more
// than the stated tolerance (exactly zero for the Rational interfaces).
#pragma once

#include <vector>

#include "game/normal_form.h"
#include "game/strategy.h"

namespace bnash::solver {

// The double-precision slack under which two payoffs count as tied:
// is_nash's default deviation tolerance AND the learning dynamics'
// best-response tie tolerance. Shared so the verifier and the dynamics
// cannot silently disagree about what a tie is (fictitious play used to
// hardcode its own copy).
inline constexpr double kNashTolerance = 1e-9;

// True iff no player can gain more than `epsilon` by a unilateral pure
// deviation (mixed deviations cannot gain more than the best pure one).
[[nodiscard]] bool is_epsilon_nash(const game::NormalFormGame& game,
                                   const game::MixedProfile& profile, double epsilon);

[[nodiscard]] bool is_nash(const game::NormalFormGame& game, const game::MixedProfile& profile,
                           double tol = kNashTolerance);

// Exact check for exact profiles: deviations must not gain at all.
[[nodiscard]] bool is_nash_exact(const game::NormalFormGame& game,
                                 const game::ExactMixedProfile& profile);

// Exact check for pure profiles.
[[nodiscard]] bool is_pure_nash(const game::NormalFormGame& game,
                                const game::PureProfile& profile);

// All pure Nash equilibria, by exhaustive enumeration (exact arithmetic).
[[nodiscard]] std::vector<game::PureProfile> pure_nash_equilibria(
    const game::NormalFormGame& game);

// True iff `profile` is Pareto-dominated by some pure profile (used for the
// paper's "(C,C) is better for both than (D,D)" style observations).
[[nodiscard]] bool is_pareto_dominated(const game::NormalFormGame& game,
                                       const game::PureProfile& profile);

}  // namespace bnash::solver
