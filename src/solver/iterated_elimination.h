// Iterated elimination of dominated strategies.
//
// One of the "refinements of Nash equilibrium" the paper's introduction
// surveys. Supports strict and weak pure-strategy domination and strict
// domination by mixed strategies (the LP test), applied to all players
// round-robin until a fixed point.
#pragma once

#include <cstddef>
#include <vector>

#include "game/game_view.h"
#include "game/normal_form.h"

namespace bnash::solver {

enum class DominanceKind {
    kStrictPure,   // dominated by some pure strategy, strictly everywhere
    kWeakPure,     // weakly dominated by a pure strategy (>= all, > somewhere)
    kStrictMixed,  // dominated by a mixed strategy (LP certificate)
};

struct EliminationStep final {
    std::size_t player = 0;
    std::size_t action = 0;  // index in the ORIGINAL game
    friend bool operator==(const EliminationStep&, const EliminationStep&) = default;
};

struct EliminationResult final {
    game::NormalFormGame reduced;
    // kept[player] = surviving original action indices, ascending.
    std::vector<std::vector<std::size_t>> kept;
    std::vector<EliminationStep> trace;
};

// Zero-copy sibling: the reduction as a VIEW into the original game's
// tensors — no materialization at all. Downstream consumers that are
// view-native (the robustness checkers, the 2-player solvers) check the
// reduced game without a single tensor allocation; the view must not
// outlive the game it was built from.
struct ViewEliminationResult final {
    game::GameView reduced;
    std::vector<std::vector<std::size_t>> kept;
    std::vector<EliminationStep> trace;
};

// Iterates until no further elimination applies. For kWeakPure the result
// can depend on elimination order (a classic fact); this implementation
// removes the lowest-indexed dominated action of the lowest-indexed player
// first, making the output deterministic.
//
// The reduction loop runs entirely on zero-copy GameViews: each round
// re-restricts a view of the ORIGINAL game to the surviving actions and
// scans dominance through it; the only payoff tensor allocated is the
// final `reduced` materialization (asserted by the allocation-count
// test). The seed implementation copied both tensors on every round.
[[nodiscard]] EliminationResult iterated_elimination(const game::NormalFormGame& game,
                                                     DominanceKind kind);

// The same reduction, stopping BEFORE the materialization: allocates no
// payoff tensor whatsoever. iterated_elimination is this plus one
// materialize().
[[nodiscard]] ViewEliminationResult iterated_elimination_view(const game::NormalFormGame& game,
                                                              DominanceKind kind);

// True iff `action` of `player` is dominated in `game` under `kind`
// (single-round test, no iteration).
[[nodiscard]] bool is_dominated(const game::NormalFormGame& game, std::size_t player,
                                std::size_t action, DominanceKind kind);

// View overload: the dominance scan the reduction loop uses (action is a
// VIEW action index).
[[nodiscard]] bool is_dominated(const game::GameView& view, std::size_t player,
                                std::size_t action, DominanceKind kind);

}  // namespace bnash::solver
