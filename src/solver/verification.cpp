#include "solver/verification.h"

#include <stdexcept>

#include "game/payoff_engine.h"
#include "util/combinatorics.h"

namespace bnash::solver {
namespace {

// Shared stride-based pure-Nash test: compares `player`'s payoff at
// `rank` against every unilateral deviation by walking the player's
// stride, with no profile materialization or re-ranking.
// Matches the validation the seed's game.payoff() path performed via
// product_rank; rank_of itself is an unchecked hot-path primitive.
void validate_pure_profile(const game::NormalFormGame& game,
                           const game::PureProfile& profile) {
    if (profile.size() != game.num_players()) {
        throw std::invalid_argument("pure profile: size mismatch");
    }
    for (std::size_t i = 0; i < profile.size(); ++i) {
        if (profile[i] >= game.num_actions(i)) {
            throw std::out_of_range("pure profile: action out of range");
        }
    }
}

bool is_pure_nash_at(const game::NormalFormGame& game,
                     const std::vector<std::uint64_t>& strides, std::uint64_t rank,
                     const game::PureProfile& profile) {
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        const auto& current = game.payoff_at(rank, player);
        const std::uint64_t base = rank - profile[player] * strides[player];
        for (std::size_t action = 0; action < game.num_actions(player); ++action) {
            if (action == profile[player]) continue;
            if (game.payoff_at(base + action * strides[player], player) > current) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace

bool is_epsilon_nash(const game::NormalFormGame& game, const game::MixedProfile& profile,
                     double epsilon) {
    const game::PayoffEngine engine(game);
    const auto dev = engine.deviation_payoffs_all(profile);
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        double current = 0.0;
        for (std::size_t action = 0; action < dev[player].size(); ++action) {
            current += profile[player][action] * dev[player][action];
        }
        for (const double value : dev[player]) {
            if (value > current + epsilon) return false;
        }
    }
    return true;
}

bool is_nash(const game::NormalFormGame& game, const game::MixedProfile& profile, double tol) {
    return is_epsilon_nash(game, profile, tol);
}

bool is_nash_exact(const game::NormalFormGame& game, const game::ExactMixedProfile& profile) {
    const game::PayoffEngine engine(game);
    const auto dev = engine.deviation_payoffs_all_exact(profile);
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        util::Rational current{0};
        for (std::size_t action = 0; action < dev[player].size(); ++action) {
            current += profile[player][action] * dev[player][action];
        }
        for (const auto& value : dev[player]) {
            if (value > current) return false;
        }
    }
    return true;
}

bool is_pure_nash(const game::NormalFormGame& game, const game::PureProfile& profile) {
    validate_pure_profile(game, profile);
    const game::PayoffEngine engine(game);
    return is_pure_nash_at(game, engine.strides(), engine.rank_of(profile), profile);
}

std::vector<game::PureProfile> pure_nash_equilibria(const game::NormalFormGame& game) {
    const game::PayoffEngine engine(game);
    const auto& strides = engine.strides();
    std::vector<game::PureProfile> out;
    // product_for_each visits in row-major order, so a running counter
    // tracks each profile's rank without re-ranking.
    std::uint64_t rank = 0;
    util::product_for_each(game.action_counts(), [&](const game::PureProfile& profile) {
        if (is_pure_nash_at(game, strides, rank, profile)) out.push_back(profile);
        ++rank;
        return true;
    });
    return out;
}

bool is_pareto_dominated(const game::NormalFormGame& game, const game::PureProfile& profile) {
    validate_pure_profile(game, profile);
    const game::PayoffEngine engine(game);
    const std::uint64_t here_rank = engine.rank_of(profile);
    for (std::uint64_t other = 0; other < game.num_profiles(); ++other) {
        bool all_at_least = true;
        bool some_better = false;
        for (std::size_t player = 0; player < game.num_players(); ++player) {
            const auto& here = game.payoff_at(here_rank, player);
            const auto& there = game.payoff_at(other, player);
            if (there < here) {
                all_at_least = false;
                break;
            }
            if (there > here) some_better = true;
        }
        if (all_at_least && some_better) return true;
    }
    return false;
}

}  // namespace bnash::solver
