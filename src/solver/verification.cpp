#include "solver/verification.h"

#include "util/combinatorics.h"

namespace bnash::solver {

bool is_epsilon_nash(const game::NormalFormGame& game, const game::MixedProfile& profile,
                     double epsilon) {
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        const double current = game.expected_payoff(profile, player);
        for (std::size_t action = 0; action < game.num_actions(player); ++action) {
            if (game.deviation_payoff(profile, player, action) > current + epsilon) {
                return false;
            }
        }
    }
    return true;
}

bool is_nash(const game::NormalFormGame& game, const game::MixedProfile& profile, double tol) {
    return is_epsilon_nash(game, profile, tol);
}

bool is_nash_exact(const game::NormalFormGame& game, const game::ExactMixedProfile& profile) {
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        const auto current = game.expected_payoff_exact(profile, player);
        for (std::size_t action = 0; action < game.num_actions(player); ++action) {
            if (game.deviation_payoff_exact(profile, player, action) > current) return false;
        }
    }
    return true;
}

bool is_pure_nash(const game::NormalFormGame& game, const game::PureProfile& profile) {
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        const auto& current = game.payoff(profile, player);
        game::PureProfile deviated = profile;
        for (std::size_t action = 0; action < game.num_actions(player); ++action) {
            if (action == profile[player]) continue;
            deviated[player] = action;
            if (game.payoff(deviated, player) > current) return false;
        }
        deviated[player] = profile[player];
    }
    return true;
}

std::vector<game::PureProfile> pure_nash_equilibria(const game::NormalFormGame& game) {
    std::vector<game::PureProfile> out;
    util::product_for_each(game.action_counts(), [&](const game::PureProfile& profile) {
        if (is_pure_nash(game, profile)) out.push_back(profile);
        return true;
    });
    return out;
}

bool is_pareto_dominated(const game::NormalFormGame& game, const game::PureProfile& profile) {
    bool dominated = false;
    util::product_for_each(game.action_counts(), [&](const game::PureProfile& other) {
        bool all_at_least = true;
        bool some_better = false;
        for (std::size_t player = 0; player < game.num_players(); ++player) {
            const auto& here = game.payoff(profile, player);
            const auto& there = game.payoff(other, player);
            if (there < here) all_at_least = false;
            if (there > here) some_better = true;
        }
        if (all_at_least && some_better) {
            dominated = true;
            return false;  // early out
        }
        return true;
    });
    return dominated;
}

}  // namespace bnash::solver
