#include "solver/zero_sum.h"

#include <functional>
#include <stdexcept>

#include "util/simplex.h"

namespace bnash::solver {
namespace {

// max v s.t. sum_i x_i payoff(i, j) >= v for all j, x a distribution.
// v is free, encoded as v_plus - v_minus. `payoff` indexes (own, other).
game::MixedStrategy solve_side(std::size_t own_count, std::size_t other_count,
                               const std::function<double(std::size_t, std::size_t)>& payoff,
                               double& value_out) {
    util::LpProblem lp;
    lp.objective.assign(own_count + 2, 0.0);
    lp.objective[own_count] = 1.0;       // v_plus
    lp.objective[own_count + 1] = -1.0;  // v_minus
    for (std::size_t j = 0; j < other_count; ++j) {
        util::LpConstraint constraint;
        constraint.coefficients.assign(own_count + 2, 0.0);
        for (std::size_t i = 0; i < own_count; ++i) {
            constraint.coefficients[i] = payoff(i, j);
        }
        constraint.coefficients[own_count] = -1.0;
        constraint.coefficients[own_count + 1] = 1.0;
        constraint.relation = util::LpRelation::kGreaterEqual;
        constraint.rhs = 0.0;
        lp.constraints.push_back(std::move(constraint));
    }
    util::LpConstraint simplex_row;
    simplex_row.coefficients.assign(own_count + 2, 1.0);
    simplex_row.coefficients[own_count] = 0.0;
    simplex_row.coefficients[own_count + 1] = 0.0;
    simplex_row.relation = util::LpRelation::kEqual;
    simplex_row.rhs = 1.0;
    lp.constraints.push_back(std::move(simplex_row));

    const auto solution = util::solve_lp(lp);
    if (solution.status != util::LpStatus::kOptimal) {
        throw std::logic_error("solve_zero_sum: LP not optimal (" +
                               util::to_string(solution.status) + ")");
    }
    value_out = solution.objective_value;
    return game::MixedStrategy(solution.x.begin(),
                               solution.x.begin() + static_cast<std::ptrdiff_t>(own_count));
}

}  // namespace

ZeroSumSolution solve_zero_sum(const game::NormalFormGame& game) {
    if (game.num_players() != 2) throw std::logic_error("solve_zero_sum: 2 players required");
    for (std::uint64_t rank = 0; rank < game.num_profiles(); ++rank) {
        const auto profile = game.profile_unrank(rank);
        if (game.payoff(profile, 0) + game.payoff(profile, 1) != util::Rational{0}) {
            throw std::logic_error("solve_zero_sum: game is not zero-sum");
        }
    }
    ZeroSumSolution out;
    double row_value = 0.0;
    out.row_strategy = solve_side(
        game.num_actions(0), game.num_actions(1),
        [&](std::size_t i, std::size_t j) { return game.payoff_d({i, j}, 0); }, row_value);
    double col_value = 0.0;
    out.col_strategy = solve_side(
        game.num_actions(1), game.num_actions(0),
        [&](std::size_t j, std::size_t i) { return game.payoff_d({i, j}, 1); }, col_value);
    out.value = row_value;
    return out;
}

}  // namespace bnash::solver
