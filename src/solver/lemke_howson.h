// Lemke-Howson complementary pivoting for 2-player games, in exact
// rational arithmetic.
//
// The algorithm walks edges of the best-response polytopes
//   P = { x >= 0 : B^T x <= 1 },  Q = { y >= 0 : A y <= 1 }
// (payoffs shifted positive first), starting from the artificial
// equilibrium (0,0) by dropping one label, until a completely labeled pair
// is reached; the normalized pair is a Nash equilibrium. Different dropped
// labels may reach different equilibria.
//
// Degenerate games can cycle under the naive minimum-ratio rule; pivoting
// is capped and std::nullopt returned so callers can fall back to
// support_enumeration (the exact-but-slower path).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "game/game_view.h"
#include "game/normal_form.h"
#include "solver/support_enumeration.h"

namespace bnash::solver {

struct LemkeHowsonStats final {
    std::size_t pivots = 0;
};

// Runs one Lemke-Howson path dropping `initial_label` in [0, m+n).
// Throws std::logic_error unless the game has exactly 2 players.
[[nodiscard]] std::optional<MixedEquilibrium> lemke_howson(
    const game::NormalFormGame& game, std::size_t initial_label = 0,
    std::size_t max_pivots = 100'000, LemkeHowsonStats* stats = nullptr);

// Zero-copy overload: pivots on the viewed subgame directly (strategies
// in VIEW action space), materializing no restricted tensor. The
// NormalFormGame overload is this on the identity view.
[[nodiscard]] std::optional<MixedEquilibrium> lemke_howson(
    const game::GameView& view, std::size_t initial_label = 0,
    std::size_t max_pivots = 100'000, LemkeHowsonStats* stats = nullptr);

// Runs every initial label and returns the distinct equilibria found.
[[nodiscard]] std::vector<MixedEquilibrium> lemke_howson_all_labels(
    const game::NormalFormGame& game, std::size_t max_pivots = 100'000);
[[nodiscard]] std::vector<MixedEquilibrium> lemke_howson_all_labels(
    const game::GameView& view, std::size_t max_pivots = 100'000);

}  // namespace bnash::solver
