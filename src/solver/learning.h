// Learning dynamics: fictitious play and replicator dynamics.
//
// These are the approximate, any-number-of-players counterparts to the
// exact 2-player solvers, and double as the "how do players obtain correct
// beliefs?" machinery the paper's introduction asks about: both dynamics
// model belief formation through repeated play.
#pragma once

#include <cstddef>
#include <vector>

#include "game/normal_form.h"
#include "game/strategy.h"
#include "solver/verification.h"

namespace bnash::solver {

struct LearningResult final {
    game::MixedProfile profile;        // the candidate equilibrium
    double final_regret = 0.0;         // regret of `profile`
    std::size_t iterations = 0;        // iterations actually run
    bool converged = false;            // final_regret <= target_regret
    std::vector<double> regret_trace;  // regret sampled every `trace_every`
};

struct LearningOptions final {
    std::size_t max_iterations = 10'000;
    double target_regret = 1e-3;
    std::size_t trace_every = 100;
    double replicator_step = 0.1;
    // Payoff slack under which two responses count as tied (ties break
    // toward the lowest action index). Defaults to the SAME constant
    // is_nash verifies with, so a profile the dynamics treat as
    // indifferent is one the verifier accepts.
    double tie_tolerance = kNashTolerance;
};

// Discrete-time simultaneous fictitious play: every player best-responds
// to the empirical distribution of the others' past pure actions (counts
// seeded at 1, i.e. a uniform Dirichlet prior). Returns the empirical
// profile. Converges for zero-sum and 2x2 games; may cycle elsewhere
// (Shapley), in which case `converged` is false.
[[nodiscard]] LearningResult fictitious_play(const game::NormalFormGame& game,
                                             const LearningOptions& options = {});

// Discrete-time replicator dynamics from the uniform interior point.
// Payoffs are shifted positive internally so fitness stays well-defined.
[[nodiscard]] LearningResult replicator_dynamics(const game::NormalFormGame& game,
                                                 const LearningOptions& options = {});

}  // namespace bnash::solver
