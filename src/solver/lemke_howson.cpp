#include "solver/lemke_howson.h"

#include <algorithm>
#include <stdexcept>

#include "game/payoff_engine.h"
#include "util/matrix.h"

namespace bnash::solver {
namespace {

using util::MatrixQ;
using util::Rational;

// One best-response polytope in tableau form. Column index == variable
// label, so "enter the variable with label l" is "enter column l".
class PolytopeTableau final {
public:
    PolytopeTableau(std::size_t rows, std::size_t cols) : body_(rows, cols + 1), basis_(rows) {}

    Rational& at(std::size_t r, std::size_t c) { return body_(r, c); }
    Rational& rhs(std::size_t r) { return body_(r, body_.cols() - 1); }
    std::size_t& basis(std::size_t r) { return basis_[r]; }
    [[nodiscard]] std::size_t rows() const { return body_.rows(); }

    // Minimum-ratio row for entering column c; ties break toward the
    // smallest basis label. Returns nullopt when no coefficient is
    // positive (an unbounded ray).
    [[nodiscard]] std::optional<std::size_t> min_ratio_row(std::size_t c) {
        std::optional<std::size_t> best;
        Rational best_ratio{0};
        for (std::size_t r = 0; r < rows(); ++r) {
            if (body_(r, c).sign() <= 0) continue;
            const Rational ratio = rhs(r) / body_(r, c);
            if (!best || ratio < best_ratio ||
                (ratio == best_ratio && basis_[r] < basis_[*best])) {
                best = r;
                best_ratio = ratio;
            }
        }
        return best;
    }

    void pivot(std::size_t pivot_row, std::size_t pivot_col) {
        const Rational inv = body_(pivot_row, pivot_col).reciprocal();
        for (std::size_t c = 0; c < body_.cols(); ++c) body_(pivot_row, c) *= inv;
        for (std::size_t r = 0; r < rows(); ++r) {
            if (r == pivot_row) continue;
            const Rational factor = body_(r, pivot_col);
            if (factor.is_zero()) continue;
            for (std::size_t c = 0; c < body_.cols(); ++c) {
                body_(r, c) -= factor * body_(pivot_row, c);
            }
        }
        basis_[pivot_row] = pivot_col;
    }

private:
    MatrixQ body_;
    std::vector<std::size_t> basis_;
};

}  // namespace

std::optional<MixedEquilibrium> lemke_howson(const game::NormalFormGame& game,
                                             std::size_t initial_label,
                                             std::size_t max_pivots,
                                             LemkeHowsonStats* stats) {
    return lemke_howson(game::GameView::full(game), initial_label, max_pivots, stats);
}

std::optional<MixedEquilibrium> lemke_howson(const game::GameView& view,
                                             std::size_t initial_label,
                                             std::size_t max_pivots,
                                             LemkeHowsonStats* stats) {
    if (view.num_players() != 2) {
        throw std::logic_error("lemke_howson: 2-player games only");
    }
    const std::size_t m = view.num_actions(0);
    const std::size_t n = view.num_actions(1);
    if (initial_label >= m + n) throw std::out_of_range("lemke_howson: bad label");

    // Payoff matrices read through the view's cell offsets: no
    // restricted tensor is materialized.
    const MatrixQ a = view.payoff_matrix(0);
    const MatrixQ b = view.payoff_matrix(1);
    // Shift both payoff matrices strictly positive; equilibria are invariant
    // under adding a constant to all of one player's payoffs.
    Rational min_entry = a(0, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            min_entry = std::min({min_entry, a(i, j), b(i, j)});
        }
    }
    const Rational shift = Rational{1} - min_entry;

    // System 1 (x-polytope): B'^T x + s = 1. Rows: n. Labels: x_i = i,
    // s_j = m + j.
    PolytopeTableau sys1(n, m + n);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < m; ++i) sys1.at(j, i) = b(i, j) + shift;
        sys1.at(j, m + j) = Rational{1};
        sys1.rhs(j) = Rational{1};
        sys1.basis(j) = m + j;
    }
    // System 2 (y-polytope): A' y + r = 1. Rows: m. Labels: r_i = i,
    // y_j = m + j.
    PolytopeTableau sys2(m, m + n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) sys2.at(i, m + j) = a(i, j) + shift;
        sys2.at(i, i) = Rational{1};
        sys2.rhs(i) = Rational{1};
        sys2.basis(i) = i;
    }

    std::size_t entering = initial_label;
    bool in_sys1 = initial_label < m;
    std::size_t pivots = 0;
    while (true) {
        if (pivots++ >= max_pivots) return std::nullopt;  // degenerate cycling cap
        PolytopeTableau& tableau = in_sys1 ? sys1 : sys2;
        const auto row = tableau.min_ratio_row(entering);
        if (!row) return std::nullopt;  // ray: cannot happen with positive payoffs
        const std::size_t leaving = tableau.basis(*row);
        tableau.pivot(*row, entering);
        if (leaving == initial_label) break;
        entering = leaving;
        in_sys1 = !in_sys1;
    }
    if (stats != nullptr) stats->pivots = pivots;

    // Extract and normalize both strategies.
    game::ExactMixedStrategy x(m, Rational{0});
    game::ExactMixedStrategy y(n, Rational{0});
    Rational x_total{0};
    Rational y_total{0};
    for (std::size_t r = 0; r < sys1.rows(); ++r) {
        if (sys1.basis(r) < m) {
            x[sys1.basis(r)] = sys1.rhs(r);
            x_total += sys1.rhs(r);
        }
    }
    for (std::size_t r = 0; r < sys2.rows(); ++r) {
        if (sys2.basis(r) >= m) {
            y[sys2.basis(r) - m] = sys2.rhs(r);
            y_total += sys2.rhs(r);
        }
    }
    if (x_total.is_zero() || y_total.is_zero()) return std::nullopt;  // artificial point
    for (auto& v : x) v /= x_total;
    for (auto& v : y) v /= y_total;

    MixedEquilibrium out;
    out.profile = {std::move(x), std::move(y)};
    out.payoffs = {game::expected_payoff_exact(view, out.profile, 0),
                   game::expected_payoff_exact(view, out.profile, 1)};
    return out;
}

std::vector<MixedEquilibrium> lemke_howson_all_labels(const game::NormalFormGame& game,
                                                      std::size_t max_pivots) {
    return lemke_howson_all_labels(game::GameView::full(game), max_pivots);
}

std::vector<MixedEquilibrium> lemke_howson_all_labels(const game::GameView& view,
                                                      std::size_t max_pivots) {
    const std::size_t num_labels = view.num_actions(0) + view.num_actions(1);
    std::vector<MixedEquilibrium> out;
    for (std::size_t label = 0; label < num_labels; ++label) {
        auto eq = lemke_howson(view, label, max_pivots);
        if (!eq) continue;
        const bool duplicate =
            std::any_of(out.begin(), out.end(), [&](const MixedEquilibrium& existing) {
                return existing.profile == eq->profile;
            });
        if (!duplicate) out.push_back(std::move(*eq));
    }
    return out;
}

}  // namespace bnash::solver
