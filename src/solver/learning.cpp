#include "solver/learning.h"

#include <algorithm>
#include <limits>

#include "game/payoff_engine.h"

namespace bnash::solver {
namespace {

// One deviation table per iteration feeds the regret test, the trace, and
// every player's best response — the seed recomputed a full tensor sweep
// for each of those separately.
void record_trace(double regret_value, std::size_t iteration, const LearningOptions& options,
                  LearningResult& result) {
    if (options.trace_every != 0 && iteration % options.trace_every == 0) {
        result.regret_trace.push_back(regret_value);
    }
}

double dot(const game::MixedStrategy& strategy, const std::vector<double>& values) {
    double total = 0.0;
    for (std::size_t a = 0; a < strategy.size(); ++a) total += strategy[a] * values[a];
    return total;
}

}  // namespace

LearningResult fictitious_play(const game::NormalFormGame& game,
                               const LearningOptions& options) {
    const std::size_t players = game.num_players();
    const game::PayoffEngine engine(game);
    // counts[i][a]: how often player i played action a (Dirichlet-1 prior).
    std::vector<std::vector<double>> counts(players);
    for (std::size_t i = 0; i < players; ++i) {
        counts[i].assign(game.num_actions(i), 1.0);
    }
    const auto empirical = [&](std::size_t i) {
        game::MixedStrategy s(counts[i].size());
        double total = 0.0;
        for (const double c : counts[i]) total += c;
        for (std::size_t a = 0; a < s.size(); ++a) s[a] = counts[i][a] / total;
        return s;
    };

    LearningResult result;
    game::MixedProfile profile(players);
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        for (std::size_t i = 0; i < players; ++i) profile[i] = empirical(i);
        const auto dev = engine.deviation_payoffs_all(profile);
        const double regret = game::PayoffEngine::regret_from(dev, profile);
        record_trace(regret, iter, options, result);
        result.iterations = iter + 1;
        if (regret <= options.target_regret) {
            result.converged = true;
            break;
        }
        // Simultaneous best responses to the current empirical profile;
        // ties break toward the lowest action index (deterministic).
        for (std::size_t i = 0; i < players; ++i) {
            const auto best =
                game::PayoffEngine::best_responses_from(dev[i], options.tie_tolerance);
            counts[i][best.front()] += 1.0;
        }
    }
    for (std::size_t i = 0; i < players; ++i) profile[i] = empirical(i);
    result.profile = std::move(profile);
    result.final_regret = engine.regret(result.profile);
    result.converged = result.final_regret <= options.target_regret;
    return result;
}

LearningResult replicator_dynamics(const game::NormalFormGame& game,
                                   const LearningOptions& options) {
    const std::size_t players = game.num_players();
    const game::PayoffEngine engine(game);
    // Shift payoffs so fitness is positive.
    double min_payoff = std::numeric_limits<double>::infinity();
    for (const double value : game.payoffs_d_flat()) {
        min_payoff = std::min(min_payoff, value);
    }
    const double shift = 1.0 - std::min(0.0, min_payoff);

    LearningResult result;
    game::MixedProfile profile(players);
    for (std::size_t i = 0; i < players; ++i) {
        profile[i] = game::uniform_strategy(game.num_actions(i));
    }
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        const auto dev = engine.deviation_payoffs_all(profile);
        const double regret = game::PayoffEngine::regret_from(dev, profile);
        record_trace(regret, iter, options, result);
        result.iterations = iter + 1;
        if (regret <= options.target_regret) {
            result.converged = true;
            break;
        }
        game::MixedProfile next = profile;
        for (std::size_t i = 0; i < players; ++i) {
            const double average = dot(profile[i], dev[i]) + shift;
            double total = 0.0;
            for (std::size_t a = 0; a < game.num_actions(i); ++a) {
                const double fitness = dev[i][a] + shift;
                // Discrete replicator: share grows with relative fitness.
                next[i][a] = profile[i][a] *
                             (1.0 + options.replicator_step * (fitness - average) / average);
                next[i][a] = std::max(next[i][a], 0.0);
                total += next[i][a];
            }
            for (double& p : next[i]) p /= total;
        }
        profile = std::move(next);
    }
    result.profile = std::move(profile);
    result.final_regret = engine.regret(result.profile);
    result.converged = result.final_regret <= options.target_regret;
    return result;
}

}  // namespace bnash::solver
