#include "solver/correlated.h"

#include <cmath>
#include <stdexcept>

#include "util/combinatorics.h"
#include "util/simplex.h"

namespace bnash::solver {
namespace {

// Obedience row: the LP coefficients of
//   sum_{a_-i : a_i = a} mu(profile) * [u_i(profile) - u_i(b at i)] >= 0.
util::LpConstraint obedience_constraint(const game::NormalFormGame& game, std::size_t player,
                                        std::size_t recommended, std::size_t deviation,
                                        std::size_t extra_vars) {
    util::LpConstraint constraint;
    constraint.coefficients.assign(game.num_profiles() + extra_vars, 0.0);
    constraint.relation = util::LpRelation::kGreaterEqual;
    constraint.rhs = 0.0;
    util::product_for_each(game.action_counts(), [&](const game::PureProfile& profile) {
        if (profile[player] != recommended) return true;
        game::PureProfile deviated = profile;
        deviated[player] = deviation;
        constraint.coefficients[game.profile_rank(profile)] =
            game.payoff_d(profile, player) - game.payoff_d(deviated, player);
        return true;
    });
    return constraint;
}

}  // namespace

bool is_correlated_equilibrium(const game::NormalFormGame& game,
                               std::span<const double> distribution, double tol) {
    if (distribution.size() != game.num_profiles()) {
        throw std::invalid_argument("is_correlated_equilibrium: wrong support size");
    }
    double total = 0.0;
    for (const double p : distribution) {
        if (p < -tol) return false;
        total += p;
    }
    if (std::fabs(total - 1.0) > tol) return false;

    for (std::size_t player = 0; player < game.num_players(); ++player) {
        for (std::size_t a = 0; a < game.num_actions(player); ++a) {
            for (std::size_t b = 0; b < game.num_actions(player); ++b) {
                if (a == b) continue;
                const auto row = obedience_constraint(game, player, a, b, 0);
                double lhs = 0.0;
                for (std::uint64_t rank = 0; rank < game.num_profiles(); ++rank) {
                    lhs += row.coefficients[rank] * distribution[rank];
                }
                if (lhs < -tol) return false;
            }
        }
    }
    return true;
}

std::optional<CorrelatedEquilibrium> solve_correlated_equilibrium(
    const game::NormalFormGame& game, CeObjective objective) {
    const auto num_profiles = static_cast<std::size_t>(game.num_profiles());
    // kEgalitarian adds one auxiliary variable z (the floor).
    const std::size_t extra = (objective == CeObjective::kEgalitarian) ? 1 : 0;

    util::LpProblem lp;
    lp.objective.assign(num_profiles + extra, 0.0);
    switch (objective) {
        case CeObjective::kSocialWelfare:
            for (std::uint64_t rank = 0; rank < num_profiles; ++rank) {
                const auto profile = game.profile_unrank(rank);
                for (std::size_t player = 0; player < game.num_players(); ++player) {
                    lp.objective[rank] += game.payoff_d(profile, player);
                }
            }
            break;
        case CeObjective::kPlayerZero:
            for (std::uint64_t rank = 0; rank < num_profiles; ++rank) {
                lp.objective[rank] = game.payoff_d(game.profile_unrank(rank), 0);
            }
            break;
        case CeObjective::kEgalitarian:
            lp.objective[num_profiles] = 1.0;  // maximize the floor z
            for (std::size_t player = 0; player < game.num_players(); ++player) {
                util::LpConstraint floor;
                floor.coefficients.assign(num_profiles + 1, 0.0);
                for (std::uint64_t rank = 0; rank < num_profiles; ++rank) {
                    floor.coefficients[rank] =
                        game.payoff_d(game.profile_unrank(rank), player);
                }
                floor.coefficients[num_profiles] = -1.0;  // u_i(mu) - z >= 0
                floor.relation = util::LpRelation::kGreaterEqual;
                floor.rhs = 0.0;
                lp.constraints.push_back(std::move(floor));
            }
            break;
    }

    for (std::size_t player = 0; player < game.num_players(); ++player) {
        for (std::size_t a = 0; a < game.num_actions(player); ++a) {
            for (std::size_t b = 0; b < game.num_actions(player); ++b) {
                if (a == b) continue;
                lp.constraints.push_back(obedience_constraint(game, player, a, b, extra));
            }
        }
    }
    util::LpConstraint simplex_row;
    simplex_row.coefficients.assign(num_profiles + extra, 1.0);
    if (extra > 0) simplex_row.coefficients[num_profiles] = 0.0;
    simplex_row.relation = util::LpRelation::kEqual;
    simplex_row.rhs = 1.0;
    lp.constraints.push_back(std::move(simplex_row));

    // kEgalitarian's z is a free variable in principle; payoffs may be
    // negative, so shift: z >= 0 is enforced by the LP encoding. Shift all
    // payoffs up front so the optimum is attainable with z >= 0.
    double shift = 0.0;
    if (objective == CeObjective::kEgalitarian) {
        double min_payoff = 0.0;
        for (std::uint64_t rank = 0; rank < num_profiles; ++rank) {
            for (std::size_t player = 0; player < game.num_players(); ++player) {
                min_payoff =
                    std::min(min_payoff, game.payoff_d(game.profile_unrank(rank), player));
            }
        }
        shift = -min_payoff;
        if (shift > 0.0) {
            // u_i(mu) + shift - z >= 0 for the floor rows.
            for (std::size_t player = 0; player < game.num_players(); ++player) {
                lp.constraints[player].rhs = -shift;
            }
        }
    }

    const auto solution = util::solve_lp(lp);
    if (solution.status != util::LpStatus::kOptimal) return std::nullopt;

    CorrelatedEquilibrium out;
    out.distribution.assign(solution.x.begin(),
                            solution.x.begin() + static_cast<std::ptrdiff_t>(num_profiles));
    out.objective_value = solution.objective_value - shift;
    out.expected_payoffs.assign(game.num_players(), 0.0);
    for (std::uint64_t rank = 0; rank < num_profiles; ++rank) {
        const auto profile = game.profile_unrank(rank);
        for (std::size_t player = 0; player < game.num_players(); ++player) {
            out.expected_payoffs[player] +=
                out.distribution[rank] * game.payoff_d(profile, player);
        }
    }
    return out;
}

std::vector<double> product_distribution(const game::NormalFormGame& game,
                                         const game::MixedProfile& profile) {
    std::vector<double> out(game.num_profiles(), 0.0);
    util::product_for_each(game.action_counts(), [&](const game::PureProfile& actions) {
        double weight = 1.0;
        for (std::size_t i = 0; i < actions.size(); ++i) weight *= profile[i][actions[i]];
        out[game.profile_rank(actions)] = weight;
        return true;
    });
    return out;
}

}  // namespace bnash::solver
