#include "solver/support_enumeration.h"

#include <algorithm>
#include <stdexcept>

#include "util/combinatorics.h"
#include "util/matrix.h"

namespace bnash::solver {
namespace {

using util::MatrixQ;
using util::Rational;

// Solves the indifference system for the COLUMN player's strategy y over
// support s_col, making the ROW player indifferent across s_row:
//   sum_{j in s_col} payoff(i, j) * y_j = v   for every i in s_row
//   sum_{j in s_col} y_j = 1
// Returns (y over s_col, v) or nullopt when singular.
struct IndifferenceSolution final {
    std::vector<Rational> weights;
    Rational value;
};

std::optional<IndifferenceSolution> solve_indifference(
    const MatrixQ& payoffs, const std::vector<std::size_t>& s_row,
    const std::vector<std::size_t>& s_col) {
    const std::size_t k = s_row.size();
    // Unknowns: y_0..y_{k-1}, v. Equations: k indifference rows + simplex.
    MatrixQ system(k + 1, k + 1);
    std::vector<Rational> rhs(k + 1, Rational{0});
    for (std::size_t row = 0; row < k; ++row) {
        for (std::size_t col = 0; col < k; ++col) {
            system(row, col) = payoffs(s_row[row], s_col[col]);
        }
        system(row, k) = Rational{-1};
    }
    for (std::size_t col = 0; col < k; ++col) system(k, col) = Rational{1};
    rhs[k] = Rational{1};
    auto solution = util::solve_linear_system(std::move(system), std::move(rhs));
    if (!solution) return std::nullopt;
    IndifferenceSolution out;
    out.weights.assign(solution->begin(), solution->begin() + static_cast<std::ptrdiff_t>(k));
    out.value = (*solution)[k];
    return out;
}

bool all_nonnegative(const std::vector<Rational>& values) {
    return std::all_of(values.begin(), values.end(),
                       [](const Rational& v) { return v.sign() >= 0; });
}

// Checks that no action outside the support beats `value` against `mixed`.
bool no_profitable_outside_deviation(const MatrixQ& payoffs, bool transpose,
                                     const game::ExactMixedStrategy& mixed,
                                     const std::vector<std::size_t>& own_support,
                                     const Rational& value) {
    const std::size_t own_count = transpose ? payoffs.cols() : payoffs.rows();
    const std::size_t other_count = transpose ? payoffs.rows() : payoffs.cols();
    for (std::size_t action = 0; action < own_count; ++action) {
        if (std::find(own_support.begin(), own_support.end(), action) != own_support.end()) {
            continue;
        }
        Rational payoff{0};
        for (std::size_t other = 0; other < other_count; ++other) {
            if (mixed[other].is_zero()) continue;
            payoff += (transpose ? payoffs(other, action) : payoffs(action, other)) *
                      mixed[other];
        }
        if (payoff > value) return false;
    }
    return true;
}

}  // namespace

std::vector<MixedEquilibrium> support_enumeration(const game::NormalFormGame& game,
                                                  std::size_t max_support) {
    return support_enumeration(game::GameView::full(game), max_support);
}

std::vector<MixedEquilibrium> support_enumeration(const game::GameView& view,
                                                  std::size_t max_support) {
    if (view.num_players() != 2) {
        throw std::logic_error("support_enumeration: 2-player games only");
    }
    const std::size_t m = view.num_actions(0);
    const std::size_t n = view.num_actions(1);
    // Payoff matrices read through the view's cell offsets: no
    // restricted tensor is materialized (the tensor_allocations() tests
    // pin this).
    const MatrixQ a = view.payoff_matrix(0);
    const MatrixQ b = view.payoff_matrix(1);

    std::vector<MixedEquilibrium> out;
    const std::size_t limit = std::min({m, n, max_support});
    for (std::size_t size = 1; size <= limit; ++size) {
        for (const auto& s_row : util::subsets_of_size(m, size)) {
            for (const auto& s_col : util::subsets_of_size(n, size)) {
                // Column strategy makes the row player indifferent on s_row.
                const auto col_solution = solve_indifference(a, s_row, s_col);
                if (!col_solution || !all_nonnegative(col_solution->weights)) continue;
                // Row strategy makes the column player indifferent on s_col.
                // Transposed system: payoff(j, i) entries come from b.
                MatrixQ bt(n, m);
                for (std::size_t r = 0; r < m; ++r) {
                    for (std::size_t c = 0; c < n; ++c) bt(c, r) = b(r, c);
                }
                const auto row_solution = solve_indifference(bt, s_col, s_row);
                if (!row_solution || !all_nonnegative(row_solution->weights)) continue;

                game::ExactMixedStrategy x(m, Rational{0});
                game::ExactMixedStrategy y(n, Rational{0});
                for (std::size_t i = 0; i < size; ++i) {
                    x[s_row[i]] = row_solution->weights[i];
                    y[s_col[i]] = col_solution->weights[i];
                }
                if (!no_profitable_outside_deviation(a, false, y, s_row,
                                                     col_solution->value) ||
                    !no_profitable_outside_deviation(b, true, x, s_col,
                                                     row_solution->value)) {
                    continue;
                }
                game::ExactMixedProfile profile{x, y};
                const bool duplicate =
                    std::any_of(out.begin(), out.end(), [&](const MixedEquilibrium& eq) {
                        return eq.profile == profile;
                    });
                if (duplicate) continue;
                out.push_back(MixedEquilibrium{
                    std::move(profile),
                    {col_solution->value, row_solution->value}});
            }
        }
    }
    return out;
}

}  // namespace bnash::solver
