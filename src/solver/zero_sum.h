// Minimax solution of 2-player zero-sum games via linear programming.
//
// Used for the paper's roshambo baseline (Example 3.3's "the unique Nash
// equilibrium has the players randomizing uniformly") and as an
// independent cross-check for the exact solvers.
#pragma once

#include "game/normal_form.h"
#include "game/strategy.h"

namespace bnash::solver {

struct ZeroSumSolution final {
    double value = 0.0;  // row player's guaranteed expected payoff
    game::MixedStrategy row_strategy;
    game::MixedStrategy col_strategy;
};

// Throws std::logic_error unless `game` is 2-player and zero-sum (checked
// exactly on the rational payoffs).
[[nodiscard]] ZeroSumSolution solve_zero_sum(const game::NormalFormGame& game);

}  // namespace bnash::solver
