#include "solver/iterated_elimination.h"

#include <stdexcept>

#include "game/payoff_engine.h"
#include "util/combinatorics.h"
#include "util/simplex.h"

namespace bnash::solver {
namespace {

// Visits the base rank (player's own digit zeroed) of every profile of
// the players other than `player`, in row-major order. The player's
// payoff under own action a is payoff_at(base + a * stride, player):
// dominance scans walk the tensor by stride deltas instead of
// materializing and re-ranking a PureProfile per cell.
void for_each_opponent_base(const game::NormalFormGame& game,
                            const std::vector<std::uint64_t>& strides, std::size_t player,
                            const std::function<bool(std::uint64_t)>& visit) {
    game::PureProfile tuple(game.num_players(), 0);
    std::uint64_t rank = 0;
    while (true) {
        if (!visit(rank)) return;
        std::size_t d = game.num_players();
        while (d-- > 0) {
            if (d == player) continue;
            if (++tuple[d] < game.num_actions(d)) {
                rank += strides[d];
                break;
            }
            rank -= static_cast<std::uint64_t>(tuple[d] - 1) * strides[d];
            tuple[d] = 0;
        }
        if (d == static_cast<std::size_t>(-1)) return;  // odometer wrapped
    }
}

bool pure_dominates(const game::NormalFormGame& game,
                    const std::vector<std::uint64_t>& strides, std::size_t player,
                    std::size_t dominator, std::size_t dominated, bool strict) {
    const std::uint64_t stride = strides[player];
    bool all_hold = true;
    bool somewhere_strict = false;
    for_each_opponent_base(game, strides, player, [&](std::uint64_t base) {
        const auto& u_dominated = game.payoff_at(base + dominated * stride, player);
        const auto& u_dominator = game.payoff_at(base + dominator * stride, player);
        if (strict ? !(u_dominator > u_dominated) : (u_dominator < u_dominated)) {
            all_hold = false;
            return false;
        }
        if (u_dominator > u_dominated) somewhere_strict = true;
        return true;
    });
    if (!all_hold) return false;
    return strict || somewhere_strict;
}

// LP test: does some mixture of the player's other actions strictly
// dominate `action`? Maximizes the worst-case gap; dominated iff > 0.
bool mixed_dominates(const game::NormalFormGame& game,
                     const std::vector<std::uint64_t>& strides, std::size_t player,
                     std::size_t action) {
    const std::size_t num_actions = game.num_actions(player);
    if (num_actions < 2) return false;
    std::vector<std::size_t> others;
    for (std::size_t a = 0; a < num_actions; ++a) {
        if (a != action) others.push_back(a);
    }
    const std::uint64_t stride = strides[player];
    // Variables: sigma over `others` plus the gap epsilon (all >= 0).
    util::LpProblem lp;
    lp.objective.assign(others.size() + 1, 0.0);
    lp.objective.back() = 1.0;  // maximize epsilon
    // For every opponent profile o: sum_b sigma_b u(b,o) - u(action,o) - eps >= 0.
    for_each_opponent_base(game, strides, player, [&](std::uint64_t base) {
        util::LpConstraint constraint;
        constraint.coefficients.assign(others.size() + 1, 0.0);
        for (std::size_t b = 0; b < others.size(); ++b) {
            constraint.coefficients[b] = game.payoff_d_at(base + others[b] * stride, player);
        }
        constraint.coefficients.back() = -1.0;
        constraint.relation = util::LpRelation::kGreaterEqual;
        constraint.rhs = game.payoff_d_at(base + action * stride, player);
        lp.constraints.push_back(std::move(constraint));
        return true;
    });
    util::LpConstraint simplex_row;
    simplex_row.coefficients.assign(others.size() + 1, 1.0);
    simplex_row.coefficients.back() = 0.0;
    simplex_row.relation = util::LpRelation::kEqual;
    simplex_row.rhs = 1.0;
    lp.constraints.push_back(std::move(simplex_row));

    const auto solution = util::solve_lp(lp);
    return solution.status == util::LpStatus::kOptimal && solution.objective_value > 1e-7;
}

}  // namespace

bool is_dominated(const game::NormalFormGame& game, std::size_t player, std::size_t action,
                  DominanceKind kind) {
    if (player >= game.num_players() || action >= game.num_actions(player)) {
        throw std::out_of_range("is_dominated: bad player or action");
    }
    switch (kind) {
        case DominanceKind::kStrictPure:
        case DominanceKind::kWeakPure: {
            const bool strict = (kind == DominanceKind::kStrictPure);
            const game::PayoffEngine engine(game);
            for (std::size_t b = 0; b < game.num_actions(player); ++b) {
                if (b == action) continue;
                if (pure_dominates(game, engine.strides(), player, b, action, strict)) {
                    return true;
                }
            }
            return false;
        }
        case DominanceKind::kStrictMixed: {
            const game::PayoffEngine engine(game);
            return mixed_dominates(game, engine.strides(), player, action);
        }
    }
    return false;
}

EliminationResult iterated_elimination(const game::NormalFormGame& game, DominanceKind kind) {
    EliminationResult result{game, {}, {}};
    result.kept.resize(game.num_players());
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        for (std::size_t a = 0; a < game.num_actions(player); ++a) {
            result.kept[player].push_back(a);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t player = 0; player < result.reduced.num_players() && !changed;
             ++player) {
            if (result.reduced.num_actions(player) < 2) continue;
            for (std::size_t action = 0; action < result.reduced.num_actions(player);
                 ++action) {
                if (!is_dominated(result.reduced, player, action, kind)) continue;
                result.trace.push_back(
                    EliminationStep{player, result.kept[player][action]});
                std::vector<std::vector<std::size_t>> local(result.reduced.num_players());
                for (std::size_t i = 0; i < result.reduced.num_players(); ++i) {
                    for (std::size_t a = 0; a < result.reduced.num_actions(i); ++a) {
                        if (i == player && a == action) continue;
                        local[i].push_back(a);
                    }
                }
                result.reduced = result.reduced.restrict(local);
                result.kept[player].erase(result.kept[player].begin() +
                                          static_cast<std::ptrdiff_t>(action));
                changed = true;
                break;
            }
        }
    }
    return result;
}

}  // namespace bnash::solver
