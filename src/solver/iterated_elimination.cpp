#include "solver/iterated_elimination.h"

#include <functional>
#include <stdexcept>

#include "util/offset_walker.h"
#include "util/simplex.h"

namespace bnash::solver {
namespace {

using game::GameView;

// Visits the flat row offset of every profile of the players other than
// `player`, with `player`'s own digit pinned to its first view action, in
// row-major order. The player's payoff under own action a is
// payoff_from(base + cell_offset(player, a) - cell_offset(player, 0)):
// dominance scans walk the parent tensor through the shared pinned-digit
// OffsetWalker instead of materializing and re-ranking a PureProfile per
// cell.
void for_each_opponent_base(const GameView& view, std::size_t player,
                            const std::function<bool(std::uint64_t)>& visit) {
    const std::size_t n = view.num_players();
    util::OffsetWalker walker;
    walker.reserve(n);
    for (std::size_t p = 0; p < n; ++p) {
        const auto& column = view.cell_offsets(p);
        if (p == player) {
            walker.add_pinned_digit(column.data(), 0);
        } else {
            walker.add_digit(column.data(), column.size());
        }
    }
    walker.reset();
    do {
        if (!visit(walker.row())) return;
    } while (walker.advance());
}

bool pure_dominates(const GameView& view, std::size_t player, std::size_t dominator,
                    std::size_t dominated, bool strict) {
    const std::uint64_t dominator_delta =
        view.cell_offset(player, dominator) - view.cell_offset(player, 0);
    const std::uint64_t dominated_delta =
        view.cell_offset(player, dominated) - view.cell_offset(player, 0);
    bool all_hold = true;
    bool somewhere_strict = false;
    for_each_opponent_base(view, player, [&](std::uint64_t base) {
        const auto& u_dominated = view.payoff_from(base + dominated_delta, player);
        const auto& u_dominator = view.payoff_from(base + dominator_delta, player);
        if (strict ? !(u_dominator > u_dominated) : (u_dominator < u_dominated)) {
            all_hold = false;
            return false;
        }
        if (u_dominator > u_dominated) somewhere_strict = true;
        return true;
    });
    if (!all_hold) return false;
    return strict || somewhere_strict;
}

// LP test: does some mixture of the player's other actions strictly
// dominate `action`? Maximizes the worst-case gap; dominated iff > 0.
bool mixed_dominates(const GameView& view, std::size_t player, std::size_t action) {
    const std::size_t num_actions = view.num_actions(player);
    if (num_actions < 2) return false;
    std::vector<std::size_t> others;
    for (std::size_t a = 0; a < num_actions; ++a) {
        if (a != action) others.push_back(a);
    }
    // Variables: sigma over `others` plus the gap epsilon (all >= 0).
    util::LpProblem lp;
    lp.objective.assign(others.size() + 1, 0.0);
    lp.objective.back() = 1.0;  // maximize epsilon
    // For every opponent profile o: sum_b sigma_b u(b,o) - u(action,o) - eps >= 0.
    const std::uint64_t base0 = view.cell_offset(player, 0);
    for_each_opponent_base(view, player, [&](std::uint64_t base) {
        util::LpConstraint constraint;
        constraint.coefficients.assign(others.size() + 1, 0.0);
        for (std::size_t b = 0; b < others.size(); ++b) {
            constraint.coefficients[b] = view.payoff_d_from(
                base + view.cell_offset(player, others[b]) - base0, player);
        }
        constraint.coefficients.back() = -1.0;
        constraint.relation = util::LpRelation::kGreaterEqual;
        constraint.rhs =
            view.payoff_d_from(base + view.cell_offset(player, action) - base0, player);
        lp.constraints.push_back(std::move(constraint));
        return true;
    });
    util::LpConstraint simplex_row;
    simplex_row.coefficients.assign(others.size() + 1, 1.0);
    simplex_row.coefficients.back() = 0.0;
    simplex_row.relation = util::LpRelation::kEqual;
    simplex_row.rhs = 1.0;
    lp.constraints.push_back(std::move(simplex_row));

    const auto solution = util::solve_lp(lp);
    return solution.status == util::LpStatus::kOptimal && solution.objective_value > 1e-7;
}

}  // namespace

bool is_dominated(const GameView& view, std::size_t player, std::size_t action,
                  DominanceKind kind) {
    if (player >= view.num_players() || action >= view.num_actions(player)) {
        throw std::out_of_range("is_dominated: bad player or action");
    }
    switch (kind) {
        case DominanceKind::kStrictPure:
        case DominanceKind::kWeakPure: {
            const bool strict = (kind == DominanceKind::kStrictPure);
            for (std::size_t b = 0; b < view.num_actions(player); ++b) {
                if (b == action) continue;
                if (pure_dominates(view, player, b, action, strict)) return true;
            }
            return false;
        }
        case DominanceKind::kStrictMixed:
            return mixed_dominates(view, player, action);
    }
    return false;
}

bool is_dominated(const game::NormalFormGame& game, std::size_t player, std::size_t action,
                  DominanceKind kind) {
    return is_dominated(GameView::full(game), player, action, kind);
}

ViewEliminationResult iterated_elimination_view(const game::NormalFormGame& game,
                                                DominanceKind kind) {
    std::vector<std::vector<std::size_t>> kept(game.num_players());
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        kept[player].resize(game.num_actions(player));
        for (std::size_t a = 0; a < game.num_actions(player); ++a) kept[player][a] = a;
    }
    std::vector<EliminationStep> trace;
    GameView view = GameView::full(game);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t player = 0; player < view.num_players() && !changed; ++player) {
            if (view.num_actions(player) < 2) continue;
            for (std::size_t action = 0; action < view.num_actions(player); ++action) {
                if (!is_dominated(view, player, action, kind)) continue;
                trace.push_back(EliminationStep{player, kept[player][action]});
                kept[player].erase(kept[player].begin() +
                                   static_cast<std::ptrdiff_t>(action));
                view = game.restrict_view(kept);
                changed = true;
                break;
            }
        }
    }
    return ViewEliminationResult{std::move(view), std::move(kept), std::move(trace)};
}

EliminationResult iterated_elimination(const game::NormalFormGame& game, DominanceKind kind) {
    auto result = iterated_elimination_view(game, kind);
    // The pipeline's only tensor allocation: the final reduced game.
    return EliminationResult{result.reduced.materialize(), std::move(result.kept),
                             std::move(result.trace)};
}

}  // namespace bnash::solver
