#include "solver/iterated_elimination.h"

#include <stdexcept>

#include "util/combinatorics.h"
#include "util/simplex.h"

namespace bnash::solver {
namespace {

// Visits every profile of the players other than `player`, with `action`
// substituted for the player's own move.
void for_each_opponent_profile(
    const game::NormalFormGame& game, std::size_t player, std::size_t action,
    const std::function<bool(const game::PureProfile&)>& visit) {
    std::vector<std::size_t> other_counts;
    other_counts.reserve(game.num_players() - 1);
    for (std::size_t i = 0; i < game.num_players(); ++i) {
        if (i != player) other_counts.push_back(game.num_actions(i));
    }
    util::product_for_each(other_counts, [&](const std::vector<std::size_t>& others) {
        game::PureProfile profile(game.num_players());
        std::size_t cursor = 0;
        for (std::size_t i = 0; i < game.num_players(); ++i) {
            profile[i] = (i == player) ? action : others[cursor++];
        }
        return visit(profile);
    });
}

bool pure_dominates(const game::NormalFormGame& game, std::size_t player,
                    std::size_t dominator, std::size_t dominated, bool strict) {
    bool all_hold = true;
    bool somewhere_strict = false;
    for_each_opponent_profile(game, player, dominated, [&](const game::PureProfile& profile) {
        game::PureProfile alt = profile;
        alt[player] = dominator;
        const auto& u_dominated = game.payoff(profile, player);
        const auto& u_dominator = game.payoff(alt, player);
        if (strict ? !(u_dominator > u_dominated) : (u_dominator < u_dominated)) {
            all_hold = false;
            return false;
        }
        if (u_dominator > u_dominated) somewhere_strict = true;
        return true;
    });
    if (!all_hold) return false;
    return strict || somewhere_strict;
}

// LP test: does some mixture of the player's other actions strictly
// dominate `action`? Maximizes the worst-case gap; dominated iff > 0.
bool mixed_dominates(const game::NormalFormGame& game, std::size_t player,
                     std::size_t action) {
    const std::size_t num_actions = game.num_actions(player);
    if (num_actions < 2) return false;
    std::vector<std::size_t> others;
    for (std::size_t a = 0; a < num_actions; ++a) {
        if (a != action) others.push_back(a);
    }
    // Variables: sigma over `others` plus the gap epsilon (all >= 0).
    util::LpProblem lp;
    lp.objective.assign(others.size() + 1, 0.0);
    lp.objective.back() = 1.0;  // maximize epsilon
    // For every opponent profile o: sum_b sigma_b u(b,o) - u(action,o) - eps >= 0.
    for_each_opponent_profile(game, player, action, [&](const game::PureProfile& profile) {
        util::LpConstraint constraint;
        constraint.coefficients.assign(others.size() + 1, 0.0);
        game::PureProfile alt = profile;
        for (std::size_t b = 0; b < others.size(); ++b) {
            alt[player] = others[b];
            constraint.coefficients[b] = game.payoff_d(alt, player);
        }
        constraint.coefficients.back() = -1.0;
        constraint.relation = util::LpRelation::kGreaterEqual;
        constraint.rhs = game.payoff_d(profile, player);
        lp.constraints.push_back(std::move(constraint));
        return true;
    });
    util::LpConstraint simplex_row;
    simplex_row.coefficients.assign(others.size() + 1, 1.0);
    simplex_row.coefficients.back() = 0.0;
    simplex_row.relation = util::LpRelation::kEqual;
    simplex_row.rhs = 1.0;
    lp.constraints.push_back(std::move(simplex_row));

    const auto solution = util::solve_lp(lp);
    return solution.status == util::LpStatus::kOptimal && solution.objective_value > 1e-7;
}

}  // namespace

bool is_dominated(const game::NormalFormGame& game, std::size_t player, std::size_t action,
                  DominanceKind kind) {
    if (player >= game.num_players() || action >= game.num_actions(player)) {
        throw std::out_of_range("is_dominated: bad player or action");
    }
    switch (kind) {
        case DominanceKind::kStrictPure:
        case DominanceKind::kWeakPure: {
            const bool strict = (kind == DominanceKind::kStrictPure);
            for (std::size_t b = 0; b < game.num_actions(player); ++b) {
                if (b == action) continue;
                if (pure_dominates(game, player, b, action, strict)) return true;
            }
            return false;
        }
        case DominanceKind::kStrictMixed:
            return mixed_dominates(game, player, action);
    }
    return false;
}

EliminationResult iterated_elimination(const game::NormalFormGame& game, DominanceKind kind) {
    EliminationResult result{game, {}, {}};
    result.kept.resize(game.num_players());
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        for (std::size_t a = 0; a < game.num_actions(player); ++a) {
            result.kept[player].push_back(a);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t player = 0; player < result.reduced.num_players() && !changed;
             ++player) {
            if (result.reduced.num_actions(player) < 2) continue;
            for (std::size_t action = 0; action < result.reduced.num_actions(player);
                 ++action) {
                if (!is_dominated(result.reduced, player, action, kind)) continue;
                result.trace.push_back(
                    EliminationStep{player, result.kept[player][action]});
                std::vector<std::vector<std::size_t>> local(result.reduced.num_players());
                for (std::size_t i = 0; i < result.reduced.num_players(); ++i) {
                    for (std::size_t a = 0; a < result.reduced.num_actions(i); ++a) {
                        if (i == player && a == action) continue;
                        local[i].push_back(a);
                    }
                }
                result.reduced = result.reduced.restrict(local);
                result.kept[player].erase(result.kept[player].begin() +
                                          static_cast<std::ptrdiff_t>(action));
                changed = true;
                break;
            }
        }
    }
    return result;
}

}  // namespace bnash::solver
