// Exact mixed Nash equilibria of 2-player games by support enumeration.
//
// For each pair of equal-size supports, the indifference system is solved
// exactly over Rational; candidates are kept when the resulting strategies
// are valid distributions and no outside action is a profitable deviation.
// On nondegenerate games this enumerates ALL Nash equilibria (equilibria
// of nondegenerate bimatrix games have equal-size supports); on degenerate
// games it returns a (possibly strict, always valid) subset of the
// equilibrium components' vertices.
#pragma once

#include <vector>

#include "game/game_view.h"
#include "game/normal_form.h"
#include "game/strategy.h"
#include "util/rational.h"

namespace bnash::solver {

struct MixedEquilibrium final {
    game::ExactMixedProfile profile;
    std::vector<util::Rational> payoffs;
};

// Throws std::logic_error unless `game` has exactly two players.
// `max_support` caps the support size considered (default: no cap).
[[nodiscard]] std::vector<MixedEquilibrium> support_enumeration(
    const game::NormalFormGame& game, std::size_t max_support = SIZE_MAX);

// Zero-copy overload: solves the viewed subgame directly (strategies are
// in VIEW action space) — an elimination-reduced game is solved without
// materializing its tensor. The NormalFormGame overload is this on the
// identity view.
[[nodiscard]] std::vector<MixedEquilibrium> support_enumeration(
    const game::GameView& view, std::size_t max_support = SIZE_MAX);

}  // namespace bnash::solver
