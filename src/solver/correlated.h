// Correlated equilibria of normal-form games, via linear programming.
//
// The classical concept that Section 2's mediators generalize: a mediator
// for a COMPLETE-information game is exactly a correlated-equilibrium
// device (it samples a joint action profile and whispers each player its
// component; obedience constraints make following the whisper a best
// response). The Bayesian MediatorPolicy of core/robust reduces to this
// when every player has a single type -- an equivalence the integration
// tests pin.
//
// A distribution mu over action profiles is a correlated equilibrium iff
// for every player i and every pair of actions a -> b:
//   sum_{a_-i} mu(a, a_-i) * [u_i(a, a_-i) - u_i(b, a_-i)] >= 0.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "game/normal_form.h"

namespace bnash::solver {

struct CorrelatedEquilibrium final {
    // mu indexed by NormalFormGame profile rank.
    std::vector<double> distribution;
    double objective_value = 0.0;
    std::vector<double> expected_payoffs;  // per player under mu
};

enum class CeObjective {
    kSocialWelfare,   // maximize the sum of expected payoffs
    kEgalitarian,     // maximize the minimum expected payoff
    kPlayerZero,      // maximize player 0's expected payoff
};

// True iff `distribution` (over profile ranks) satisfies every obedience
// constraint within `tol` and is a probability distribution.
[[nodiscard]] bool is_correlated_equilibrium(const game::NormalFormGame& game,
                                             std::span<const double> distribution,
                                             double tol = 1e-7);

// Solves for an optimal correlated equilibrium. Always succeeds on finite
// games (every Nash equilibrium is in the feasible set), so nullopt
// signals a numerical failure worth investigating.
[[nodiscard]] std::optional<CorrelatedEquilibrium> solve_correlated_equilibrium(
    const game::NormalFormGame& game, CeObjective objective = CeObjective::kSocialWelfare);

// The product distribution induced by an independent mixed profile
// (bridges Nash outputs into the CE checker: every Nash equilibrium must
// pass is_correlated_equilibrium).
[[nodiscard]] std::vector<double> product_distribution(const game::NormalFormGame& game,
                                                       const game::MixedProfile& profile);

}  // namespace bnash::solver
