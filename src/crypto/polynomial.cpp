#include "crypto/polynomial.h"

#include <stdexcept>

namespace bnash::crypto {

Polynomial::Polynomial(std::vector<Fe> coefficients) : coefficients_(std::move(coefficients)) {}

Polynomial Polynomial::random_with_constant(Fe constant_term, std::size_t degree,
                                            util::Rng& rng) {
    std::vector<Fe> coefficients(degree + 1);
    coefficients[0] = constant_term;
    for (std::size_t i = 1; i <= degree; ++i) coefficients[i] = Fe::random(rng);
    return Polynomial{std::move(coefficients)};
}

Fe Polynomial::eval(Fe x) const noexcept {
    Fe acc{0};
    for (std::size_t i = coefficients_.size(); i > 0; --i) {
        acc = acc * x + coefficients_[i - 1];
    }
    return acc;
}

std::vector<Fe> lagrange_coefficients(const std::vector<Fe>& xs, Fe x) {
    const std::size_t n = xs.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (xs[i] == xs[j]) {
                throw std::invalid_argument("lagrange_coefficients: duplicate x");
            }
        }
    }
    std::vector<Fe> out(n, Fe{1});
    for (std::size_t i = 0; i < n; ++i) {
        Fe numerator{1};
        Fe denominator{1};
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            numerator *= (x - xs[j]);
            denominator *= (xs[i] - xs[j]);
        }
        out[i] = numerator * denominator.inverse();
    }
    return out;
}

Fe interpolate_at(const std::vector<EvalPoint>& points, Fe x) {
    std::vector<Fe> xs;
    xs.reserve(points.size());
    for (const auto& p : points) xs.push_back(p.x);
    const auto weights = lagrange_coefficients(xs, x);
    Fe acc{0};
    for (std::size_t i = 0; i < points.size(); ++i) acc += weights[i] * points[i].y;
    return acc;
}

Polynomial interpolate(const std::vector<EvalPoint>& points) {
    if (points.empty()) throw std::invalid_argument("interpolate: no points");
    const std::size_t n = points.size();
    // Build coefficients by accumulating y_i * L_i(x) with explicit
    // polynomial multiplication; n is small everywhere this is used.
    std::vector<Fe> result(n, Fe{0});
    for (std::size_t i = 0; i < n; ++i) {
        // numerator poly: product over j != i of (x - x_j)
        std::vector<Fe> numerator{Fe{1}};
        Fe denominator{1};
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            if (points[i].x == points[j].x) {
                throw std::invalid_argument("interpolate: duplicate x");
            }
            std::vector<Fe> next(numerator.size() + 1, Fe{0});
            for (std::size_t k = 0; k < numerator.size(); ++k) {
                next[k + 1] += numerator[k];
                next[k] += numerator[k] * (-points[j].x);
            }
            numerator = std::move(next);
            denominator *= (points[i].x - points[j].x);
        }
        const Fe scale = points[i].y * denominator.inverse();
        for (std::size_t k = 0; k < numerator.size(); ++k) {
            result[k] += numerator[k] * scale;
        }
    }
    return Polynomial{std::move(result)};
}

}  // namespace bnash::crypto
