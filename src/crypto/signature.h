// Simulated PKI with unforgeable-by-construction signatures.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper's authenticated results
// ("assuming cryptography, polynomially-bounded players, and a PKI")
// consume signatures as an ideal functionality. The registry holds one
// secret per identity; only the holder of a Signer handle can produce
// tags under that identity, so forgery is impossible for any simulated
// adversary that is not given the handle -- exactly the ideal model the
// Dolev-Strong protocol assumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace bnash::crypto {

struct SignedValue final {
    std::size_t signer = 0;
    std::uint64_t message = 0;
    std::uint64_t tag = 0;
    friend bool operator==(const SignedValue&, const SignedValue&) = default;
};

class KeyRegistry;

// A signing capability for one identity. Obtainable only from the registry.
class Signer final {
public:
    [[nodiscard]] std::size_t identity() const noexcept { return identity_; }
    [[nodiscard]] SignedValue sign(std::uint64_t message) const;

private:
    friend class KeyRegistry;
    Signer(std::size_t identity, std::uint64_t secret) noexcept
        : identity_(identity), secret_(secret) {}
    std::size_t identity_;
    std::uint64_t secret_;
};

class KeyRegistry final {
public:
    // Generates `num_identities` key pairs deterministically from the rng.
    KeyRegistry(std::size_t num_identities, util::Rng& rng);

    [[nodiscard]] std::size_t size() const noexcept { return secrets_.size(); }
    // Hand out the signing capability for `identity` (callable once per
    // identity; second call throws, modelling exclusive key ownership).
    [[nodiscard]] Signer issue_signer(std::size_t identity);
    // Public verification: anyone may call.
    [[nodiscard]] bool verify(const SignedValue& sv) const;

private:
    std::vector<std::uint64_t> secrets_;
    std::vector<bool> issued_;
};

}  // namespace bnash::crypto
