// Polynomials over GF(p): evaluation, Lagrange interpolation, and random
// polynomials with a fixed constant term (the Shamir dealer's tool).
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/field.h"
#include "util/rng.h"

namespace bnash::crypto {

class Polynomial final {
public:
    Polynomial() = default;
    // coefficients[i] multiplies x^i. Trailing zeros are kept as given.
    explicit Polynomial(std::vector<Fe> coefficients);

    // Uniformly random polynomial of exactly the given degree bound with
    // p(0) == constant_term (degree-t Shamir dealing).
    static Polynomial random_with_constant(Fe constant_term, std::size_t degree,
                                           util::Rng& rng);

    [[nodiscard]] std::size_t degree_bound() const noexcept {
        return coefficients_.empty() ? 0 : coefficients_.size() - 1;
    }
    [[nodiscard]] const std::vector<Fe>& coefficients() const noexcept {
        return coefficients_;
    }

    [[nodiscard]] Fe eval(Fe x) const noexcept;  // Horner

    friend bool operator==(const Polynomial&, const Polynomial&) = default;

private:
    std::vector<Fe> coefficients_;
};

struct EvalPoint final {
    Fe x;
    Fe y;
};

// Unique polynomial of degree < points.size() through the given points
// (x-coordinates must be distinct; throws std::invalid_argument otherwise).
[[nodiscard]] Polynomial interpolate(const std::vector<EvalPoint>& points);

// Direct evaluation of the interpolating polynomial at `x` without
// materializing coefficients (the common reconstruction path).
[[nodiscard]] Fe interpolate_at(const std::vector<EvalPoint>& points, Fe x);

// Lagrange coefficients l_i such that p(x) = sum_i l_i * y_i for any
// degree < points.size() polynomial through the x-coordinates.
[[nodiscard]] std::vector<Fe> lagrange_coefficients(const std::vector<Fe>& xs, Fe x);

}  // namespace bnash::crypto
