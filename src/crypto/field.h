// GF(p) arithmetic, p = 2^61 - 1 (a Mersenne prime).
//
// The prime field underlying Shamir secret sharing and the BGW-style
// evaluation of mediator circuits (Section 2's possibility results). All
// values are kept reduced; multiplication goes through __int128.
//
// This is an information-theoretic substrate, not a cryptographic library:
// the mediator theorems consume secrecy-up-to-threshold and correct
// reconstruction, both of which hold unconditionally for Shamir over any
// field large enough, which this one is.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/rng.h"

namespace bnash::crypto {

inline constexpr std::uint64_t kFieldPrime = (std::uint64_t{1} << 61) - 1;

class Fe final {  // field element
public:
    constexpr Fe() noexcept = default;
    // Reduces any uint64 into the field (intentionally implicit for
    // literal-heavy circuit code, mirroring Rational's integer behavior).
    constexpr Fe(std::uint64_t value) noexcept : value_(value % kFieldPrime) {}  // NOLINT

    [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
    [[nodiscard]] constexpr bool is_zero() const noexcept { return value_ == 0; }

    friend constexpr bool operator==(Fe lhs, Fe rhs) noexcept = default;

    friend Fe operator+(Fe lhs, Fe rhs) noexcept;
    friend Fe operator-(Fe lhs, Fe rhs) noexcept;
    friend Fe operator*(Fe lhs, Fe rhs) noexcept;
    friend Fe operator-(Fe value) noexcept;
    Fe& operator+=(Fe rhs) noexcept { return *this = *this + rhs; }
    Fe& operator-=(Fe rhs) noexcept { return *this = *this - rhs; }
    Fe& operator*=(Fe rhs) noexcept { return *this = *this * rhs; }

    // Fermat inverse; throws std::domain_error on zero.
    [[nodiscard]] Fe inverse() const;
    [[nodiscard]] Fe pow(std::uint64_t exponent) const noexcept;

    static Fe random(util::Rng& rng) noexcept;

    friend std::ostream& operator<<(std::ostream& os, Fe value);

private:
    std::uint64_t value_ = 0;
};

// Fe from a possibly-negative integer (payoff encodings).
[[nodiscard]] Fe fe_from_int(std::int64_t value) noexcept;

}  // namespace bnash::crypto
