#include "crypto/signature.h"

#include <stdexcept>

namespace bnash::crypto {
namespace {

std::uint64_t tag_of(std::uint64_t secret, std::size_t identity, std::uint64_t message) {
    std::uint64_t x = secret ^ (message * 0x9e3779b97f4a7c15ULL) ^
                      (static_cast<std::uint64_t>(identity) << 32);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

}  // namespace

SignedValue Signer::sign(std::uint64_t message) const {
    return SignedValue{identity_, message, tag_of(secret_, identity_, message)};
}

KeyRegistry::KeyRegistry(std::size_t num_identities, util::Rng& rng)
    : secrets_(num_identities), issued_(num_identities, false) {
    for (auto& secret : secrets_) secret = rng.next_u64();
}

Signer KeyRegistry::issue_signer(std::size_t identity) {
    if (identity >= secrets_.size()) throw std::out_of_range("issue_signer: bad identity");
    if (issued_[identity]) throw std::logic_error("issue_signer: key already issued");
    issued_[identity] = true;
    return Signer{identity, secrets_[identity]};
}

bool KeyRegistry::verify(const SignedValue& sv) const {
    if (sv.signer >= secrets_.size()) return false;
    return sv.tag == tag_of(secrets_[sv.signer], sv.signer, sv.message);
}

}  // namespace bnash::crypto
