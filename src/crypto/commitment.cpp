#include "crypto/commitment.h"

namespace bnash::crypto {
namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

}  // namespace

Commitment commit(Fe value, std::uint64_t nonce) {
    Commitment out;
    out.digest_lo = mix64(value.value() * 0x9e3779b97f4a7c15ULL ^ mix64(nonce));
    out.digest_hi = mix64(out.digest_lo ^ mix64(value.value() + nonce));
    return out;
}

Opening commit_random(Fe value, util::Rng& rng) { return Opening{value, rng.next_u64()}; }

bool verify_commitment(const Commitment& commitment, const Opening& opening) {
    return commit(opening.value, opening.nonce) == commitment;
}

}  // namespace bnash::crypto
