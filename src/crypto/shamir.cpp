#include "crypto/shamir.h"

#include <stdexcept>

#include "util/combinatorics.h"

namespace bnash::crypto {

std::vector<Share> share_secret(Fe secret, std::size_t n, std::size_t t, util::Rng& rng) {
    if (t >= n) throw std::invalid_argument("share_secret: need t < n");
    const auto polynomial = Polynomial::random_with_constant(secret, t, rng);
    std::vector<Share> out;
    out.reserve(n);
    for (std::size_t party = 0; party < n; ++party) {
        out.push_back(Share{party, polynomial.eval(Fe{static_cast<std::uint64_t>(party + 1)})});
    }
    return out;
}

Fe reconstruct(const std::vector<Share>& shares, std::size_t t) {
    if (shares.size() < t + 1) {
        throw std::invalid_argument("reconstruct: not enough shares");
    }
    std::vector<EvalPoint> points;
    points.reserve(t + 1);
    for (std::size_t i = 0; i <= t; ++i) points.push_back({shares[i].x(), shares[i].value});
    return interpolate_at(points, Fe{0});
}

std::optional<Fe> reconstruct_with_errors(const std::vector<Share>& shares, std::size_t t,
                                          std::size_t agreement) {
    if (shares.size() < t + 1 || agreement < t + 1 || agreement > shares.size()) {
        return std::nullopt;
    }
    // Consensus interpolation: each (t+1)-subset proposes a polynomial;
    // accept the first consistent with >= agreement shares. Uniqueness:
    // two distinct degree-t polynomials agree on <= t points, so with
    // agreement > (shares.size() + t) / 2 at most one candidate survives.
    for (const auto& subset : util::subsets_of_size(shares.size(), t + 1)) {
        std::vector<EvalPoint> points;
        points.reserve(t + 1);
        for (const std::size_t index : subset) {
            points.push_back({shares[index].x(), shares[index].value});
        }
        const auto candidate = interpolate(points);
        std::size_t consistent = 0;
        for (const auto& share : shares) {
            if (candidate.eval(share.x()) == share.value) ++consistent;
        }
        if (consistent >= agreement) return candidate.eval(Fe{0});
    }
    return std::nullopt;
}

}  // namespace bnash::crypto
