#include "crypto/field.h"

#include <ostream>
#include <stdexcept>

namespace bnash::crypto {

Fe operator+(Fe lhs, Fe rhs) noexcept {
    std::uint64_t sum = lhs.value_ + rhs.value_;  // < 2^62: no overflow
    if (sum >= kFieldPrime) sum -= kFieldPrime;
    Fe out;
    out.value_ = sum;
    return out;
}

Fe operator-(Fe lhs, Fe rhs) noexcept {
    Fe out;
    out.value_ = lhs.value_ >= rhs.value_ ? lhs.value_ - rhs.value_
                                          : lhs.value_ + kFieldPrime - rhs.value_;
    return out;
}

Fe operator*(Fe lhs, Fe rhs) noexcept {
    const auto product = static_cast<__uint128_t>(lhs.value_) * rhs.value_;
    Fe out;
    out.value_ = static_cast<std::uint64_t>(product % kFieldPrime);
    return out;
}

Fe operator-(Fe value) noexcept {
    Fe out;
    out.value_ = value.value_ == 0 ? 0 : kFieldPrime - value.value_;
    return out;
}

Fe Fe::pow(std::uint64_t exponent) const noexcept {
    Fe base = *this;
    Fe result{1};
    while (exponent > 0) {
        if (exponent & 1) result *= base;
        base *= base;
        exponent >>= 1;
    }
    return result;
}

Fe Fe::inverse() const {
    if (is_zero()) throw std::domain_error("Fe::inverse of zero");
    return pow(kFieldPrime - 2);
}

Fe Fe::random(util::Rng& rng) noexcept { return Fe{rng.next_below(kFieldPrime)}; }

std::ostream& operator<<(std::ostream& os, Fe value) { return os << value.value_; }

Fe fe_from_int(std::int64_t value) noexcept {
    if (value >= 0) return Fe{static_cast<std::uint64_t>(value)};
    return -Fe{static_cast<std::uint64_t>(-value)};
}

}  // namespace bnash::crypto
