// Arithmetic circuits over GF(p) and a compiler from lookup tables.
//
// The ADGH cheap-talk implementation evaluates the mediator's policy
// jointly: the policy is compiled into an arithmetic circuit (Lagrange
// indicator polynomials select the table row matching the shared type
// profile), and the circuit is evaluated gate-by-gate on Shamir shares by
// the BGW engine in core/robust. Addition is free on shares; every kMul
// gate costs one interactive degree-reduction round, so num_mul_gates() is
// the protocol's round/traffic driver and is reported by the benches.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "crypto/field.h"

namespace bnash::crypto {

class Circuit final {
public:
    using GateId = std::size_t;
    enum class Op { kInput, kConst, kAdd, kSub, kMul };

    struct Gate final {
        Op op = Op::kConst;
        std::size_t input_index = 0;  // kInput
        Fe constant;                  // kConst
        GateId lhs = 0;               // kAdd/kSub/kMul
        GateId rhs = 0;
    };

    // Gate constructors return ids; identical input/const gates are shared.
    GateId input(std::size_t index);
    GateId constant(Fe value);
    GateId add(GateId lhs, GateId rhs);
    GateId sub(GateId lhs, GateId rhs);
    GateId mul(GateId lhs, GateId rhs);

    void set_output(GateId gate);
    [[nodiscard]] GateId output() const;

    [[nodiscard]] std::size_t num_gates() const noexcept { return gates_.size(); }
    [[nodiscard]] std::size_t num_inputs() const noexcept { return num_inputs_; }
    [[nodiscard]] std::size_t num_mul_gates() const noexcept { return num_mul_; }
    [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }

    // Plain (non-shared) evaluation; inputs.size() must be >= num_inputs().
    [[nodiscard]] Fe eval(std::span<const Fe> inputs) const;

private:
    GateId push(Gate gate);

    std::vector<Gate> gates_;
    std::map<std::size_t, GateId> input_cache_;
    std::map<std::uint64_t, GateId> const_cache_;
    std::size_t num_inputs_ = 0;
    std::size_t num_mul_ = 0;
    GateId output_ = 0;
    bool has_output_ = false;
};

// Builds a circuit computing the function given by `values` over the
// product domain: inputs x_i in {0..domain_sizes[i]-1} (as field elements);
// output = values[product_rank(domain, (x_1..x_n))]. Off-domain inputs
// produce unspecified values (callers validate domain membership first).
[[nodiscard]] Circuit compile_lookup_table(const std::vector<std::size_t>& domain_sizes,
                                           const std::vector<Fe>& values);

}  // namespace bnash::crypto
