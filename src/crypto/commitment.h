// Binding/hiding commitments over a toy mixing function.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper's Section 2/3 results use
// commitments only as an ideal primitive. Inside this closed simulator a
// 128-bit mix of (value, nonce) is perfectly adequate: the simulated
// adversaries cannot invert or collide it by construction, and none of the
// protocol logic depends on computational hardness. Do not reuse outside
// the simulator.
#pragma once

#include <cstdint>

#include "crypto/field.h"
#include "util/rng.h"

namespace bnash::crypto {

struct Commitment final {
    std::uint64_t digest_lo = 0;
    std::uint64_t digest_hi = 0;
    friend bool operator==(const Commitment&, const Commitment&) = default;
};

struct Opening final {
    Fe value;
    std::uint64_t nonce = 0;
};

[[nodiscard]] Commitment commit(Fe value, std::uint64_t nonce);
[[nodiscard]] Opening commit_random(Fe value, util::Rng& rng);
[[nodiscard]] bool verify_commitment(const Commitment& commitment, const Opening& opening);

}  // namespace bnash::crypto
