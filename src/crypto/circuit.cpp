#include "crypto/circuit.h"

#include <stdexcept>

#include "util/combinatorics.h"

namespace bnash::crypto {

Circuit::GateId Circuit::push(Gate gate) {
    gates_.push_back(gate);
    return gates_.size() - 1;
}

Circuit::GateId Circuit::input(std::size_t index) {
    if (const auto it = input_cache_.find(index); it != input_cache_.end()) {
        return it->second;
    }
    Gate gate;
    gate.op = Op::kInput;
    gate.input_index = index;
    const GateId id = push(gate);
    input_cache_[index] = id;
    if (index + 1 > num_inputs_) num_inputs_ = index + 1;
    return id;
}

Circuit::GateId Circuit::constant(Fe value) {
    if (const auto it = const_cache_.find(value.value()); it != const_cache_.end()) {
        return it->second;
    }
    Gate gate;
    gate.op = Op::kConst;
    gate.constant = value;
    const GateId id = push(gate);
    const_cache_[value.value()] = id;
    return id;
}

Circuit::GateId Circuit::add(GateId lhs, GateId rhs) {
    if (lhs >= gates_.size() || rhs >= gates_.size()) throw std::out_of_range("add: bad gate");
    Gate gate;
    gate.op = Op::kAdd;
    gate.lhs = lhs;
    gate.rhs = rhs;
    return push(gate);
}

Circuit::GateId Circuit::sub(GateId lhs, GateId rhs) {
    if (lhs >= gates_.size() || rhs >= gates_.size()) throw std::out_of_range("sub: bad gate");
    Gate gate;
    gate.op = Op::kSub;
    gate.lhs = lhs;
    gate.rhs = rhs;
    return push(gate);
}

Circuit::GateId Circuit::mul(GateId lhs, GateId rhs) {
    if (lhs >= gates_.size() || rhs >= gates_.size()) throw std::out_of_range("mul: bad gate");
    Gate gate;
    gate.op = Op::kMul;
    gate.lhs = lhs;
    gate.rhs = rhs;
    ++num_mul_;
    return push(gate);
}

void Circuit::set_output(GateId gate) {
    if (gate >= gates_.size()) throw std::out_of_range("set_output: bad gate");
    output_ = gate;
    has_output_ = true;
}

Circuit::GateId Circuit::output() const {
    if (!has_output_) throw std::logic_error("Circuit: no output set");
    return output_;
}

Fe Circuit::eval(std::span<const Fe> inputs) const {
    if (inputs.size() < num_inputs_) throw std::invalid_argument("Circuit::eval: few inputs");
    std::vector<Fe> values(gates_.size());
    for (std::size_t id = 0; id < gates_.size(); ++id) {
        const auto& gate = gates_[id];
        switch (gate.op) {
            case Op::kInput: values[id] = inputs[gate.input_index]; break;
            case Op::kConst: values[id] = gate.constant; break;
            case Op::kAdd: values[id] = values[gate.lhs] + values[gate.rhs]; break;
            case Op::kSub: values[id] = values[gate.lhs] - values[gate.rhs]; break;
            case Op::kMul: values[id] = values[gate.lhs] * values[gate.rhs]; break;
        }
    }
    return values[output()];
}

Circuit compile_lookup_table(const std::vector<std::size_t>& domain_sizes,
                             const std::vector<Fe>& values) {
    if (domain_sizes.empty()) throw std::invalid_argument("compile_lookup_table: no inputs");
    if (values.size() != util::product_size(domain_sizes)) {
        throw std::invalid_argument("compile_lookup_table: table size mismatch");
    }
    Circuit circuit;

    // indicator[i][v]: gate computing the Lagrange indicator
    //   L_{i,v}(x_i) = prod_{u != v} (x_i - u) / (v - u),
    // which is 1 when x_i == v and 0 on the rest of the domain.
    std::vector<std::vector<Circuit::GateId>> indicator(domain_sizes.size());
    for (std::size_t i = 0; i < domain_sizes.size(); ++i) {
        const auto x = circuit.input(i);
        indicator[i].resize(domain_sizes[i]);
        for (std::size_t v = 0; v < domain_sizes[i]; ++v) {
            Fe denominator{1};
            Circuit::GateId product = circuit.constant(Fe{1});
            for (std::size_t u = 0; u < domain_sizes[i]; ++u) {
                if (u == v) continue;
                const auto term =
                    circuit.sub(x, circuit.constant(Fe{static_cast<std::uint64_t>(u)}));
                product = circuit.mul(product, term);
                denominator *= (fe_from_int(static_cast<std::int64_t>(v)) -
                                fe_from_int(static_cast<std::int64_t>(u)));
            }
            indicator[i][v] = circuit.mul(product, circuit.constant(denominator.inverse()));
        }
    }

    // sum over rows: value(row) * prod_i indicator[i][row_i].
    Circuit::GateId total = circuit.constant(Fe{0});
    std::size_t row = 0;
    util::product_for_each(domain_sizes, [&](const std::vector<std::size_t>& tuple) {
        Circuit::GateId term = indicator[0][tuple[0]];
        for (std::size_t i = 1; i < tuple.size(); ++i) {
            term = circuit.mul(term, indicator[i][tuple[i]]);
        }
        term = circuit.mul(term, circuit.constant(values[row]));
        total = circuit.add(total, term);
        ++row;
        return true;
    });
    circuit.set_output(total);
    return circuit;
}

}  // namespace bnash::crypto
