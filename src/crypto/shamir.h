// Shamir secret sharing over GF(p), with error-tolerant reconstruction.
//
// Dealing a secret s with threshold t among n parties: sample a uniformly
// random degree-t polynomial p with p(0) = s and hand party i the share
// p(i+1). Any t+1 shares reconstruct s; any t shares reveal nothing
// (information-theoretically). Reconstruction tolerating corrupted shares
// is provided for the Byzantine paths of the mediator protocol: for the
// small n used there, a consensus-interpolation search (try (t+1)-subsets,
// accept a candidate polynomial consistent with >= agreement_threshold
// shares) recovers the secret whenever at most e shares are corrupted and
// n - e > t + e, mirroring Reed-Solomon decodability.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "crypto/field.h"
#include "crypto/polynomial.h"
#include "util/rng.h"

namespace bnash::crypto {

struct Share final {
    std::size_t party = 0;  // share index; evaluation point is party + 1
    Fe value;
    [[nodiscard]] Fe x() const noexcept { return Fe{static_cast<std::uint64_t>(party + 1)}; }
    friend bool operator==(const Share&, const Share&) = default;
};

// Deals `secret` into n shares with threshold t (any t+1 reconstruct).
// Requires t < n.
[[nodiscard]] std::vector<Share> share_secret(Fe secret, std::size_t n, std::size_t t,
                                              util::Rng& rng);

// Exact reconstruction from >= t+1 honest shares (throws on fewer).
[[nodiscard]] Fe reconstruct(const std::vector<Share>& shares, std::size_t t);

// Error-tolerant reconstruction: returns the secret of the unique degree-t
// polynomial consistent with at least `agreement` of the shares, or
// nullopt when no such polynomial exists. With e corrupted shares,
// agreement = shares.size() - e succeeds whenever shares.size() >= t+1+2e.
[[nodiscard]] std::optional<Fe> reconstruct_with_errors(const std::vector<Share>& shares,
                                                        std::size_t t, std::size_t agreement);

}  // namespace bnash::crypto
