// Strategy automata for repeated 2-action games (Cooperate = 0, Defect = 1).
//
// Each strategy is a small machine with an explicit complexity profile --
// the quantity Example 3.2 charges for. Tit-for-tat needs one bit (the
// opponent's last move); "tit-for-tat but defect at the last round" also
// needs a round counter, and that counter is exactly the memory the
// paper's argument prices out of existence.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "util/rng.h"

namespace bnash::repeated {

inline constexpr std::size_t kCooperate = 0;
inline constexpr std::size_t kDefect = 1;

struct StrategyComplexity final {
    std::size_t states = 1;        // automaton states (Rubinstein's measure)
    // PERSISTENT working memory in bits, beyond the per-round observation
    // interface (Example 3.2's measure). The harness hands every strategy
    // the opponent's last move each round, so reacting to it is free:
    // tit-for-tat carries 0 bits, grim trigger carries its 1-bit flag, and
    // defect-at-the-last-round carries the ceil(log2 N)-bit round counter
    // the paper's argument prices out of existence. (Charging for the
    // observation itself would make AllC a strictly cheaper deviation with
    // identical play against TfT, contradicting the example.)
    std::size_t memory_bits = 0;
    bool randomized = false;       // uses coin flips (Example 3.3's surcharge)
};

class Strategy {
public:
    virtual ~Strategy() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual StrategyComplexity complexity() const = 0;
    // Fresh playing state for a new match.
    virtual void reset() = 0;
    // Action for round `round` (0-based); `opponent_last` is meaningful for
    // round >= 1.
    [[nodiscard]] virtual std::size_t act(std::size_t round, std::size_t opponent_last,
                                          util::Rng& rng) = 0;
    [[nodiscard]] virtual std::unique_ptr<Strategy> clone() const = 0;
};

[[nodiscard]] std::unique_ptr<Strategy> always_cooperate();
[[nodiscard]] std::unique_ptr<Strategy> always_defect();
[[nodiscard]] std::unique_ptr<Strategy> tit_for_tat();
// Cooperates until the opponent defects once, then defects forever.
[[nodiscard]] std::unique_ptr<Strategy> grim_trigger();
// Win-stay lose-shift: repeat own move after a good outcome (opponent
// cooperated), switch after a bad one.
[[nodiscard]] std::unique_ptr<Strategy> pavlov();
// Cooperates with probability p each round.
[[nodiscard]] std::unique_ptr<Strategy> random_strategy(double p_cooperate);
// Tit-for-tat, except defect unconditionally in the final round of an
// N-round game: the profitable deviation from Example 3.2, which must
// track the round number (memory_bits grows like log2 N).
[[nodiscard]] std::unique_ptr<Strategy> tft_defect_last(std::size_t total_rounds);
// Defects in the last `k` rounds; tit-for-tat before that.
[[nodiscard]] std::unique_ptr<Strategy> tft_defect_last_k(std::size_t total_rounds,
                                                          std::size_t k);

// The classic tournament lineup.
[[nodiscard]] std::vector<std::unique_ptr<Strategy>> classic_lineup();

}  // namespace bnash::repeated
