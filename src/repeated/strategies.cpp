#include "repeated/strategies.h"

#include <bit>
#include <stdexcept>
#include <vector>

namespace bnash::repeated {
namespace {

std::size_t bits_for(std::size_t values) {
    return values <= 1 ? 0 : std::bit_width(values - 1);
}

class AlwaysCooperate final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "AllC"; }
    [[nodiscard]] StrategyComplexity complexity() const override { return {1, 0, false}; }
    void reset() override {}
    [[nodiscard]] std::size_t act(std::size_t, std::size_t, util::Rng&) override {
        return kCooperate;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<AlwaysCooperate>(*this);
    }
};

class AlwaysDefect final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "AllD"; }
    [[nodiscard]] StrategyComplexity complexity() const override { return {1, 0, false}; }
    void reset() override {}
    [[nodiscard]] std::size_t act(std::size_t, std::size_t, util::Rng&) override {
        return kDefect;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<AlwaysDefect>(*this);
    }
};

class TitForTat final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "TitForTat"; }
    [[nodiscard]] StrategyComplexity complexity() const override { return {2, 0, false}; }
    void reset() override {}
    [[nodiscard]] std::size_t act(std::size_t round, std::size_t opponent_last,
                                  util::Rng&) override {
        return round == 0 ? kCooperate : opponent_last;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<TitForTat>(*this);
    }
};

class GrimTrigger final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "Grim"; }
    [[nodiscard]] StrategyComplexity complexity() const override { return {2, 1, false}; }
    void reset() override { triggered_ = false; }
    [[nodiscard]] std::size_t act(std::size_t round, std::size_t opponent_last,
                                  util::Rng&) override {
        if (round > 0 && opponent_last == kDefect) triggered_ = true;
        return triggered_ ? kDefect : kCooperate;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<GrimTrigger>(*this);
    }

private:
    bool triggered_ = false;
};

class Pavlov final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "Pavlov"; }
    [[nodiscard]] StrategyComplexity complexity() const override { return {2, 1, false}; }
    void reset() override { last_own_ = kCooperate; }
    [[nodiscard]] std::size_t act(std::size_t round, std::size_t opponent_last,
                                  util::Rng&) override {
        if (round == 0) {
            last_own_ = kCooperate;
            return last_own_;
        }
        // Win (opponent cooperated): stay. Lose: shift.
        if (opponent_last == kDefect) last_own_ = 1 - last_own_;
        return last_own_;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<Pavlov>(*this);
    }

private:
    std::size_t last_own_ = kCooperate;
};

class RandomStrategy final : public Strategy {
public:
    explicit RandomStrategy(double p_cooperate) : p_(p_cooperate) {
        if (p_ < 0.0 || p_ > 1.0) throw std::invalid_argument("random_strategy: p");
    }
    [[nodiscard]] std::string name() const override { return "Random"; }
    [[nodiscard]] StrategyComplexity complexity() const override { return {1, 0, true}; }
    void reset() override {}
    [[nodiscard]] std::size_t act(std::size_t, std::size_t, util::Rng& rng) override {
        return rng.next_bool(p_) ? kCooperate : kDefect;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<RandomStrategy>(*this);
    }

private:
    double p_;
};

class TftDefectLastK final : public Strategy {
public:
    TftDefectLastK(std::size_t total_rounds, std::size_t k)
        : total_rounds_(total_rounds), k_(k) {
        if (k == 0 || k > total_rounds) throw std::invalid_argument("tft_defect_last_k: k");
    }
    [[nodiscard]] std::string name() const override {
        return k_ == 1 ? "TfT-DefectLast" : ("TfT-DefectLast" + std::to_string(k_));
    }
    [[nodiscard]] StrategyComplexity complexity() const override {
        // The round counter over the horizon: this is the "extra memory"
        // of Example 3.2 (tit-for-tat itself carries no persistent bits).
        return {total_rounds_ + 1, bits_for(total_rounds_), false};
    }
    void reset() override {}
    [[nodiscard]] std::size_t act(std::size_t round, std::size_t opponent_last,
                                  util::Rng&) override {
        if (round + k_ >= total_rounds_) return kDefect;
        return round == 0 ? kCooperate : opponent_last;
    }
    [[nodiscard]] std::unique_ptr<Strategy> clone() const override {
        return std::make_unique<TftDefectLastK>(*this);
    }

private:
    std::size_t total_rounds_;
    std::size_t k_;
};

}  // namespace

std::unique_ptr<Strategy> always_cooperate() { return std::make_unique<AlwaysCooperate>(); }
std::unique_ptr<Strategy> always_defect() { return std::make_unique<AlwaysDefect>(); }
std::unique_ptr<Strategy> tit_for_tat() { return std::make_unique<TitForTat>(); }
std::unique_ptr<Strategy> grim_trigger() { return std::make_unique<GrimTrigger>(); }
std::unique_ptr<Strategy> pavlov() { return std::make_unique<Pavlov>(); }
std::unique_ptr<Strategy> random_strategy(double p_cooperate) {
    return std::make_unique<RandomStrategy>(p_cooperate);
}
std::unique_ptr<Strategy> tft_defect_last(std::size_t total_rounds) {
    return std::make_unique<TftDefectLastK>(total_rounds, 1);
}
std::unique_ptr<Strategy> tft_defect_last_k(std::size_t total_rounds, std::size_t k) {
    return std::make_unique<TftDefectLastK>(total_rounds, k);
}

std::vector<std::unique_ptr<Strategy>> classic_lineup() {
    std::vector<std::unique_ptr<Strategy>> out;
    out.push_back(always_cooperate());
    out.push_back(always_defect());
    out.push_back(tit_for_tat());
    out.push_back(grim_trigger());
    out.push_back(pavlov());
    out.push_back(random_strategy(0.5));
    return out;
}

}  // namespace bnash::repeated
