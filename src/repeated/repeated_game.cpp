#include "repeated/repeated_game.h"

#include <algorithm>
#include <stdexcept>

#include "util/combinatorics.h"

namespace bnash::repeated {

RepeatedGame::RepeatedGame(game::NormalFormGame stage, std::size_t rounds, double delta)
    : stage_(std::move(stage)), rounds_(rounds), delta_(delta) {
    if (stage_.num_players() != 2 || stage_.num_actions(0) != 2 || stage_.num_actions(1) != 2) {
        throw std::invalid_argument("RepeatedGame: stage must be 2x2");
    }
    if (rounds_ == 0) throw std::invalid_argument("RepeatedGame: zero rounds");
    if (delta_ <= 0.0 || delta_ > 1.0) throw std::invalid_argument("RepeatedGame: delta");
}

MatchResult RepeatedGame::play(Strategy& s0, Strategy& s1, util::Rng& rng,
                               double noise) const {
    s0.reset();
    s1.reset();
    MatchResult result;
    result.actions0.reserve(rounds_);
    result.actions1.reserve(rounds_);
    std::size_t last0 = 0;
    std::size_t last1 = 0;
    double weight = delta_;  // round m (1-based) weighs delta^m
    for (std::size_t round = 0; round < rounds_; ++round) {
        std::size_t a0 = s0.act(round, last1, rng);
        std::size_t a1 = s1.act(round, last0, rng);
        if (noise > 0.0) {
            if (rng.next_bool(noise)) a0 = 1 - a0;
            if (rng.next_bool(noise)) a1 = 1 - a1;
        }
        result.payoff0 += weight * stage_.payoff_d({a0, a1}, 0);
        result.payoff1 += weight * stage_.payoff_d({a0, a1}, 1);
        weight *= delta_;
        result.actions0.push_back(a0);
        result.actions1.push_back(a1);
        last0 = a0;
        last1 = a1;
    }
    return result;
}

MatchResult RepeatedGame::play_average(const Strategy& s0, const Strategy& s1, util::Rng& rng,
                                       std::size_t trials, double noise) const {
    if (trials == 0) throw std::invalid_argument("play_average: zero trials");
    MatchResult total;
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto fresh0 = s0.clone();
        const auto fresh1 = s1.clone();
        const auto result = play(*fresh0, *fresh1, rng, noise);
        total.payoff0 += result.payoff0;
        total.payoff1 += result.payoff1;
        if (trial == 0) {
            total.actions0 = result.actions0;
            total.actions1 = result.actions1;
        }
    }
    total.payoff0 /= static_cast<double>(trials);
    total.payoff1 /= static_cast<double>(trials);
    return total;
}

game::NormalFormGame RepeatedGame::meta_game(
    const std::vector<std::unique_ptr<Strategy>>& strategies) const {
    if (strategies.empty()) throw std::invalid_argument("meta_game: empty strategy set");
    for (const auto& s : strategies) {
        if (s->complexity().randomized) {
            throw std::invalid_argument("meta_game: deterministic strategies only");
        }
    }
    const std::size_t count = strategies.size();
    game::NormalFormGame meta({count, count});
    util::Rng rng{0};  // unused by deterministic strategies
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t j = 0; j < count; ++j) {
            const auto s0 = strategies[i]->clone();
            const auto s1 = strategies[j]->clone();
            const auto result = play(*s0, *s1, rng);
            meta.set_payoff({i, j}, 0, util::Rational::from_double(result.payoff0));
            meta.set_payoff({i, j}, 1, util::Rational::from_double(result.payoff1));
        }
    }
    std::vector<std::string> labels;
    labels.reserve(count);
    for (const auto& s : strategies) labels.push_back(s->name());
    meta.set_action_labels(0, labels);
    meta.set_action_labels(1, std::move(labels));
    return meta;
}

std::vector<TournamentEntry> round_robin(const game::NormalFormGame& stage,
                                         const std::vector<std::unique_ptr<Strategy>>& lineup,
                                         const TournamentOptions& options) {
    if (lineup.empty()) throw std::invalid_argument("round_robin: empty lineup");
    RepeatedGame game(stage, options.rounds, options.delta);
    util::Rng rng{options.seed};
    std::vector<TournamentEntry> entries(lineup.size());
    std::vector<std::size_t> matches(lineup.size(), 0);
    for (std::size_t i = 0; i < lineup.size(); ++i) entries[i].name = lineup[i]->name();
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        for (std::size_t j = i; j < lineup.size(); ++j) {
            if (i == j && !options.include_self_play) continue;
            const auto result =
                game.play_average(*lineup[i], *lineup[j], rng, options.trials, options.noise);
            entries[i].total_score += result.payoff0;
            matches[i] += 1;
            if (i != j) {
                entries[j].total_score += result.payoff1;
                matches[j] += 1;
                if (result.payoff0 > result.payoff1) entries[i].wins += 1;
                if (result.payoff1 > result.payoff0) entries[j].wins += 1;
            }
        }
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
        entries[i].average_score =
            matches[i] == 0 ? 0.0 : entries[i].total_score / static_cast<double>(matches[i]);
    }
    std::sort(entries.begin(), entries.end(),
              [](const TournamentEntry& a, const TournamentEntry& b) {
                  return a.total_score > b.total_score;
              });
    return entries;
}

}  // namespace bnash::repeated
