// Finitely repeated 2-player games with discounting, meta-games over
// strategy sets, and the Axelrod round-robin tournament.
//
// The discounting convention follows Example 3.2: a reward r_m earned in
// round m (1-based) contributes delta^m * r_m to the total.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "game/normal_form.h"
#include "repeated/strategies.h"
#include "util/rng.h"

namespace bnash::repeated {

struct MatchResult final {
    double payoff0 = 0.0;  // discounted totals
    double payoff1 = 0.0;
    std::vector<std::size_t> actions0;
    std::vector<std::size_t> actions1;
};

class RepeatedGame final {
public:
    // `stage` must be a 2-player game with 2 actions per player for the
    // automaton strategies (checked). delta in (0, 1]; delta = 1 recovers
    // undiscounted sums.
    RepeatedGame(game::NormalFormGame stage, std::size_t rounds, double delta = 1.0);

    [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
    [[nodiscard]] double delta() const noexcept { return delta_; }
    [[nodiscard]] const game::NormalFormGame& stage() const noexcept { return stage_; }

    // Plays one match. `noise` flips each chosen action independently with
    // the given probability (trembling-hand tournaments).
    [[nodiscard]] MatchResult play(Strategy& s0, Strategy& s1, util::Rng& rng,
                                   double noise = 0.0) const;

    // Average payoffs over `trials` matches (meaningful when strategies
    // randomize or noise > 0; deterministic matches need one trial).
    [[nodiscard]] MatchResult play_average(const Strategy& s0, const Strategy& s1,
                                           util::Rng& rng, std::size_t trials,
                                           double noise = 0.0) const;

    // Meta-game over a strategy set: action i = playing strategies[i] for
    // the whole repeated game. Payoffs are discounted totals (converted to
    // exact rationals via Rational::from_double; with delta = 1 and integer
    // stage payoffs they are exact integers). Deterministic strategy sets
    // only (randomized strategies would need play_average semantics).
    [[nodiscard]] game::NormalFormGame meta_game(
        const std::vector<std::unique_ptr<Strategy>>& strategies) const;

private:
    game::NormalFormGame stage_;
    std::size_t rounds_;
    double delta_;
};

// ---------------------------------------------------------------- tournament

struct TournamentEntry final {
    std::string name;
    double total_score = 0.0;     // summed over all pairings
    double average_score = 0.0;   // per match
    std::size_t wins = 0;         // matches with strictly higher payoff
};

struct TournamentOptions final {
    std::size_t rounds = 200;
    double delta = 1.0;
    double noise = 0.0;
    std::size_t trials = 1;  // per pairing (raise when noisy/randomized)
    bool include_self_play = true;
    std::uint64_t seed = 42;
};

// Round-robin over the lineup on the given stage game; returns entries
// sorted by total score, highest first.
[[nodiscard]] std::vector<TournamentEntry> round_robin(
    const game::NormalFormGame& stage, const std::vector<std::unique_ptr<Strategy>>& lineup,
    const TournamentOptions& options = {});

}  // namespace bnash::repeated
