// Tests for the game representations: strategies, normal-form, Bayesian,
// extensive-form, and the paper's game catalog.
#include <gtest/gtest.h>

#include "game/bayesian.h"
#include "game/catalog.h"
#include "game/extensive.h"
#include "game/normal_form.h"
#include "game/strategy.h"
#include "util/rng.h"

namespace bnash::game {
namespace {

using util::Rational;

// ---------------------------------------------------------------- strategy

TEST(Strategy, PureAsMixed) {
    const auto s = pure_as_mixed(1, 3);
    EXPECT_EQ(s, (MixedStrategy{0.0, 1.0, 0.0}));
    EXPECT_THROW((void)pure_as_mixed(3, 3), std::out_of_range);
}

TEST(Strategy, UniformIsDistribution) {
    EXPECT_TRUE(is_distribution(uniform_strategy(7)));
    EXPECT_THROW((void)uniform_strategy(0), std::invalid_argument);
}

TEST(Strategy, SupportFindsPositiveEntries) {
    const MixedStrategy s{0.5, 0.0, 0.5};
    EXPECT_EQ(support(s), (std::vector<std::size_t>{0, 2}));
}

TEST(Strategy, IsDistributionRejectsBadVectors) {
    EXPECT_FALSE(is_distribution({0.5, 0.6}));
    EXPECT_FALSE(is_distribution({-0.1, 1.1}));
    EXPECT_FALSE(is_distribution({}));
}

TEST(Strategy, ExactDistribution) {
    EXPECT_TRUE(is_exact_distribution({Rational{1, 3}, Rational{2, 3}}));
    EXPECT_FALSE(is_exact_distribution({Rational{1, 3}, Rational{1, 3}}));
    EXPECT_FALSE(is_exact_distribution({Rational{-1, 3}, Rational{4, 3}}));
}

TEST(Strategy, SamplingMatchesDistribution) {
    util::Rng rng{5};
    const MixedStrategy s{0.2, 0.8};
    int ones = 0;
    for (int i = 0; i < 10'000; ++i) ones += (sample(s, rng) == 1);
    EXPECT_NEAR(ones, 8000, 300);
}

TEST(Strategy, ProfileDistance) {
    const MixedProfile a{{1.0, 0.0}, {0.5, 0.5}};
    const MixedProfile b{{0.9, 0.1}, {0.5, 0.5}};
    EXPECT_NEAR(profile_distance(a, b), 0.1, 1e-12);
}

// ------------------------------------------------------------- NormalForm

TEST(NormalForm, PrisonersDilemmaPayoffs) {
    const auto pd = catalog::prisoners_dilemma();
    EXPECT_EQ(pd.num_players(), 2u);
    EXPECT_EQ(pd.payoff({0, 0}, 0), Rational{3});
    EXPECT_EQ(pd.payoff({0, 1}, 0), Rational{-5});
    EXPECT_EQ(pd.payoff({0, 1}, 1), Rational{5});
    EXPECT_EQ(pd.payoff({1, 1}, 1), Rational{-3});
    EXPECT_EQ(pd.action_label(0, 1), "D");
}

TEST(NormalForm, ExpectedPayoffMatchesHandComputation) {
    const auto pd = catalog::prisoners_dilemma();
    // Both uniform: E[u0] = (3 - 5 + 5 - 3)/4 = 0.
    const MixedProfile uniform{uniform_strategy(2), uniform_strategy(2)};
    EXPECT_NEAR(pd.expected_payoff(uniform, 0), 0.0, 1e-12);
    EXPECT_NEAR(pd.expected_payoff(uniform, 1), 0.0, 1e-12);
}

TEST(NormalForm, DeviationPayoffAndBestResponse) {
    const auto pd = catalog::prisoners_dilemma();
    const MixedProfile opponent_cooperates{pure_as_mixed(0, 2), pure_as_mixed(0, 2)};
    // Against C, defecting pays 5, cooperating 3: best response is D.
    EXPECT_NEAR(pd.deviation_payoff(opponent_cooperates, 0, 1), 5.0, 1e-12);
    EXPECT_EQ(pd.best_responses(opponent_cooperates, 0), (std::vector<std::size_t>{1}));
}

TEST(NormalForm, RegretZeroAtEquilibrium) {
    const auto pd = catalog::prisoners_dilemma();
    const MixedProfile both_defect{pure_as_mixed(1, 2), pure_as_mixed(1, 2)};
    EXPECT_NEAR(pd.regret(both_defect), 0.0, 1e-12);
    const MixedProfile both_cooperate{pure_as_mixed(0, 2), pure_as_mixed(0, 2)};
    EXPECT_NEAR(pd.regret(both_cooperate), 2.0, 1e-12);  // C->D gains 5-3=2
}

TEST(NormalForm, ExactExpectedPayoff) {
    const auto pd = catalog::prisoners_dilemma();
    const ExactMixedProfile profile{{Rational{1, 2}, Rational{1, 2}},
                                    {Rational{1, 3}, Rational{2, 3}}};
    // E[u0] = 1/2(1/3*3 + 2/3*-5) + 1/2(1/3*5 + 2/3*-3) = 1/2(-7/3) + 1/2(-1/3) = -4/3.
    EXPECT_EQ(pd.expected_payoff_exact(profile, 0), Rational(-4, 3));
}

TEST(NormalForm, RestrictKeepsPayoffs) {
    const auto rps = catalog::roshambo();
    const auto restricted = rps.restrict({{0, 2}, {1}});
    EXPECT_EQ(restricted.num_actions(0), 2u);
    EXPECT_EQ(restricted.num_actions(1), 1u);
    // (scissors, paper): scissors beats paper: +1 for row.
    EXPECT_EQ(restricted.payoff({1, 0}, 0), Rational{1});
    EXPECT_EQ(restricted.action_label(0, 1), "scissors");
}

TEST(NormalForm, ZeroSumConstruction) {
    const auto rps = catalog::roshambo();
    for (std::uint64_t rank = 0; rank < rps.num_profiles(); ++rank) {
        const auto profile = rps.profile_unrank(rank);
        EXPECT_EQ(rps.payoff(profile, 0) + rps.payoff(profile, 1), Rational{0});
    }
}

TEST(NormalForm, RandomGameDeterministicBySeed) {
    util::Rng rng1{11};
    util::Rng rng2{11};
    const auto g1 = NormalFormGame::random({2, 3}, rng1);
    const auto g2 = NormalFormGame::random({2, 3}, rng2);
    for (std::uint64_t rank = 0; rank < g1.num_profiles(); ++rank) {
        const auto profile = g1.profile_unrank(rank);
        EXPECT_EQ(g1.payoff(profile, 0), g2.payoff(profile, 0));
        EXPECT_EQ(g1.payoff(profile, 1), g2.payoff(profile, 1));
    }
}

TEST(NormalForm, AttackGamePayoffStructure) {
    const auto g = catalog::attack_coordination_game(4);
    EXPECT_EQ(g.payoff({0, 0, 0, 0}, 2), Rational{1});
    EXPECT_EQ(g.payoff({1, 1, 0, 0}, 0), Rational{2});
    EXPECT_EQ(g.payoff({1, 1, 0, 0}, 2), Rational{0});
    EXPECT_EQ(g.payoff({1, 1, 1, 0}, 0), Rational{0});
}

TEST(NormalForm, BargainingGamePayoffStructure) {
    const auto g = catalog::bargaining_game(3);
    EXPECT_EQ(g.payoff({0, 0, 0}, 1), Rational{2});
    EXPECT_EQ(g.payoff({0, 1, 0}, 1), Rational{1});
    EXPECT_EQ(g.payoff({0, 1, 0}, 0), Rational{0});
}

TEST(NormalForm, GnutellaFreeRidingDominantWithoutKick) {
    const auto g = catalog::gnutella_sharing_game(3, 1, 3, 0);
    // Sharing costs 3, gives others benefit; free-riding dominates.
    const MixedProfile all_share{pure_as_mixed(1, 2), pure_as_mixed(1, 2),
                                 pure_as_mixed(1, 2)};
    EXPECT_GT(g.deviation_payoff(all_share, 0, 0), g.expected_payoff(all_share, 0));
    // With a large enough "kick" g > c, sharing becomes a best response.
    const auto g_kick = catalog::gnutella_sharing_game(3, 1, 3, 5);
    EXPECT_GT(g_kick.expected_payoff(all_share, 0) + 1e-9,
              g_kick.deviation_payoff(all_share, 0, 0));
}

// Property: expected payoff of a pure profile embedded as mixed equals the
// pure payoff, for random games.
class NormalFormEmbeddingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalFormEmbeddingProperty, PureEmbedsIntoMixed) {
    util::Rng rng{GetParam()};
    const auto game = NormalFormGame::random({2, 3, 2}, rng);
    util::Rng sampler{GetParam() + 1000};
    for (int trial = 0; trial < 5; ++trial) {
        PureProfile profile{sampler.next_below(2), sampler.next_below(3),
                            sampler.next_below(2)};
        const auto mixed = pure_profile_as_mixed(profile, game.action_counts());
        for (std::size_t player = 0; player < 3; ++player) {
            EXPECT_NEAR(game.expected_payoff(mixed, player), game.payoff_d(profile, player),
                        1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormEmbeddingProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------- Bayesian

TEST(Bayesian, PriorValidation) {
    auto g = catalog::byzantine_agreement_game(3);
    EXPECT_NO_THROW(g.validate_prior());
    BayesianGame bad({2}, {2});
    bad.set_prior({0}, Rational{1, 3});
    EXPECT_THROW(bad.validate_prior(), std::logic_error);
}

TEST(Bayesian, ByzantineAllRetreatIsEquilibrium) {
    const auto g = catalog::byzantine_agreement_game(3);
    // Everyone plays 0 regardless of type: agreement always, matches the
    // general's preference half the time.
    const BayesianPureProfile all_zero{{0, 0}, {0}, {0}};
    EXPECT_TRUE(g.is_bayes_nash(all_zero));
    EXPECT_EQ(g.expected_payoff(all_zero, 1), (Rational{3, 2}));
}

TEST(Bayesian, ByzantineTruthfulGeneralAloneIsNotEquilibrium) {
    const auto g = catalog::byzantine_agreement_game(3);
    // The general follows its preference but nobody can see it: no agreement
    // when the preference is 1, so the general should deviate to constant 0.
    const BayesianPureProfile truthful{{0, 1}, {0}, {0}};
    EXPECT_FALSE(g.is_bayes_nash(truthful));
}

TEST(Bayesian, InterimPayoffConditionsOnOwnType) {
    const auto g = catalog::byzantine_agreement_game(2);
    const BayesianPureProfile all_zero{{0, 0}, {0}};
    // General with type 0 playing 0: agreement + match => 2 (times P(type)=1/2).
    EXPECT_EQ(g.interim_payoff(all_zero, 0, 0, 0), Rational{1});
    // General with type 1 playing 0: agreement, no match => 1 (times 1/2).
    EXPECT_EQ(g.interim_payoff(all_zero, 0, 1, 0), (Rational{1, 2}));
}

TEST(Bayesian, CorrelatedTypesGameAllProfilesAreEquilibria) {
    const auto g = catalog::correlated_types_game();
    // No player observes the other's type, so every strategy yields 1.
    const auto equilibria = g.pure_bayes_nash();
    EXPECT_EQ(equilibria.size(), 16u);
}

TEST(Bayesian, StrategicFormShape) {
    const auto g = catalog::byzantine_agreement_game(3);
    const auto sf = g.to_strategic_form();
    EXPECT_EQ(sf.num_players(), 3u);
    EXPECT_EQ(sf.num_actions(0), 4u);  // 2 types -> 2^2 maps
    EXPECT_EQ(sf.num_actions(1), 2u);
    const auto strategy = g.strategy_unrank(0, 2);  // row-major: type0->1, type1->0
    EXPECT_EQ(strategy, (BayesianPureStrategy{1, 0}));
    EXPECT_EQ(g.strategy_rank(0, strategy), 2u);
}

TEST(Bayesian, StrategicFormPayoffsMatchExpectedPayoffs) {
    const auto g = catalog::correlated_types_game();
    const auto sf = g.to_strategic_form();
    for (std::uint64_t r0 = 0; r0 < 4; ++r0) {
        for (std::uint64_t r1 = 0; r1 < 4; ++r1) {
            const BayesianPureProfile profile{g.strategy_unrank(0, r0),
                                              g.strategy_unrank(1, r1)};
            EXPECT_EQ(sf.payoff({static_cast<std::size_t>(r0), static_cast<std::size_t>(r1)},
                                0),
                      g.expected_payoff(profile, 0));
        }
    }
}

TEST(Bayesian, BehavioralExpectedPayoffMatchesPureWhenDegenerate) {
    const auto g = catalog::correlated_types_game();
    // Behavioral profile with point masses == the pure profile's value.
    const BayesianPureProfile pure{{0, 1}, {1, 0}};
    BayesianBehavioralProfile behavioral(2);
    for (std::size_t player = 0; player < 2; ++player) {
        for (std::size_t type = 0; type < 2; ++type) {
            behavioral[player].push_back(pure_as_mixed(pure[player][type], 2));
        }
    }
    EXPECT_NEAR(g.expected_payoff_d(behavioral, 0), g.expected_payoff(pure, 0).to_double(),
                1e-12);
}

TEST(Bayesian, BehavioralExpectedPayoffMixesTypes) {
    const auto g = catalog::correlated_types_game();
    // Fully mixed behavior: payoff is the prior-weighted average, 1.
    BayesianBehavioralProfile uniform(2);
    for (std::size_t player = 0; player < 2; ++player) {
        uniform[player] = {uniform_strategy(2), uniform_strategy(2)};
    }
    EXPECT_NEAR(g.expected_payoff_d(uniform, 0), 1.0, 1e-12);
    EXPECT_NEAR(g.expected_payoff_d(uniform, 1), 1.0, 1e-12);
}

TEST(Bayesian, SampleTypesRespectsPrior) {
    const auto g = catalog::byzantine_agreement_game(2);
    util::Rng rng{23};
    int ones = 0;
    for (int i = 0; i < 4000; ++i) ones += (g.sample_types(rng)[0] == 1);
    EXPECT_NEAR(ones, 2000, 140);
}

// --------------------------------------------------------------- Extensive

TEST(Extensive, Figure1BackwardInduction) {
    const auto g = catalog::figure1_game();
    const auto result = g.backward_induction();
    // B plays down_B; A anticipates it and plays across_A; payoffs (2,2).
    EXPECT_EQ(result.values, (std::vector<Rational>{2, 2}));
    const auto a_set = g.find_info_set("A");
    const auto b_set = g.find_info_set("B");
    ASSERT_TRUE(a_set && b_set);
    EXPECT_EQ(result.strategy[*a_set], 1u);  // across_A
    EXPECT_EQ(result.strategy[*b_set], 0u);  // down_B
}

TEST(Extensive, Figure1WithoutDownBChangesAsChoice) {
    const auto g = catalog::figure1_game_without_downB();
    const auto result = g.backward_induction();
    // B's only move leads to (0,0); A prefers down_A's (1,1).
    EXPECT_EQ(result.values, (std::vector<Rational>{1, 1}));
}

TEST(Extensive, Figure1NormalForm) {
    const auto nf = catalog::figure1_game().to_normal_form();
    EXPECT_EQ(nf.num_actions(0), 2u);
    EXPECT_EQ(nf.num_actions(1), 2u);
    EXPECT_EQ(nf.payoff({0, 0}, 0), Rational{1});  // down_A regardless of B
    EXPECT_EQ(nf.payoff({0, 1}, 0), Rational{1});
    EXPECT_EQ(nf.payoff({1, 0}, 0), Rational{2});  // across_A, down_B
    EXPECT_EQ(nf.payoff({1, 1}, 0), Rational{0});  // across_A, across_B
}

TEST(Extensive, ExpectedPayoffsUnderUniformPlay) {
    const auto g = catalog::figure1_game();
    const auto payoffs = g.expected_payoffs(g.uniform_profile());
    // 1/2 down_A -> (1,1); 1/4 -> (2,2); 1/4 -> (0,0).
    EXPECT_NEAR(payoffs[0], 1.0, 1e-12);
    EXPECT_NEAR(payoffs[1], 1.0, 1e-12);
}

TEST(Extensive, ReachProbabilities) {
    const auto g = catalog::figure1_game();
    const auto reach = g.reach_probabilities(g.uniform_profile());
    EXPECT_NEAR(reach[g.root()], 1.0, 1e-12);
    const auto b_node = g.node_at({1});
    EXPECT_NEAR(reach[b_node], 0.5, 1e-12);
    EXPECT_NEAR(reach[g.node_at({1, 1})], 0.25, 1e-12);
}

TEST(Extensive, HistoryRoundTrip) {
    const auto g = catalog::figure1_game();
    for (const auto& run : g.runs()) {
        EXPECT_EQ(g.history_of(g.node_at(run)), run);
    }
    EXPECT_EQ(g.runs().size(), 3u);
}

TEST(Extensive, ChanceNodesAverageExactly) {
    ExtensiveGame g(1);
    const auto chance = g.add_chance({Rational{1, 3}, Rational{2, 3}});
    const auto lo = g.add_terminal({Rational{0}});
    const auto hi = g.add_terminal({Rational{3}});
    g.set_child(chance, 0, lo);
    g.set_child(chance, 1, hi);
    g.finalize();
    const auto payoffs = g.expected_payoffs({});
    EXPECT_NEAR(payoffs[0], 2.0, 1e-12);
}

TEST(Extensive, FinalizeRejectsBadChanceProbs) {
    ExtensiveGame g(1);
    const auto chance = g.add_chance({Rational{1, 2}, Rational{1, 3}});
    const auto a = g.add_terminal({Rational{0}});
    const auto b = g.add_terminal({Rational{1}});
    g.set_child(chance, 0, a);
    g.set_child(chance, 1, b);
    EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(Extensive, FinalizeRejectsMissingChildren) {
    ExtensiveGame g(1);
    (void)g.add_decision(0, "root", {"l", "r"});
    EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(Extensive, SetChildRejectsReattachment) {
    ExtensiveGame g(1);
    const auto root = g.add_decision(0, "root", {"l", "r"});
    const auto t = g.add_terminal({Rational{0}});
    g.set_child(root, 0, t);
    EXPECT_THROW(g.set_child(root, 1, t), std::invalid_argument);
}

TEST(Extensive, ImperfectInformationDetected) {
    // Matching pennies in extensive form: player 1 cannot see player 0's coin.
    ExtensiveGame g(2);
    const auto root = g.add_decision(0, "P0", {"H", "T"});
    const auto after_h = g.add_decision(1, "P1", {"H", "T"});
    const auto after_t = g.add_decision(1, "P1", {"H", "T"});
    const auto hh = g.add_terminal({1, -1});
    const auto ht = g.add_terminal({-1, 1});
    const auto th = g.add_terminal({-1, 1});
    const auto tt = g.add_terminal({1, -1});
    g.set_child(root, 0, after_h);
    g.set_child(root, 1, after_t);
    g.set_child(after_h, 0, hh);
    g.set_child(after_h, 1, ht);
    g.set_child(after_t, 0, th);
    g.set_child(after_t, 1, tt);
    g.finalize();
    EXPECT_FALSE(g.is_perfect_information());
    EXPECT_THROW((void)g.backward_induction(), std::logic_error);
    // Its strategic form is exactly matching pennies.
    const auto nf = g.to_normal_form();
    const auto mp = catalog::matching_pennies();
    for (std::uint64_t rank = 0; rank < 4; ++rank) {
        const auto profile = nf.profile_unrank(rank);
        EXPECT_EQ(nf.payoff(profile, 0), mp.payoff(profile, 0));
        EXPECT_EQ(nf.payoff(profile, 1), mp.payoff(profile, 1));
    }
}

TEST(Extensive, InfoSetConsistencyEnforced) {
    ExtensiveGame g(2);
    (void)g.add_decision(0, "X", {"l", "r"});
    EXPECT_THROW((void)g.add_decision(1, "X", {"l", "r"}), std::invalid_argument);
    EXPECT_THROW((void)g.add_decision(0, "X", {"l"}), std::invalid_argument);
}

}  // namespace
}  // namespace bnash::game
