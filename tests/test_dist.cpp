// Tests for the synchronous network simulator and the Byzantine agreement
// protocols, including failure injection at and beyond the tolerated
// thresholds (E4 in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "dist/byzantine.h"
#include "dist/network.h"

namespace bnash::dist {
namespace {

// ----------------------------------------------------------------- network

// Each process broadcasts its id every round; a process is done after 3.
class ChatterProcess final : public Process {
public:
    explicit ChatterProcess(std::size_t self) : self_(self) {}
    void on_round(std::size_t round, const std::vector<Message>& inbox, Outbox& out) override {
        received_ += inbox.size();
        if (round < 3) out.broadcast("chat", {static_cast<std::uint64_t>(self_)});
        rounds_ = round + 1;
    }
    [[nodiscard]] bool done() const override { return rounds_ >= 4; }
    std::size_t received_ = 0;
    std::size_t rounds_ = 0;

private:
    std::size_t self_;
};

TEST(Network, DeliversNextRound) {
    SynchronousNetwork net(3, 1);
    for (std::size_t i = 0; i < 3; ++i) net.set_process(i, std::make_unique<ChatterProcess>(i));
    const auto metrics = net.run(10);
    EXPECT_EQ(metrics.rounds, 4u);  // 3 chat rounds + the final quiet round
    // 3 rounds * 3 senders * 3 recipients = 27 messages.
    EXPECT_EQ(metrics.messages, 27u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(dynamic_cast<ChatterProcess&>(net.process(i)).received_, 9u);
    }
}

TEST(Network, CrashFaultSilencesProcess) {
    SynchronousNetwork net(3, 1);
    for (std::size_t i = 0; i < 3; ++i) net.set_process(i, std::make_unique<ChatterProcess>(i));
    net.set_fault(0, std::make_unique<CrashFault>(1, 1));  // crashes in round 1, 1 partial send
    const auto metrics = net.run(10);
    // Process 0 sends 3 in round 0, 1 partial in round 1, none later:
    // 3 + 1 + (2 senders * 3 recipients * 3 rounds) = 22.
    EXPECT_EQ(metrics.messages, 22u);
}

TEST(Network, SilentFaultDropsEverything) {
    SynchronousNetwork net(2, 1);
    for (std::size_t i = 0; i < 2; ++i) net.set_process(i, std::make_unique<ChatterProcess>(i));
    net.set_fault(1, std::make_unique<SilentFault>());
    const auto metrics = net.run(10);
    EXPECT_EQ(metrics.messages, 6u);  // only process 0's 3 rounds * 2 recipients
}

TEST(Network, LossyFaultDropsSome) {
    SynchronousNetwork net(2, 7);
    for (std::size_t i = 0; i < 2; ++i) net.set_process(i, std::make_unique<ChatterProcess>(i));
    net.set_fault(0, std::make_unique<LossyFault>(0.5));
    const auto metrics = net.run(10);
    EXPECT_LT(metrics.messages, 12u);
    EXPECT_GT(metrics.messages, 5u);
}

TEST(Network, UnsetProcessThrows) {
    SynchronousNetwork net(2, 1);
    net.set_process(0, std::make_unique<ChatterProcess>(0));
    EXPECT_THROW((void)net.run(1), std::logic_error);
}

// --------------------------------------------------------------------- EIG

std::vector<AdversaryKind> honest(std::size_t n) {
    return std::vector<AdversaryKind>(n, AdversaryKind::kHonest);
}

TEST(Eig, AllHonestAgreeOnMajority) {
    const auto run = run_eig_consensus(1, {1, 1, 1, 0}, honest(4));
    for (const auto& decision : run.decisions) {
        ASSERT_TRUE(decision.has_value());
        EXPECT_EQ(*decision, 1u);
    }
}

TEST(Eig, ValidityWithUnanimousInputs) {
    const auto run = run_eig_consensus(1, {1, 1, 1, 1}, honest(4));
    EXPECT_TRUE(validity_holds(run, {true, true, true, true}, {1, 1, 1, 1}));
}

TEST(Eig, ToleratesOneByzantineWithFourProcesses) {
    // n = 4 > 3t = 3: agreement and validity must hold whatever the traitor does.
    for (const auto kind : {AdversaryKind::kZeroLies, AdversaryKind::kRandomLies,
                            AdversaryKind::kEquivocate, AdversaryKind::kCrash,
                            AdversaryKind::kSilent}) {
        std::vector<AdversaryKind> behaviors = honest(4);
        behaviors[3] = kind;
        const std::vector<bool> is_honest{true, true, true, false};
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const auto run = run_eig_consensus(1, {1, 1, 1, 0}, behaviors, seed);
            EXPECT_TRUE(agreement_holds(run, is_honest)) << "kind " << static_cast<int>(kind);
            EXPECT_TRUE(validity_holds(run, is_honest, {1, 1, 1, 0}));
        }
    }
}

TEST(Eig, ToleratesTwoByzantineWithSevenProcesses) {
    std::vector<AdversaryKind> behaviors = honest(7);
    behaviors[5] = AdversaryKind::kEquivocate;
    behaviors[6] = AdversaryKind::kRandomLies;
    const std::vector<bool> is_honest{true, true, true, true, true, false, false};
    const std::vector<std::uint64_t> inputs{1, 1, 0, 1, 1, 0, 0};
    const auto run = run_eig_consensus(2, inputs, behaviors, 3);
    EXPECT_TRUE(agreement_holds(run, is_honest));
}

TEST(Eig, FailsBeyondThreshold) {
    // n = 3, t = 1 violates n > 3t: the paper's anchor "Byzantine agreement
    // cannot be reached if t >= n/3". A zero-lying traitor against
    // unanimous-1 honest inputs drags the default-0 resolution down,
    // violating validity.
    std::vector<AdversaryKind> behaviors = honest(3);
    behaviors[2] = AdversaryKind::kZeroLies;
    const std::vector<bool> is_honest{true, true, false};
    const auto run = run_eig_consensus(1, {1, 1, 0}, behaviors);
    EXPECT_FALSE(validity_holds(run, is_honest, {1, 1, 0}));
}

TEST(Eig, MessageComplexityGrowsWithRounds) {
    const auto run_t1 = run_eig_consensus(1, {1, 0, 1, 0}, honest(4));
    const auto run_t0 = run_eig_consensus(0, {1, 0, 1}, honest(3));
    EXPECT_GT(run_t1.metrics.payload_words, run_t0.metrics.payload_words);
    EXPECT_EQ(run_t0.metrics.rounds, 2u);  // t+1 send rounds + decision round
    EXPECT_EQ(run_t1.metrics.rounds, 3u);
}

// -------------------------------------------------------------- Phase-King

TEST(PhaseKing, AllHonestAgree) {
    const auto run = run_phase_king(1, {1, 1, 0, 1, 1}, honest(5));
    for (const auto& decision : run.decisions) {
        ASSERT_TRUE(decision.has_value());
        EXPECT_EQ(*decision, 1u);
    }
}

TEST(PhaseKing, ToleratesOneByzantineWithFiveProcesses) {
    // Phase-King requires n > 4t: n = 5, t = 1.
    for (const auto kind : {AdversaryKind::kZeroLies, AdversaryKind::kRandomLies,
                            AdversaryKind::kEquivocate, AdversaryKind::kSilent}) {
        std::vector<AdversaryKind> behaviors = honest(5);
        behaviors[4] = kind;  // a non-king traitor
        const std::vector<bool> is_honest{true, true, true, true, false};
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const auto run = run_phase_king(1, {0, 0, 0, 0, 1}, behaviors, seed);
            EXPECT_TRUE(agreement_holds(run, is_honest)) << "kind " << static_cast<int>(kind);
            EXPECT_TRUE(validity_holds(run, is_honest, {0, 0, 0, 0, 1}));
        }
    }
}

TEST(PhaseKing, ToleratesTraitorKing) {
    // The traitor is king of phase 0; the honest king of phase 1 fixes it.
    std::vector<AdversaryKind> behaviors = honest(5);
    behaviors[0] = AdversaryKind::kEquivocate;
    const std::vector<bool> is_honest{false, true, true, true, true};
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto run = run_phase_king(1, {0, 1, 1, 0, 1}, behaviors, seed);
        EXPECT_TRUE(agreement_holds(run, is_honest));
    }
}

TEST(PhaseKing, PolynomialMessageComplexity) {
    // For the same (n, t), Phase-King sends far fewer payload words than EIG.
    const std::vector<std::uint64_t> inputs{1, 0, 1, 0, 1, 0, 1};
    const auto pk = run_phase_king(2, inputs, honest(7));
    const auto eig = run_eig_consensus(2, inputs, honest(7));
    EXPECT_LT(pk.metrics.payload_words, eig.metrics.payload_words);
}

// ------------------------------------------------------------ Dolev-Strong

TEST(DolevStrong, HonestGeneralBroadcasts) {
    const auto run = run_dolev_strong(1, 0, 1, honest(4));
    for (const auto& decision : run.decisions) {
        ASSERT_TRUE(decision.has_value());
        EXPECT_EQ(*decision, 1u);
    }
}

TEST(DolevStrong, ToleratesEquivocatingGeneral) {
    // A two-faced general cannot split the honest lieutenants: by round
    // t+1 everyone has extracted both values and falls to the default.
    std::vector<AdversaryKind> behaviors = honest(4);
    behaviors[0] = AdversaryKind::kEquivocate;
    const std::vector<bool> is_honest{false, true, true, true};
    const auto run = run_dolev_strong(1, 0, 1, behaviors);
    EXPECT_TRUE(agreement_holds(run, is_honest));
}

TEST(DolevStrong, ToleratesMajorityFaults) {
    // Signatures allow t >= n/3: n = 4, t = 2 with two silent traitors.
    std::vector<AdversaryKind> behaviors = honest(4);
    behaviors[2] = AdversaryKind::kSilent;
    behaviors[3] = AdversaryKind::kSilent;
    const std::vector<bool> is_honest{true, true, false, false};
    const auto run = run_dolev_strong(2, 0, 1, behaviors);
    EXPECT_TRUE(agreement_holds(run, is_honest));
    EXPECT_EQ(*run.decisions[1], 1u);
}

TEST(DolevStrong, EquivocatingGeneralWithHelpersStillAgrees) {
    // General equivocates AND a lieutenant withholds relays: agreement
    // among the rest must still hold (t = 2, 5 processes).
    std::vector<AdversaryKind> behaviors = honest(5);
    behaviors[0] = AdversaryKind::kEquivocate;
    behaviors[1] = AdversaryKind::kSilent;
    const std::vector<bool> is_honest{false, false, true, true, true};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto run = run_dolev_strong(2, 0, 1, behaviors, seed);
        EXPECT_TRUE(agreement_holds(run, is_honest)) << "seed " << seed;
    }
}

TEST(DolevStrong, RoundsAreTplusOne) {
    const auto run = run_dolev_strong(2, 0, 1, honest(5));
    EXPECT_EQ(run.metrics.rounds, 4u);  // rounds 0..t+1
}

// ------------------------------------------------------ asynchrony probe

TEST(Asynchrony, OneDelayedProcessIsAbsorbedByTheFaultBudget) {
    // A single honest-but-late process behaves like a crash; n = 4 > 3t
    // absorbs it.
    std::vector<AdversaryKind> behaviors = honest(4);
    behaviors[3] = AdversaryKind::kDelayed;
    const auto run = run_eig_consensus(1, {1, 1, 1, 1}, behaviors);
    EXPECT_TRUE(validity_holds(run, {true, true, true, true}, {1, 1, 1, 1}));
}

TEST(Asynchrony, DelaysBeyondTheBudgetBreakSynchronousGuarantees) {
    // The paper's closing caveat: the Section 2 results "depend on the
    // system being synchronous". Two honest-but-late processes exceed the
    // t = 1 budget of a 4-process EIG: their messages arrive one round too
    // late, are treated as missing, and validity collapses even though
    // NOBODY is malicious.
    std::vector<AdversaryKind> behaviors = honest(4);
    behaviors[2] = AdversaryKind::kDelayed;
    behaviors[3] = AdversaryKind::kDelayed;
    const auto run = run_eig_consensus(1, {1, 1, 1, 1}, behaviors);
    EXPECT_FALSE(validity_holds(run, {true, true, true, true}, {1, 1, 1, 1}));
}

TEST(Asynchrony, DelayFaultEventuallyDelivers) {
    // DelayFault postpones but never drops: total messages match the
    // no-fault run when the horizon is long enough.
    SynchronousNetwork net(2, 1);
    for (std::size_t i = 0; i < 2; ++i) net.set_process(i, std::make_unique<ChatterProcess>(i));
    net.set_fault(0, std::make_unique<DelayFault>(1));
    const auto metrics = net.run(10);
    EXPECT_EQ(metrics.messages, 12u);  // all 12 eventually flow
}

// Parameterized threshold sweep: EIG must satisfy agreement+validity for
// all (n, t) with n > 3t under every adversary kind at exactly t traitors.
struct ThresholdCase final {
    std::size_t n;
    std::size_t t;
};

class EigThresholdProperty : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(EigThresholdProperty, SafeAboveThreshold) {
    const auto [n, t] = GetParam();
    std::vector<AdversaryKind> behaviors = honest(n);
    std::vector<bool> is_honest(n, true);
    std::vector<std::uint64_t> inputs(n, 1);
    for (std::size_t k = 0; k < t; ++k) {
        behaviors[n - 1 - k] = (k % 2 == 0) ? AdversaryKind::kEquivocate
                                            : AdversaryKind::kRandomLies;
        is_honest[n - 1 - k] = false;
    }
    const auto run = run_eig_consensus(t, inputs, behaviors, 11);
    EXPECT_TRUE(agreement_holds(run, is_honest));
    EXPECT_TRUE(validity_holds(run, is_honest, inputs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EigThresholdProperty,
                         ::testing::Values(ThresholdCase{4, 1}, ThresholdCase{5, 1},
                                           ThresholdCase{6, 1}, ThresholdCase{7, 2},
                                           ThresholdCase{8, 2}),
                         [](const ::testing::TestParamInfo<ThresholdCase>& info) {
                             return "n" + std::to_string(info.param.n) + "t" +
                                    std::to_string(info.param.t);
                         });

// ----------------------------------------------------------- batched EIG

// The pipelined batch must reproduce every instance's standalone
// decisions exactly — the instances only share rounds, not randomness —
// across honest, lying, silent, equivocating and delayed processes.
TEST(BatchEig, DecisionsIdenticalToSequentialRuns) {
    const std::vector<std::vector<AdversaryKind>> behavior_sets = {
        {AdversaryKind::kHonest, AdversaryKind::kHonest, AdversaryKind::kHonest,
         AdversaryKind::kHonest},
        {AdversaryKind::kHonest, AdversaryKind::kRandomLies, AdversaryKind::kHonest,
         AdversaryKind::kHonest},
        {AdversaryKind::kHonest, AdversaryKind::kHonest, AdversaryKind::kSilent,
         AdversaryKind::kHonest},
        {AdversaryKind::kHonest, AdversaryKind::kZeroLies, AdversaryKind::kHonest,
         AdversaryKind::kHonest, AdversaryKind::kHonest},
        {AdversaryKind::kEquivocate, AdversaryKind::kHonest, AdversaryKind::kHonest,
         AdversaryKind::kHonest, AdversaryKind::kHonest},
        {AdversaryKind::kHonest, AdversaryKind::kDelayed, AdversaryKind::kHonest,
         AdversaryKind::kHonest, AdversaryKind::kHonest},
    };
    for (std::size_t set = 0; set < behavior_sets.size(); ++set) {
        const auto& behaviors = behavior_sets[set];
        const std::size_t n = behaviors.size();
        const std::size_t t = 1;
        std::vector<std::vector<std::uint64_t>> inputs;
        std::vector<std::uint64_t> seeds;
        for (std::size_t j = 0; j < 5; ++j) {
            std::vector<std::uint64_t> instance(n, 0);
            for (std::size_t i = 0; i < n; ++i) instance[i] = (j + i) % 2;
            inputs.push_back(std::move(instance));
            seeds.push_back(1000 * set + 7 * j + 1);
        }
        const auto batch = run_eig_consensus_batch(t, inputs, behaviors, seeds);
        ASSERT_EQ(batch.decisions.size(), inputs.size()) << "set " << set;
        std::uint64_t sequential_rounds = 0;
        for (std::size_t j = 0; j < inputs.size(); ++j) {
            const auto solo = run_eig_consensus(t, inputs[j], behaviors, seeds[j]);
            sequential_rounds += solo.metrics.rounds;
            ASSERT_EQ(batch.decisions[j].size(), n) << "set " << set;
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(batch.decisions[j][i], solo.decisions[i])
                    << "set " << set << " instance " << j << " process " << i;
            }
        }
        // The whole batch pays ONE instance's round depth.
        EXPECT_LT(batch.metrics.rounds, sequential_rounds) << "set " << set;
    }
}

TEST(BatchEig, ValidatesShapes) {
    const std::vector<AdversaryKind> behaviors(4, AdversaryKind::kHonest);
    EXPECT_THROW((void)run_eig_consensus_batch(1, {{1, 1, 1, 1}}, behaviors, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)run_eig_consensus_batch(1, {{1, 1}}, behaviors, {1}),
                 std::invalid_argument);
    const auto empty = run_eig_consensus_batch(1, {}, behaviors, {});
    EXPECT_TRUE(empty.decisions.empty());
}

}  // namespace
}  // namespace bnash::dist
