// Randomized cross-validation harness for the batch robustness engine.
//
// Every checker path must return BIT-IDENTICAL verdicts and violation
// witnesses on seeded random games:
//   - the PR-1 serial reference checkers (core::reference),
//   - the CoalitionSweep engine, serial and parallel,
//   - the view-native checkers (identity views, random restrictions, and
//     iterated-elimination reductions — all without a single tensor
//     allocation),
//   - the shared-sweep batch probes (per-k witnesses vs independent
//     probes),
//   - the anonymous-game O(k) checkers vs their to_normal_form() tensor
//     twins on random anonymous payoff tables.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/robust/anonymous.h"
#include "core/robust/coalition_sweep.h"
#include "core/robust/robustness.h"
#include "game/game_view.h"
#include "game/normal_form.h"
#include "solver/iterated_elimination.h"
#include "util/rng.h"

namespace bnash::core {
namespace {

using game::ExactMixedProfile;
using game::GameView;
using game::NormalFormGame;
using game::PureProfile;
using game::SweepMode;
using util::Rational;

NormalFormGame random_rational_game(util::Rng& rng, const std::vector<std::size_t>& counts) {
    NormalFormGame g(counts);
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const auto profile = g.profile_unrank(rank);
        for (std::size_t p = 0; p < counts.size(); ++p) {
            g.set_payoff(profile, p, Rational{rng.next_int(-6, 6), rng.next_int(1, 3)});
        }
    }
    return g;
}

std::vector<std::size_t> random_counts(util::Rng& rng, std::size_t players) {
    std::vector<std::size_t> counts(players);
    for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 3));
    return counts;
}

PureProfile random_pure(util::Rng& rng, const std::vector<std::size_t>& counts) {
    PureProfile out(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        out[i] = static_cast<std::size_t>(
            rng.next_int(0, static_cast<std::int64_t>(counts[i]) - 1));
    }
    return out;
}

ExactMixedProfile random_mixed_exact(util::Rng& rng, const std::vector<std::size_t>& counts) {
    ExactMixedProfile profile(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        game::ExactMixedStrategy s(counts[i], Rational{0});
        std::int64_t total = 0;
        std::vector<std::int64_t> weights(s.size());
        for (auto& w : weights) {
            w = rng.next_int(0, 3);
            total += w;
        }
        if (total == 0) {
            weights[0] = 1;
            total = 1;
        }
        for (std::size_t a = 0; a < s.size(); ++a) s[a] = Rational{weights[a], total};
        profile[i] = std::move(s);
    }
    return profile;
}

void expect_same(const std::optional<RobustnessViolation>& a,
                 const std::optional<RobustnessViolation>& b, const std::string& what) {
    ASSERT_EQ(a.has_value(), b.has_value()) << what;
    if (a && b) {
        EXPECT_TRUE(*a == *b) << what << ": " << a->to_string() << " vs " << b->to_string();
    }
}

// ------------------------------------------------ all checker paths agree

TEST(RobustFuzz, AllCheckerPathsAgreeOnRandomGames) {
    util::Rng rng{20260730};
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        const auto counts = random_counts(rng, n);
        const auto g = random_rational_game(rng, counts);
        // Mostly pure candidates (the fast path); every 5th trial a mixed
        // one to exercise the expected-utility fallback.
        const ExactMixedProfile profile =
            (trial % 5 == 4) ? random_mixed_exact(rng, counts)
                             : as_exact_profile(g, random_pure(rng, counts));
        const std::size_t k = 1 + static_cast<std::size_t>(trial) % n;
        const std::size_t t = static_cast<std::size_t>(trial % 2);
        const auto criterion = (trial % 3 == 0) ? GainCriterion::kAllMembersGain
                                                : GainCriterion::kAnyMemberGains;
        const std::string label = "trial " + std::to_string(trial) + " n=" +
                                  std::to_string(n) + " k=" + std::to_string(k) +
                                  " t=" + std::to_string(t);

        const auto via_reference = reference::find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion});
        const auto via_serial = find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion, SweepMode::kSerial});
        const auto via_parallel = find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion, SweepMode::kAuto});
        expect_same(via_reference, via_serial, label + " reference-vs-serial");
        expect_same(via_reference, via_parallel, label + " reference-vs-parallel");

        // View-native on the identity view: zero tensor allocations.
        const auto view = GameView::full(g);
        const auto allocs_before = NormalFormGame::tensor_allocations();
        const auto via_view_serial = find_robustness_violation(
            view, profile, k, t, RobustnessOptions{criterion, SweepMode::kSerial});
        const auto via_view_parallel = find_robustness_violation(
            view, profile, k, t, RobustnessOptions{criterion, SweepMode::kAuto});
        EXPECT_EQ(NormalFormGame::tensor_allocations(), allocs_before) << label;
        expect_same(via_reference, via_view_serial, label + " reference-vs-view");
        expect_same(via_reference, via_view_parallel, label + " reference-vs-view-parallel");
    }
}

// -------------------------------------- restricted views vs materialized

TEST(RobustFuzz, ViewNativeMatchesMaterializeThenCheckOnRestrictions) {
    util::Rng rng{411};
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 4));
        const auto g = random_rational_game(rng, counts);
        // Random non-empty kept subsets per player.
        std::vector<std::vector<std::size_t>> kept(n);
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t a = 0; a < counts[p]; ++a) {
                if (rng.next_bool(0.6)) kept[p].push_back(a);
            }
            if (kept[p].empty()) {
                kept[p].push_back(static_cast<std::size_t>(
                    rng.next_int(0, static_cast<std::int64_t>(counts[p]) - 1)));
            }
        }
        const auto view = g.restrict_view(kept);
        const auto materialized = view.materialize();
        const auto profile = as_exact_profile(view, random_pure(rng, view.action_counts()));
        const std::size_t k = 1 + static_cast<std::size_t>(trial) % n;
        const std::size_t t = static_cast<std::size_t>(trial % 2);
        const std::string label = "restriction trial " + std::to_string(trial);

        const auto allocs_before = NormalFormGame::tensor_allocations();
        const auto via_view = find_robustness_violation(view, profile, k, t);
        EXPECT_EQ(NormalFormGame::tensor_allocations(), allocs_before) << label;
        const auto via_copy = find_robustness_violation(materialized, profile, k, t);
        expect_same(via_copy, via_view, label);
        EXPECT_EQ(is_kt_robust(materialized, profile, k, t),
                  is_kt_robust(view, profile, k, t))
            << label;
    }
}

TEST(RobustFuzz, EliminationReducedViewChecksWithZeroAllocations) {
    util::Rng rng{877};
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 2);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 4));
        const auto g = random_rational_game(rng, counts);
        const auto by_views =
            solver::iterated_elimination_view(g, solver::DominanceKind::kStrictPure);
        const auto profile =
            as_exact_profile(by_views.reduced, random_pure(rng, by_views.reduced.action_counts()));
        const std::size_t k = 1 + static_cast<std::size_t>(trial) % n;
        const std::size_t t = static_cast<std::size_t>(trial % 2);
        const std::string label = "elimination trial " + std::to_string(trial);

        // Reduce-then-check, all on views: ZERO tensor allocations.
        const auto allocs_before = NormalFormGame::tensor_allocations();
        const auto probe =
            solver::iterated_elimination_view(g, solver::DominanceKind::kStrictPure);
        const bool via_view = is_kt_robust(probe.reduced, profile, k, t);
        EXPECT_EQ(NormalFormGame::tensor_allocations(), allocs_before) << label;

        // Materialize-then-check agrees, witness for witness.
        const auto materialized = by_views.reduced.materialize();
        EXPECT_EQ(is_kt_robust(materialized, profile, k, t), via_view) << label;
        expect_same(find_robustness_violation(materialized, profile, k, t),
                    find_robustness_violation(by_views.reduced, profile, k, t), label);
    }
}

// ----------------------------------------- batch probes vs independent

TEST(RobustFuzz, BatchVerdictsMatchIndependentProbes) {
    util::Rng rng{5519};
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        const auto counts = random_counts(rng, n);
        const auto g = random_rational_game(rng, counts);
        const ExactMixedProfile profile =
            (trial % 7 == 6) ? random_mixed_exact(rng, counts)
                             : as_exact_profile(g, random_pure(rng, counts));
        const auto criterion = (trial % 2 == 0) ? GainCriterion::kAnyMemberGains
                                                : GainCriterion::kAllMembersGain;
        const RobustnessOptions serial{criterion, SweepMode::kSerial};
        const RobustnessOptions parallel{criterion, SweepMode::kAuto};
        const std::string label = "batch trial " + std::to_string(trial);

        const auto batch = batch_resilience(g, profile, n, serial);
        EXPECT_EQ(batch, batch_resilience(g, profile, n, parallel))
            << label << " serial-vs-parallel batch";
        ASSERT_EQ(batch.violations.size(), n) << label;
        std::size_t expected_max_ok = n;
        for (std::size_t k = 1; k <= n; ++k) {
            // The independent probe this k would have run on its own.
            const auto independent = find_resilience_violation(g, profile, k, serial);
            expect_same(independent, batch.violations[k - 1],
                        label + " k=" + std::to_string(k));
            if (independent && expected_max_ok == n) expected_max_ok = k - 1;
        }
        EXPECT_EQ(batch.max_ok, expected_max_ok) << label;
        EXPECT_EQ(max_resilience(g, profile, n, serial), expected_max_ok) << label;

        const std::size_t max_t = n - 1;
        if (max_t > 0) {
            const auto immunity = batch_immunity(g, profile, max_t, SweepMode::kSerial);
            EXPECT_EQ(immunity, batch_immunity(g, profile, max_t, SweepMode::kAuto))
                << label << " immunity serial-vs-parallel";
            std::size_t expected_immunity = max_t;
            for (std::size_t t = 1; t <= max_t; ++t) {
                const auto independent = find_immunity_violation(g, profile, t);
                expect_same(independent, immunity.violations[t - 1],
                            label + " t=" + std::to_string(t));
                if (independent && expected_immunity == max_t) expected_immunity = t - 1;
            }
            EXPECT_EQ(immunity.max_ok, expected_immunity) << label;
            EXPECT_EQ(max_immunity(g, profile, max_t), expected_immunity) << label;
        }
    }
}

// ------------------------------------ frontier batch vs independent grid

TEST(RobustFuzz, FrontierMatchesIndependentProbesOnRandomGames) {
    util::Rng rng{6079};
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        const auto counts = random_counts(rng, n);
        const auto g = random_rational_game(rng, counts);
        // Mixed candidates every 6th trial exercise the serial fallback.
        const ExactMixedProfile profile =
            (trial % 6 == 5) ? random_mixed_exact(rng, counts)
                             : as_exact_profile(g, random_pure(rng, counts));
        const auto criterion = (trial % 2 == 0) ? GainCriterion::kAnyMemberGains
                                                : GainCriterion::kAllMembersGain;
        const std::size_t max_k = n;
        const std::size_t max_t = n - 1;
        const RobustnessOptions serial{criterion, SweepMode::kSerial};
        const RobustnessOptions parallel{criterion, SweepMode::kAuto};
        const std::string label = "frontier trial " + std::to_string(trial);

        const auto frontier = batch_robustness_frontier(g, profile, max_k, max_t, serial);
        EXPECT_EQ(frontier, batch_robustness_frontier(g, profile, max_k, max_t, parallel))
            << label << " serial-vs-parallel";
        ASSERT_EQ(frontier.cells.size(), (max_k + 1) * (max_t + 1)) << label;
        for (std::size_t k = 0; k <= max_k; ++k) {
            for (std::size_t t = 0; t <= max_t; ++t) {
                // The probe this cell would have run on its own.
                const auto independent =
                    find_robustness_violation(g, profile, k, t, serial);
                expect_same(independent, frontier.violation(k, t),
                            label + " k=" + std::to_string(k) + " t=" + std::to_string(t));
                EXPECT_EQ(frontier.robust(k, t), !independent.has_value()) << label;
            }
        }
    }
}

TEST(RobustFuzz, FrontierOnViewsMatchesMaterializedGrid) {
    util::Rng rng{7411};
    for (int trial = 0; trial < 15; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 2);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 4));
        const auto g = random_rational_game(rng, counts);
        std::vector<std::vector<std::size_t>> kept(n);
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t a = 0; a < counts[p]; ++a) {
                if (rng.next_bool(0.6)) kept[p].push_back(a);
            }
            if (kept[p].empty()) {
                kept[p].push_back(static_cast<std::size_t>(
                    rng.next_int(0, static_cast<std::int64_t>(counts[p]) - 1)));
            }
        }
        const auto view = g.restrict_view(kept);
        const auto profile = as_exact_profile(view, random_pure(rng, view.action_counts()));
        const std::string label = "view frontier trial " + std::to_string(trial);

        // Zero-copy frontier on the view == frontier on the materialized
        // subgame, cell for cell.
        const auto allocs_before = NormalFormGame::tensor_allocations();
        const auto via_view = batch_robustness_frontier(view, profile, n, n - 1);
        EXPECT_EQ(NormalFormGame::tensor_allocations(), allocs_before) << label;
        const auto materialized = view.materialize();
        const auto via_copy = batch_robustness_frontier(materialized, profile, n, n - 1);
        EXPECT_EQ(via_view, via_copy) << label;
    }
}

// ------------------------------------------- sparse-support view sweeps

TEST(RobustFuzz, SparseViewSweepsMatchDenseOnRandomRestrictions) {
    util::Rng rng{8317};
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 4));
        const auto g = random_rational_game(rng, counts);
        std::vector<std::vector<std::size_t>> kept(n);
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t a = 0; a < counts[p]; ++a) {
                if (rng.next_bool(0.7)) kept[p].push_back(a);
            }
            if (kept[p].empty()) kept[p].push_back(0);
        }
        const auto view = g.restrict_view(kept);
        // Degenerate single-support (point-mass) profiles every 3rd
        // trial; sparse random supports otherwise.
        ExactMixedProfile profile;
        if (trial % 3 == 0) {
            profile = as_exact_profile(view, random_pure(rng, view.action_counts()));
        } else {
            profile = random_mixed_exact(rng, view.action_counts());
        }
        const std::string label = "sparse view trial " + std::to_string(trial);

        EXPECT_EQ(game::expected_payoffs_exact_sparse(view, profile),
                  game::expected_payoffs_exact(view, profile))
            << label;
        EXPECT_EQ(game::deviation_payoffs_all_exact_sparse(view, profile),
                  game::deviation_payoffs_all_exact(view, profile))
            << label;
        for (std::size_t p = 0; p < n; ++p) {
            EXPECT_EQ(game::expected_payoff_exact_sparse(view, profile, p),
                      game::expected_payoff_exact(view, profile, p))
                << label << " player " << p;
        }
        // Double mirror: bitwise equality (same walk, same block cuts).
        const auto mixed = game::to_double(profile);
        EXPECT_EQ(game::expected_payoffs_sparse(view, mixed),
                  game::expected_payoffs(view, mixed))
            << label;
        EXPECT_EQ(game::deviation_payoffs_all_sparse(view, mixed),
                  game::deviation_payoffs_all(view, mixed))
            << label;
    }
}

// ------------------------- intra-coalition ranged blocks vs serial dense

// Restores the intra-split tuning after a test (the hooks are
// process-wide).
struct IntraSplitGuard final {
    ~IntraSplitGuard() {
        CoalitionSweep::set_intra_split_cells(CoalitionSweep::kDefaultIntraSplitCells);
        CoalitionSweep::set_intra_block_cells(CoalitionSweep::kIntraBlock);
        CoalitionSweep::set_intra_split_force(false);
    }
};

// With the split forced down to toy sizes, every kAuto scan runs the
// ranged-block path (combined faulty+coalition walker, seek() block
// entry, lowest-rank winner) — and must still report the exact violation
// the serial nested scan reports, on ~100 seeded games.
TEST(RobustFuzz, IntraRangedBlockScanBitIdenticalToSerial) {
    const IntraSplitGuard guard;
    CoalitionSweep::set_intra_split_cells(1);
    CoalitionSweep::set_intra_block_cells(4);
    CoalitionSweep::set_intra_split_force(true);
    util::Rng rng{1'290'731};
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 4));
        const auto g = random_rational_game(rng, counts);
        const auto profile = as_exact_profile(g, random_pure(rng, counts));
        const std::size_t k = 1 + static_cast<std::size_t>(trial) % n;
        const std::size_t t = static_cast<std::size_t>(trial % 3) % (n);
        const auto criterion = (trial % 3 == 0) ? GainCriterion::kAllMembersGain
                                                : GainCriterion::kAnyMemberGains;
        const std::string label = "intra trial " + std::to_string(trial);

        const auto serial = find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion, SweepMode::kSerial});
        const auto split = find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion, SweepMode::kAuto});
        expect_same(serial, split, label + " robustness");
        expect_same(find_immunity_violation(g, profile, std::max<std::size_t>(t, 1)),
                    CoalitionSweep(g, profile).immunity_violation(
                        std::max<std::size_t>(t, 1), SweepMode::kAuto),
                    label + " immunity");

        // The batch probes drive the same tasks through the split path.
        const RobustnessOptions serial_opts{criterion, SweepMode::kSerial};
        const RobustnessOptions auto_opts{criterion, SweepMode::kAuto};
        EXPECT_EQ(batch_resilience(g, profile, n, serial_opts),
                  batch_resilience(g, profile, n, auto_opts))
            << label;
        EXPECT_EQ(batch_robustness_frontier(g, profile, n, n - 1, serial_opts),
                  batch_robustness_frontier(g, profile, n, n - 1, auto_opts))
            << label;
    }
}

// A larger coalition-dominated game: one size-4 coalition owns most of
// the scan, so the forced split actually spans many blocks, with the
// violation landing mid-scan or nowhere.
TEST(RobustFuzz, IntraRangedBlocksOnCoalitionDominatedGames) {
    const IntraSplitGuard guard;
    CoalitionSweep::set_intra_split_cells(64);
    CoalitionSweep::set_intra_block_cells(32);
    CoalitionSweep::set_intra_split_force(true);
    util::Rng rng{552'200'731};
    for (int trial = 0; trial < 12; ++trial) {
        const std::vector<std::size_t> counts(4, 5);  // 625-cell top coalition
        const auto g = random_rational_game(rng, counts);
        const auto profile = as_exact_profile(g, random_pure(rng, counts));
        const std::string label = "dominated trial " + std::to_string(trial);
        for (const std::size_t t : {0u, 1u}) {
            const auto serial = find_robustness_violation(
                g, profile, 4, t,
                RobustnessOptions{GainCriterion::kAnyMemberGains, SweepMode::kSerial});
            const auto split = find_robustness_violation(
                g, profile, 4, t,
                RobustnessOptions{GainCriterion::kAnyMemberGains, SweepMode::kAuto});
            expect_same(serial, split, label + " t=" + std::to_string(t));
        }
    }
}

// --------------------------- sparse coalition scans vs reference checkers

// Mixed candidates now run ONE fused support walk per faulty set instead
// of one expected sweep per evaluation; exact arithmetic must make every
// verdict and witness identical to the PR-1 reference. Profiles include
// degenerate nearly-point-mass shapes (every support size 1 except one
// player) — the sparsest plans the scans can see.
TEST(RobustFuzz, SparseCoalitionScansMatchReferenceOnMixedCandidates) {
    util::Rng rng{88'220'731};
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 3));
        const auto g = random_rational_game(rng, counts);
        ExactMixedProfile profile;
        if (trial % 3 == 0) {
            // Degenerate single-support except one genuinely mixed player
            // (a full point mass would take the pure fast path instead).
            const auto pure = random_pure(rng, counts);
            profile = as_exact_profile(g, pure);
            const std::size_t mixer = static_cast<std::size_t>(trial) % n;
            game::ExactMixedStrategy s(counts[mixer], Rational{0});
            s[0] = Rational{1, 3};
            s[counts[mixer] - 1] += Rational{2, 3};
            profile[mixer] = std::move(s);
        } else {
            profile = random_mixed_exact(rng, counts);
        }
        const std::size_t k = 1 + static_cast<std::size_t>(trial) % n;
        const std::size_t t = static_cast<std::size_t>(trial % 2);
        const auto criterion = (trial % 2 == 0) ? GainCriterion::kAnyMemberGains
                                                : GainCriterion::kAllMembersGain;
        const std::string label = "sparse scan trial " + std::to_string(trial);

        const auto via_reference = reference::find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion});
        const auto via_sparse = find_robustness_violation(
            g, profile, k, t, RobustnessOptions{criterion, SweepMode::kAuto});
        expect_same(via_reference, via_sparse, label);
        expect_same(reference::find_immunity_violation(g, profile, std::max<std::size_t>(t, 1)),
                    find_immunity_violation(g, profile, std::max<std::size_t>(t, 1)),
                    label + " immunity");
    }
}

// --------------------------------------- max_kt boundary walk vs frontier

TEST(RobustFuzz, MaxKtMatchesFrontierOnRandomGames) {
    util::Rng rng{40'220'731};
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
        const auto counts = random_counts(rng, n);
        const auto g = random_rational_game(rng, counts);
        // Mixed candidates every 6th trial drive the sparse scans.
        const ExactMixedProfile profile =
            (trial % 6 == 5) ? random_mixed_exact(rng, counts)
                             : as_exact_profile(g, random_pure(rng, counts));
        const auto criterion = (trial % 2 == 0) ? GainCriterion::kAnyMemberGains
                                                : GainCriterion::kAllMembersGain;
        const std::size_t max_k = n;
        const std::size_t max_t = n - 1;
        const RobustnessOptions serial{criterion, SweepMode::kSerial};
        const RobustnessOptions parallel{criterion, SweepMode::kAuto};
        const std::string label = "max_kt trial " + std::to_string(trial);

        const auto walk = max_kt(g, profile, max_k, max_t, serial);
        EXPECT_EQ(walk, max_kt(g, profile, max_k, max_t, parallel))
            << label << " serial-vs-parallel";
        const auto frontier = batch_robustness_frontier(g, profile, max_k, max_t, serial);
        ASSERT_EQ(walk.k_of_t.size(), walk.immunity_ok + 1) << label;
        for (std::size_t k = 0; k <= max_k; ++k) {
            for (std::size_t t = 0; t <= max_t; ++t) {
                EXPECT_EQ(walk.robust(k, t), frontier.robust(k, t))
                    << label << " cell k=" << k << " t=" << t;
            }
        }
        // The maximal set IS the Pareto frontier of the grid.
        for (const auto& [k, t] : walk.maximal) {
            EXPECT_TRUE(frontier.robust(k, t)) << label;
            if (k < max_k) EXPECT_FALSE(frontier.robust(k + 1, t)) << label;
            if (t < max_t) EXPECT_FALSE(frontier.robust(k, t + 1)) << label;
        }
        EXPECT_LE(walk.cells_resolved, (max_k + 1) * (max_t + 1)) << label;

        // Zero-copy view overload agrees with the materialized walk.
        if (trial % 4 == 0) {
            const auto view = GameView::full(g);
            const auto allocs_before = NormalFormGame::tensor_allocations();
            const auto via_view = max_kt(view, profile, max_k, max_t, serial);
            EXPECT_EQ(NormalFormGame::tensor_allocations(), allocs_before) << label;
            EXPECT_EQ(via_view, walk) << label << " view-vs-dense";
        }
    }
}

// -------------------------------------- anonymous games vs tensor twins

TEST(RobustFuzz, AnonymousCheckersMatchTensorTwinOnRandomTables) {
    util::Rng rng{90127};
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(trial % 3);
        // Random anonymous payoff table: payoff(action, total_ones).
        std::vector<std::vector<Rational>> table(2, std::vector<Rational>(n + 1));
        for (std::size_t a = 0; a < 2; ++a) {
            for (std::size_t ones = 0; ones <= n; ++ones) {
                table[a][ones] = Rational{rng.next_int(-4, 4)};
            }
        }
        const auto fast = AnonymousBinaryGame::from_table(table);
        ASSERT_EQ(fast.num_players(), n);
        const auto twin = fast.to_normal_form();
        const std::size_t base = static_cast<std::size_t>(trial % 2);
        const auto all_base = as_exact_profile(twin, PureProfile(n, base));
        const std::string label =
            "anonymous trial " + std::to_string(trial) + " base=" + std::to_string(base);

        for (std::size_t k = 1; k <= n; ++k) {
            for (const auto criterion :
                 {GainCriterion::kAnyMemberGains, GainCriterion::kAllMembersGain}) {
                EXPECT_EQ(fast.all_base_is_k_resilient(base, k, criterion),
                          is_k_resilient(twin, all_base, k, RobustnessOptions{criterion}))
                    << label << " k=" << k;
            }
        }
        for (std::size_t t = 1; t < n; ++t) {
            EXPECT_EQ(fast.all_base_is_t_immune(base, t), is_t_immune(twin, all_base, t))
                << label << " t=" << t;
        }
        // The O(max_t) anonymous immunity boundary == the tensor twin's
        // shared-sweep batch boundary.
        EXPECT_EQ(fast.max_immunity(base, n - 1), batch_immunity(twin, all_base, n - 1).max_ok)
            << label;
        EXPECT_EQ(fast.max_immunity(base, n - 1), max_immunity(twin, all_base, n - 1))
            << label;
        // The twin really is the anonymous game cell for cell.
        for (std::uint64_t rank = 0; rank < twin.num_profiles(); ++rank) {
            const auto profile = twin.profile_unrank(rank);
            std::size_t ones = 0;
            for (const std::size_t a : profile) ones += a;
            for (std::size_t p = 0; p < n; ++p) {
                ASSERT_EQ(twin.payoff_at(rank, p), table[profile[p]][ones]) << label;
            }
        }
    }
}

TEST(RobustFuzz, AnonymousPooledLargeNMatchesSerialScan) {
    // The pooled (c, j) pair scan must return the same verdicts and
    // boundaries as the serial closed-form scan — which the tensor-twin
    // test above already pins to the exact checkers at small n, so the
    // chain serial-twin + serial-pooled covers the pooled path. n is
    // large enough that kAuto actually crosses kPooledWorkThreshold.
    util::Rng rng{31337};
    const std::size_t n = 200;
    ASSERT_GE(static_cast<std::uint64_t>(n) * (n + 1) / 2,
              AnonymousBinaryGame::kPooledWorkThreshold);
    for (int trial = 0; trial < 12; ++trial) {
        std::vector<std::vector<Rational>> table(2, std::vector<Rational>(n + 1));
        for (std::size_t a = 0; a < 2; ++a) {
            for (std::size_t ones = 0; ones <= n; ++ones) {
                table[a][ones] = Rational{rng.next_int(-5, 5)};
            }
        }
        const auto g = AnonymousBinaryGame::from_table(table);
        const std::size_t base = static_cast<std::size_t>(trial % 2);
        const std::string label = "pooled trial " + std::to_string(trial);
        for (const auto criterion :
             {GainCriterion::kAnyMemberGains, GainCriterion::kAllMembersGain}) {
            EXPECT_EQ(g.all_base_is_k_resilient(base, n, criterion, SweepMode::kSerial),
                      g.all_base_is_k_resilient(base, n, criterion, SweepMode::kAuto))
                << label;
        }
        EXPECT_EQ(g.min_breaking_coalition(base, n, SweepMode::kSerial),
                  g.min_breaking_coalition(base, n, SweepMode::kAuto))
            << label;
        EXPECT_EQ(g.all_base_is_t_immune(base, n - 1, SweepMode::kSerial),
                  g.all_base_is_t_immune(base, n - 1, SweepMode::kAuto))
            << label;
        EXPECT_EQ(g.max_immunity(base, n - 1, SweepMode::kSerial),
                  g.max_immunity(base, n - 1, SweepMode::kAuto))
            << label;
    }
    // The paper's games at large n keep their known closed-form answers
    // through the pooled path.
    const auto attack = AnonymousBinaryGame::attack(5000);
    EXPECT_EQ(attack.min_breaking_coalition(0, 5000, SweepMode::kAuto), 2u);
    // One faulty attacker hurts every bystander: not even 1-immune.
    EXPECT_FALSE(attack.all_base_is_t_immune(0, 1, SweepMode::kAuto));
    EXPECT_EQ(attack.max_immunity(0, 4999, SweepMode::kAuto), 0u);
    const auto bargaining = AnonymousBinaryGame::bargaining(5000);
    EXPECT_TRUE(bargaining.all_base_is_k_resilient(0, 5000, GainCriterion::kAnyMemberGains,
                                                   SweepMode::kAuto));
    EXPECT_EQ(bargaining.max_immunity(0, 4999, SweepMode::kAuto), 0u);
}

}  // namespace
}  // namespace bnash::core
