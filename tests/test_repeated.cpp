// Tests for repeated games: strategy automata, matches, meta-games (the
// FRPD analysis of Example 3.2 without complexity costs), and the Axelrod
// tournament (E13).
#include <gtest/gtest.h>

#include <algorithm>

#include "game/catalog.h"
#include "repeated/repeated_game.h"
#include "repeated/strategies.h"
#include "solver/verification.h"
#include "util/rng.h"

namespace bnash::repeated {
namespace {

using game::catalog::prisoners_dilemma;

// -------------------------------------------------------------- strategies

TEST(Strategies, TitForTatMirrorsOpponent) {
    auto tft = tit_for_tat();
    util::Rng rng{1};
    tft->reset();
    EXPECT_EQ(tft->act(0, 0, rng), kCooperate);
    EXPECT_EQ(tft->act(1, kDefect, rng), kDefect);
    EXPECT_EQ(tft->act(2, kCooperate, rng), kCooperate);
}

TEST(Strategies, GrimNeverForgives) {
    auto grim = grim_trigger();
    util::Rng rng{1};
    grim->reset();
    EXPECT_EQ(grim->act(0, 0, rng), kCooperate);
    EXPECT_EQ(grim->act(1, kDefect, rng), kDefect);
    EXPECT_EQ(grim->act(2, kCooperate, rng), kDefect);  // still punishing
}

TEST(Strategies, PavlovWinStayLoseShift) {
    auto p = pavlov();
    util::Rng rng{1};
    p->reset();
    EXPECT_EQ(p->act(0, 0, rng), kCooperate);
    EXPECT_EQ(p->act(1, kCooperate, rng), kCooperate);  // win: stay
    EXPECT_EQ(p->act(2, kDefect, rng), kDefect);        // lose: shift
    EXPECT_EQ(p->act(3, kDefect, rng), kCooperate);     // lose again: shift back
}

TEST(Strategies, TftDefectLastDefectsAtHorizon) {
    auto s = tft_defect_last(5);
    util::Rng rng{1};
    s->reset();
    EXPECT_EQ(s->act(0, 0, rng), kCooperate);
    EXPECT_EQ(s->act(3, kCooperate, rng), kCooperate);
    EXPECT_EQ(s->act(4, kCooperate, rng), kDefect);  // last round
}

TEST(Strategies, ComplexityProfiles) {
    // Reacting to the per-round observation is free; only persistent
    // state is charged (see StrategyComplexity's contract).
    EXPECT_EQ(tit_for_tat()->complexity().memory_bits, 0u);
    EXPECT_EQ(grim_trigger()->complexity().memory_bits, 1u);
    EXPECT_EQ(always_defect()->complexity().memory_bits, 0u);
    EXPECT_TRUE(random_strategy(0.5)->complexity().randomized);
    // The round counter is the Example 3.2 "extra memory": log2(N) bits.
    EXPECT_EQ(tft_defect_last(64)->complexity().memory_bits, 6u);
    EXPECT_GT(tft_defect_last(64)->complexity().states,
              tit_for_tat()->complexity().states);
}

// ------------------------------------------------------------------ matches

TEST(Match, TftVsTftCooperatesThroughout) {
    RepeatedGame frpd(prisoners_dilemma(), 10);
    util::Rng rng{1};
    auto a = tit_for_tat();
    auto b = tit_for_tat();
    const auto result = frpd.play(*a, *b, rng);
    EXPECT_TRUE(std::all_of(result.actions0.begin(), result.actions0.end(),
                            [](std::size_t x) { return x == kCooperate; }));
    EXPECT_DOUBLE_EQ(result.payoff0, 30.0);  // 10 rounds x 3, undiscounted
    EXPECT_DOUBLE_EQ(result.payoff1, 30.0);
}

TEST(Match, AllDExploitsAllC) {
    RepeatedGame frpd(prisoners_dilemma(), 4);
    util::Rng rng{1};
    auto d = always_defect();
    auto c = always_cooperate();
    const auto result = frpd.play(*d, *c, rng);
    EXPECT_DOUBLE_EQ(result.payoff0, 20.0);   // 4 x 5
    EXPECT_DOUBLE_EQ(result.payoff1, -20.0);  // 4 x -5
}

TEST(Match, DiscountingWeightsEarlyRounds) {
    // delta = 1/2; TfT vs TfT earns 3 * (0.5 + 0.25 + 0.125) = 2.625.
    RepeatedGame frpd(prisoners_dilemma(), 3, 0.5);
    util::Rng rng{1};
    auto a = tit_for_tat();
    auto b = tit_for_tat();
    const auto result = frpd.play(*a, *b, rng);
    EXPECT_NEAR(result.payoff0, 2.625, 1e-12);
}

TEST(Match, TftVsDefectLastLosesOnlyFinalRound) {
    RepeatedGame frpd(prisoners_dilemma(), 10);
    util::Rng rng{1};
    auto tft = tit_for_tat();
    auto sneak = tft_defect_last(10);
    const auto result = frpd.play(*tft, *sneak, rng);
    // 9 mutual cooperations, then (C, D): 27 - 5 = 22 vs 27 + 5 = 32.
    EXPECT_DOUBLE_EQ(result.payoff0, 22.0);
    EXPECT_DOUBLE_EQ(result.payoff1, 32.0);
}

TEST(Match, NoiseChangesPlay) {
    RepeatedGame frpd(prisoners_dilemma(), 50);
    util::Rng rng{7};
    auto a = always_cooperate();
    auto b = always_cooperate();
    const auto result = frpd.play(*a, *b, rng, 0.2);
    // With 20% trembles some defections must appear.
    const auto defections =
        std::count(result.actions0.begin(), result.actions0.end(), kDefect) +
        std::count(result.actions1.begin(), result.actions1.end(), kDefect);
    EXPECT_GT(defections, 0);
}

// ----------------------------------------------------------------- meta-game

TEST(MetaGame, AllDAllDIsNashAmongClassicPureStrategies) {
    // The backward-induction fact: always-defect is an equilibrium of FRPD.
    RepeatedGame frpd(prisoners_dilemma(), 10);
    std::vector<std::unique_ptr<Strategy>> set;
    set.push_back(always_cooperate());  // 0
    set.push_back(always_defect());     // 1
    set.push_back(tit_for_tat());       // 2
    set.push_back(grim_trigger());      // 3
    const auto meta = frpd.meta_game(set);
    EXPECT_TRUE(solver::is_pure_nash(meta, {1, 1}));
}

TEST(MetaGame, TftTftIsNashUntilTheSneakArrives) {
    // Within {AllC, AllD, TfT, Grim}, (TfT, TfT) is an equilibrium; adding
    // "TfT but defect at the last round" (free of charge) destroys it --
    // exactly the deviation Example 3.2 prices with memory costs.
    RepeatedGame frpd(prisoners_dilemma(), 10);
    std::vector<std::unique_ptr<Strategy>> set;
    set.push_back(always_cooperate());
    set.push_back(always_defect());
    set.push_back(tit_for_tat());  // index 2
    set.push_back(grim_trigger());
    const auto meta = frpd.meta_game(set);
    EXPECT_TRUE(solver::is_pure_nash(meta, {2, 2}));

    std::vector<std::unique_ptr<Strategy>> with_sneak;
    with_sneak.push_back(always_cooperate());
    with_sneak.push_back(always_defect());
    with_sneak.push_back(tit_for_tat());  // index 2
    with_sneak.push_back(grim_trigger());
    with_sneak.push_back(tft_defect_last(10));  // index 4
    const auto meta2 = frpd.meta_game(with_sneak);
    EXPECT_FALSE(solver::is_pure_nash(meta2, {2, 2}));
    // The profitable deviation is precisely the sneak.
    EXPECT_GT(meta2.payoff_d({2, 4}, 1), meta2.payoff_d({2, 2}, 1));
}

TEST(MetaGame, RejectsRandomizedStrategies) {
    RepeatedGame frpd(prisoners_dilemma(), 5);
    std::vector<std::unique_ptr<Strategy>> set;
    set.push_back(random_strategy(0.5));
    EXPECT_THROW((void)frpd.meta_game(set), std::invalid_argument);
}

// ---------------------------------------------------------------- tournament

TEST(Tournament, TftFinishesAheadOfAllD) {
    // "Tit-for-tat does exceedingly well in FRPD tournaments" [Axelrod].
    TournamentOptions options;
    options.rounds = 200;
    options.trials = 3;
    const auto entries = round_robin(prisoners_dilemma(), classic_lineup(), options);
    const auto rank_of = [&](const std::string& name) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].name == name) return i;
        }
        return entries.size();
    };
    EXPECT_LT(rank_of("TitForTat"), rank_of("AllD"));
    EXPECT_LT(rank_of("TitForTat"), rank_of("Random"));
}

TEST(Tournament, DeterministicUnderSeed) {
    TournamentOptions options;
    options.rounds = 100;
    const auto a = round_robin(prisoners_dilemma(), classic_lineup(), options);
    const auto b = round_robin(prisoners_dilemma(), classic_lineup(), options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].total_score, b[i].total_score);
    }
}

TEST(Tournament, ScoresAreSorted) {
    const auto entries = round_robin(prisoners_dilemma(), classic_lineup());
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GE(entries[i - 1].total_score, entries[i].total_score);
    }
}

// Property: in any deterministic lineup meta-game, every payoff pair is
// reproduced by replaying the match (consistency of meta_game and play).
class MetaGameConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetaGameConsistency, MetaPayoffsMatchReplayedMatches) {
    const std::size_t rounds = GetParam();
    RepeatedGame frpd(prisoners_dilemma(), rounds);
    std::vector<std::unique_ptr<Strategy>> set;
    set.push_back(always_cooperate());
    set.push_back(always_defect());
    set.push_back(tit_for_tat());
    set.push_back(grim_trigger());
    set.push_back(pavlov());
    const auto meta = frpd.meta_game(set);
    util::Rng rng{1};
    for (std::size_t i = 0; i < set.size(); ++i) {
        for (std::size_t j = 0; j < set.size(); ++j) {
            const auto s0 = set[i]->clone();
            const auto s1 = set[j]->clone();
            const auto match = frpd.play(*s0, *s1, rng);
            EXPECT_NEAR(meta.payoff_d({i, j}, 0), match.payoff0, 1e-9);
            EXPECT_NEAR(meta.payoff_d({i, j}, 1), match.payoff1, 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Horizons, MetaGameConsistency, ::testing::Values(2, 5, 10, 25));

}  // namespace
}  // namespace bnash::repeated
