// util::ExecutionGrant and its threading through the sweep kernels: state
// latching, pool propagation, BNASH_THREADS sizing, bounded budget
// overshoot, and the soundness contract — every cell a budget-limited
// batch_robustness_frontier / max_kt / batch probe RESOLVES is
// bit-identical to the unbudgeted run's, and everything else is
// explicitly kUnknown.
//
// This binary pins BNASH_THREADS=4 (before the lazily-constructed
// util::global_pool() first runs) so the parallel grant paths execute
// even on single-core CI hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/robust/anonymous.h"
#include "core/robust/coalition_sweep.h"
#include "core/robust/orbit_sweep.h"
#include "core/robust/robustness.h"
#include "game/catalog.h"
#include "game/normal_form.h"
#include "game/payoff_engine.h"
#include "util/execution_grant.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/work_counters.h"

namespace bnash {
namespace {

using core::BatchVerdict;
using core::CellVerdict;
using core::CoalitionSweep;
using core::FrontierVerdict;
using core::GainCriterion;
using core::MaxKtResult;
using core::RobustnessOptions;
using game::ExactMixedProfile;
using game::NormalFormGame;
using game::PureProfile;
using game::SweepMode;
using util::ExecutionGrant;
using util::GrantScope;
using util::GrantState;

// Runs before main(), i.e. before the first global_pool() construction.
const bool kEnvPinned = [] {
    ::setenv("BNASH_THREADS", "4", 1);
    return true;
}();

// ----------------------------------------------------------- grant basics

TEST(ExecutionGrant, UnlimitedByDefault) {
    ExecutionGrant grant;
    EXPECT_EQ(grant.state(), GrantState::kLive);
    grant.charge(~std::uint64_t{0} / 2);
    EXPECT_FALSE(grant.expired());
}

TEST(ExecutionGrant, BudgetExhaustionLatches) {
    ExecutionGrant grant = ExecutionGrant::with_budget(100);
    grant.charge(99);
    EXPECT_EQ(grant.state(), GrantState::kLive);
    grant.charge(1);
    EXPECT_EQ(grant.state(), GrantState::kBudgetExhausted);
    // Monotone: a later cancel does not change the latched reason.
    grant.cancel();
    EXPECT_EQ(grant.state(), GrantState::kBudgetExhausted);
    EXPECT_EQ(grant.charged(), 100u);
}

TEST(ExecutionGrant, CancelLatchesFirst) {
    ExecutionGrant grant = ExecutionGrant::with_budget(1);
    grant.cancel();
    EXPECT_EQ(grant.state(), GrantState::kCancelled);
    grant.charge(10);
    EXPECT_EQ(grant.state(), GrantState::kCancelled);
}

TEST(ExecutionGrant, DeadlineExpires) {
    ExecutionGrant grant = ExecutionGrant::with_deadline(std::chrono::nanoseconds{0});
    EXPECT_EQ(grant.state(), GrantState::kDeadlineExpired);
    ExecutionGrant far = ExecutionGrant::with_deadline(std::chrono::hours{24});
    EXPECT_FALSE(far.expired());
}

TEST(ExecutionGrant, ToStringCoversStates) {
    EXPECT_STREQ(util::to_string(GrantState::kLive), "live");
    EXPECT_NE(std::string(util::to_string(GrantState::kCancelled)),
              std::string(util::to_string(GrantState::kBudgetExhausted)));
}

TEST(GrantScope, NestsAndRestores) {
    EXPECT_EQ(util::active_grant(), nullptr);
    ExecutionGrant outer;
    ExecutionGrant inner;
    {
        GrantScope scope_outer(&outer);
        EXPECT_EQ(util::active_grant(), &outer);
        {
            GrantScope scope_inner(&inner);
            EXPECT_EQ(util::active_grant(), &inner);
        }
        EXPECT_EQ(util::active_grant(), &outer);
    }
    EXPECT_EQ(util::active_grant(), nullptr);
}

TEST(GrantScope, WorkCountersChargeActiveGrant) {
    ExecutionGrant grant = ExecutionGrant::with_budget(50);
    {
        GrantScope scope(&grant);
        util::work_counters_add(30, 7);
        EXPECT_EQ(grant.charged(), 30u);
        EXPECT_FALSE(grant.expired());
        util::work_counters_add(30, 0);
    }
    EXPECT_EQ(grant.charged(), 60u);
    EXPECT_EQ(grant.state(), GrantState::kBudgetExhausted);
    // Outside any scope, adds charge nobody.
    util::work_counters_add(10, 0);
    EXPECT_EQ(grant.charged(), 60u);
}

// ----------------------------------------------------- pool sizing + gating

TEST(ThreadPool, PoolWorkersForDefaultsToCores) {
    EXPECT_EQ(util::pool_workers_for(8, nullptr), 7u);
    EXPECT_EQ(util::pool_workers_for(1, nullptr), 0u);
    EXPECT_EQ(util::pool_workers_for(0, nullptr), 0u);
    EXPECT_EQ(util::pool_workers_for(64, nullptr), 15u);  // capped default
}

TEST(ThreadPool, PoolWorkersForEnvOverride) {
    EXPECT_EQ(util::pool_workers_for(8, "1"), 0u);   // 1 executor: submitter only
    EXPECT_EQ(util::pool_workers_for(8, "4"), 3u);   // 4 executors total
    EXPECT_EQ(util::pool_workers_for(2, "32"), 31u);  // env wins over hardware
    EXPECT_EQ(util::pool_workers_for(8, "999"), 63u);  // clamped to 64 executors
}

TEST(ThreadPool, PoolWorkersForRejectsMalformedEnv) {
    EXPECT_EQ(util::pool_workers_for(8, ""), 7u);
    EXPECT_EQ(util::pool_workers_for(8, "abc"), 7u);
    EXPECT_EQ(util::pool_workers_for(8, "4x"), 7u);
    EXPECT_EQ(util::pool_workers_for(8, "0"), 7u);
    EXPECT_EQ(util::pool_workers_for(8, "-3"), 7u);
}

TEST(ThreadPool, GlobalPoolHonorsBnashThreads) {
    // kEnvPinned set BNASH_THREADS=4 before the pool existed.
    ASSERT_TRUE(kEnvPinned);
    EXPECT_EQ(util::global_pool().size(), 4u);
}

TEST(ThreadPool, ExpiredGrantSkipsAllBlocks) {
    ExecutionGrant grant;
    grant.cancel();
    GrantScope scope(&grant);
    std::atomic<int> ran{0};
    util::global_pool().run_blocks(64, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, GrantPropagatesToWorkerBlocks) {
    ExecutionGrant grant;
    GrantScope scope(&grant);
    std::atomic<int> with_grant{0};
    util::global_pool().run_blocks(64, [&](std::size_t) {
        if (util::active_grant() == &grant) with_grant.fetch_add(1);
    });
    EXPECT_EQ(with_grant.load(), 64);
}

TEST(ThreadPool, MidJobCancelStopsWithinInFlightBlocks) {
    ExecutionGrant grant;
    GrantScope scope(&grant);
    std::atomic<int> ran{0};
    util::global_pool().run_blocks(256, [&](std::size_t block) {
        ran.fetch_add(1);
        if (block == 0) grant.cancel();
    });
    // Every executor checks the grant before each block, so after the
    // cancel at most the blocks already in flight (one per executor) run.
    EXPECT_LE(ran.load(), static_cast<int>(util::global_pool().size()) + 1);
    EXPECT_EQ(grant.state(), GrantState::kCancelled);
}

// ------------------------------------------------- accounting + overshoot

TEST(GrantAccounting, UnlimitedGrantPreservesCounterTotals) {
    util::Rng rng(11);
    const NormalFormGame game = NormalFormGame::random({3, 3, 3}, rng, -4, 4);
    const auto profile = core::as_exact_profile(game, PureProfile(3, 0));
    const RobustnessOptions options{GainCriterion::kAnyMemberGains, SweepMode::kSerial};

    const util::WorkCounters before_bare = util::work_counters_snapshot();
    const FrontierVerdict bare = core::batch_robustness_frontier(game, profile, 2, 2, options);
    const util::WorkCounters after_bare = util::work_counters_snapshot();

    ExecutionGrant grant;
    FrontierVerdict granted;
    {
        GrantScope scope(&grant);
        granted = core::batch_robustness_frontier(game, profile, 2, 2, options);
    }
    const util::WorkCounters after_granted = util::work_counters_snapshot();

    EXPECT_TRUE(granted == bare);
    // Grant integration must not change what the counters tally...
    EXPECT_EQ(after_bare.cells_visited - before_bare.cells_visited,
              after_granted.cells_visited - after_bare.cells_visited);
    EXPECT_EQ(after_bare.offsets_advanced - before_bare.offsets_advanced,
              after_granted.offsets_advanced - after_bare.offsets_advanced);
    // ...and the grant is billed exactly the cells the counters saw.
    EXPECT_EQ(grant.charged(), after_granted.cells_visited - after_bare.cells_visited);
}

TEST(GrantAccounting, SerialBudgetOvershootIsOneCheckpoint) {
    // All-zero payoffs: the candidate is (k,t)-robust for every (k,t), so
    // no early violation exit ever shortcuts the sweep and the frontier
    // pays its full exhaustive cost.
    const NormalFormGame game(std::vector<std::size_t>(5, 3));
    const auto profile = core::as_exact_profile(game, PureProfile(5, 0));
    const RobustnessOptions options{GainCriterion::kAnyMemberGains, SweepMode::kSerial};

    std::uint64_t full_cost = 0;
    {
        ExecutionGrant unlimited;
        GrantScope scope(&unlimited);
        (void)core::batch_robustness_frontier(game, profile, 3, 2, options);
        full_cost = unlimited.charged();
    }
    ASSERT_GT(full_cost, 8192u) << "game too small to exercise truncation";

    const std::uint64_t budget = full_cost / 8;
    ExecutionGrant grant = ExecutionGrant::with_budget(budget);
    FrontierVerdict part;
    {
        GrantScope scope(&grant);
        part = core::batch_robustness_frontier(game, profile, 3, 2, options);
    }
    EXPECT_EQ(grant.state(), GrantState::kBudgetExhausted);
    EXPECT_FALSE(part.complete());
    // A serial sweep polls the grant every <= 2048 charged cells (and
    // before every block/task), so the overshoot is bounded by one
    // checkpoint chunk plus one trailing partial flush.
    EXPECT_LE(grant.charged(), budget + 4096u);
    EXPECT_LT(grant.charged(), full_cost);
}

// ------------------------------------------------------- soundness fuzzing

ExactMixedProfile fuzz_profile(const NormalFormGame& game, util::Rng& rng,
                               bool mixed) {
    ExactMixedProfile profile(game.num_players());
    for (std::size_t player = 0; player < game.num_players(); ++player) {
        const std::size_t actions = game.num_actions(player);
        profile[player].assign(actions, util::Rational(0));
        if (mixed && player == 0 && actions > 1) {
            for (std::size_t a = 0; a < actions; ++a) {
                profile[player][a] =
                    util::Rational(1, static_cast<std::int64_t>(actions));
            }
        } else {
            profile[player][static_cast<std::size_t>(rng.next_below(actions))] = util::Rational(1);
        }
    }
    return profile;
}

// The serving contract, fuzzed over ~100 seeded games, four budgets, both
// sweep modes, and the intra-split path: a grant-limited run may leave
// cells kUnknown but every cell it RESOLVES — verdict and stored witness
// — matches the unbudgeted run bit for bit.
TEST(GrantFuzz, BudgetedResultsAreSoundPrefixes) {
    util::Rng rng(20260807);
    const std::size_t kGames = 100;
    const std::size_t max_k = 2;
    const std::size_t max_t = 2;
    const std::uint64_t saved_split = CoalitionSweep::intra_split_cells();
    const std::uint64_t saved_block = CoalitionSweep::intra_block_cells();
    for (std::size_t trial = 0; trial < kGames; ++trial) {
        std::vector<std::size_t> counts(3, 0);
        for (auto& count : counts) count = 2 + static_cast<std::size_t>(rng.next_below(2));
        const NormalFormGame game = NormalFormGame::random(counts, rng, -4, 4);
        const ExactMixedProfile profile = fuzz_profile(game, rng, trial % 3 == 0);
        const GainCriterion criterion =
            trial % 5 == 0 ? GainCriterion::kAllMembersGain : GainCriterion::kAnyMemberGains;
        const SweepMode mode = trial % 2 == 0 ? SweepMode::kSerial : SweepMode::kAuto;
        const RobustnessOptions options{criterion, mode};
        const bool force_split = trial % 4 == 0;
        if (force_split) {
            CoalitionSweep::set_intra_split_cells(4);
            CoalitionSweep::set_intra_block_cells(2);
            CoalitionSweep::set_intra_split_force(true);
        }

        const FrontierVerdict full = core::batch_robustness_frontier(
            game, profile, max_k, max_t, {criterion, SweepMode::kSerial});
        const BatchVerdict full_res = core::batch_resilience(game, profile, max_k, options);
        const BatchVerdict full_imm = core::batch_immunity(game, profile, max_t, mode);
        const MaxKtResult full_walk = core::max_kt(game, profile, max_k, max_t, options);

        for (const std::uint64_t budget : {std::uint64_t{1}, std::uint64_t{9},
                                           std::uint64_t{60}, std::uint64_t{100000}}) {
            const std::string label = "trial=" + std::to_string(trial) +
                                      " budget=" + std::to_string(budget) +
                                      (mode == SweepMode::kSerial ? " serial" : " auto") +
                                      (force_split ? " split" : "");
            {
                ExecutionGrant grant = ExecutionGrant::with_budget(budget);
                GrantScope scope(&grant);
                const FrontierVerdict part =
                    core::batch_robustness_frontier(game, profile, max_k, max_t, options);
                if (part.complete()) {
                    EXPECT_TRUE(part == full) << label << " complete-but-different";
                } else {
                    std::uint64_t resolved = 0;
                    for (std::size_t k = 0; k <= max_k; ++k) {
                        for (std::size_t t = 0; t <= max_t; ++t) {
                            const CellVerdict verdict = part.verdict(k, t);
                            if (verdict == CellVerdict::kUnknown) continue;
                            ++resolved;
                            EXPECT_EQ(verdict, full.verdict(k, t))
                                << label << " cell k=" << k << " t=" << t;
                            if (verdict == CellVerdict::kBroken) {
                                EXPECT_TRUE(part.violation(k, t) == full.violation(k, t))
                                    << label << " witness k=" << k << " t=" << t;
                            }
                        }
                    }
                    EXPECT_EQ(resolved, part.cells_resolved) << label;
                }
            }
            {
                ExecutionGrant grant = ExecutionGrant::with_budget(budget);
                GrantScope scope(&grant);
                const MaxKtResult walk = core::max_kt(game, profile, max_k, max_t, options);
                for (std::size_t k = 0; k <= max_k; ++k) {
                    for (std::size_t t = 0; t <= max_t; ++t) {
                        const CellVerdict verdict = walk.verdict(k, t);
                        if (verdict == CellVerdict::kUnknown) continue;
                        EXPECT_EQ(verdict, full.verdict(k, t))
                            << label << " max_kt cell k=" << k << " t=" << t;
                    }
                }
                if (walk.complete) {
                    EXPECT_TRUE(walk == full_walk)
                        << label << " complete walk differs from unbudgeted";
                }
            }
            {
                ExecutionGrant grant = ExecutionGrant::with_budget(budget);
                GrantScope scope(&grant);
                const BatchVerdict res = core::batch_resilience(game, profile, max_k, options);
                if (res.complete) {
                    EXPECT_TRUE(res == full_res) << label << " batch_resilience";
                } else {
                    // Truncated: the verified prefix never overclaims.
                    EXPECT_LE(res.max_ok, full_res.max_ok) << label;
                }
            }
            {
                ExecutionGrant grant = ExecutionGrant::with_budget(budget);
                GrantScope scope(&grant);
                const BatchVerdict imm = core::batch_immunity(game, profile, max_t, mode);
                if (imm.complete) {
                    EXPECT_TRUE(imm == full_imm) << label << " batch_immunity";
                } else {
                    EXPECT_LE(imm.max_ok, full_imm.max_ok) << label;
                }
            }
        }
        if (force_split) {
            CoalitionSweep::set_intra_split_cells(saved_split);
            CoalitionSweep::set_intra_block_cells(saved_block);
            CoalitionSweep::set_intra_split_force(false);
        }
        if (HasFatalFailure()) return;
    }
}

// --------------------------------------------------- checkpointed resume

// Runs one budgeted leg of a resume chain: seeks past `resume` (when
// set), sweeps under a fresh budget, and reports the new checkpoint plus
// the cells this leg charged.
template <typename Body>
std::uint64_t run_leg(std::uint64_t budget, const Body& body) {
    ExecutionGrant grant = ExecutionGrant::with_budget(budget);
    GrantScope scope(&grant);
    body();
    return grant.charged();
}

// A budget below the resume floor (the immunity baseline plus one
// task's cells) cannot vouch for any task, so such a leg makes NO
// progress — the checkpoint comes back unchanged. A real client
// retries with a bigger grant; the chains here do the same, growing a
// stuck leg's budget 8x. Starting at budget 1 this exercises both the
// zero-progress rung and the mixed-budget chain.
#define BNASH_GROW_IF_STUCK(leg_budget, progressed)                   \
    if (!(progressed) && (leg_budget) < (std::uint64_t{1} << 40)) {   \
        (leg_budget) *= 8;                                            \
    }

// The resume contract, fuzzed: for every entry point (cell probe, full
// frontier, boundary walk), a chain of budgeted retries — each seeking
// past the previous checkpoint — terminates, costs ~one sweep's work
// over its productive legs, and produces results bit-identical
// (witnesses included) to one unbudgeted run. ~60 seeded games, three
// starting budgets, both sweep modes.
TEST(GrantFuzz, ResumedRetryChainsMatchUnbudgetedRunsBitForBit) {
    util::Rng rng(20260808);
    const std::size_t kGames = 60;
    const std::size_t max_k = 2;
    const std::size_t max_t = 2;
    const std::size_t kMaxLegs = 512;
    for (std::size_t trial = 0; trial < kGames; ++trial) {
        std::vector<std::size_t> counts(3, 0);
        for (auto& count : counts) count = 2 + static_cast<std::size_t>(rng.next_below(2));
        const NormalFormGame game = NormalFormGame::random(counts, rng, -4, 4);
        const ExactMixedProfile profile = fuzz_profile(game, rng, trial % 3 == 0);
        const GainCriterion criterion =
            trial % 5 == 0 ? GainCriterion::kAllMembersGain : GainCriterion::kAnyMemberGains;
        const SweepMode mode = trial % 2 == 0 ? SweepMode::kSerial : SweepMode::kAuto;
        const RobustnessOptions options{criterion, mode};
        const CoalitionSweep sweep(game, profile);

        const auto full_cell = sweep.robustness_violation(max_k, max_t, options);
        const FrontierVerdict full_grid =
            sweep.batch_robustness_frontier(max_k, max_t, criterion, mode);
        std::uint64_t full_grid_cost = 0;
        {
            ExecutionGrant unlimited;
            GrantScope scope(&unlimited);
            (void)sweep.batch_robustness_frontier(max_k, max_t, criterion, mode);
            full_grid_cost = unlimited.charged();
        }
        const MaxKtResult full_walk = sweep.max_kt(max_k, max_t, criterion, mode);

        for (const std::uint64_t budget :
             {std::uint64_t{1}, std::max<std::uint64_t>(full_grid_cost / 7, 1),
              std::max<std::uint64_t>(full_grid_cost / 3, 1)}) {
            const std::string label = "trial=" + std::to_string(trial) +
                                      " budget=" + std::to_string(budget) +
                                      (mode == SweepMode::kSerial ? " serial" : " auto");
            // Cell probe chain.
            {
                core::SweepCheckpoint checkpoint;
                std::optional<core::RobustnessViolation> hit;
                std::uint64_t leg_budget = budget;
                std::size_t legs = 0;
                for (; legs < kMaxLegs; ++legs) {
                    core::SweepCheckpoint next;
                    (void)run_leg(leg_budget, [&] {
                        hit = sweep.robustness_violation(
                            max_k, max_t, options, legs == 0 ? nullptr : &checkpoint, &next);
                    });
                    if (hit || next.finished) break;
                    BNASH_GROW_IF_STUCK(leg_budget, !(next == checkpoint));
                    checkpoint = next;
                }
                ASSERT_LT(legs, kMaxLegs) << label << " cell chain did not terminate";
                ASSERT_EQ(hit.has_value(), full_cell.has_value()) << label;
                if (hit) {
                    EXPECT_TRUE(*hit == *full_cell) << label << " cell witness differs";
                }
            }
            // Frontier chain, merged.
            {
                core::SweepCheckpoint checkpoint;
                FrontierVerdict assembled;
                std::uint64_t leg_budget = budget;
                std::size_t legs = 0;
                for (; legs < kMaxLegs; ++legs) {
                    core::SweepCheckpoint next;
                    FrontierVerdict part;
                    (void)run_leg(leg_budget, [&] {
                        part = sweep.batch_robustness_frontier(
                            max_k, max_t, criterion, mode,
                            legs == 0 ? nullptr : &checkpoint, &next);
                    });
                    if (legs == 0) {
                        assembled = part;
                    } else {
                        core::merge_frontier(assembled, part);
                    }
                    if (next.finished) break;
                    BNASH_GROW_IF_STUCK(leg_budget, !(next == checkpoint));
                    checkpoint = next;
                }
                ASSERT_LT(legs, kMaxLegs) << label << " frontier chain did not terminate";
                EXPECT_TRUE(assembled == full_grid) << label << " assembled grid differs";
            }
            // Boundary-walk chain: the completing leg's result is the
            // unbudgeted result.
            {
                core::SweepCheckpoint checkpoint;
                MaxKtResult walk;
                std::uint64_t leg_budget = budget;
                std::size_t legs = 0;
                for (; legs < kMaxLegs; ++legs) {
                    core::SweepCheckpoint next;
                    (void)run_leg(leg_budget, [&] {
                        walk = sweep.max_kt(max_k, max_t, criterion, mode,
                                            legs == 0 ? nullptr : &checkpoint, &next);
                    });
                    if (walk.complete) break;
                    BNASH_GROW_IF_STUCK(leg_budget, !(next == checkpoint));
                    checkpoint = next;
                }
                ASSERT_LT(legs, kMaxLegs) << label << " walk chain did not terminate";
                EXPECT_TRUE(walk == full_walk) << label << " walk differs";
            }
        }
        if (HasFatalFailure()) return;
    }
}

// The resume-cost acceptance gate on a grid big enough that per-leg
// checkpoint overshoot is noise: >= 3 budgeted retries reassemble the
// frontier bit-identically AND the chain's total cell cost stays within
// 1.15x of one unbudgeted sweep.
TEST(GrantAccounting, ResumedChainCostsAboutOneSweep) {
    // All-zero payoffs: robust everywhere, so no early violation exit
    // shortcuts the sweep (the worst — and deterministic — case). Six
    // players: enough tasks that one re-entered task per leg is noise.
    const NormalFormGame game(std::vector<std::size_t>(6, 3));
    const auto profile = core::as_exact_profile(game, PureProfile(6, 0));
    const GainCriterion criterion = GainCriterion::kAnyMemberGains;
    const SweepMode mode = SweepMode::kSerial;
    const CoalitionSweep sweep(game, profile);

    std::uint64_t full_cost = 0;
    FrontierVerdict full;
    {
        ExecutionGrant unlimited;
        GrantScope scope(&unlimited);
        full = sweep.batch_robustness_frontier(3, 2, criterion, mode);
        full_cost = unlimited.charged();
    }
    ASSERT_GT(full_cost, 8192u);

    const std::uint64_t budget = full_cost / 5;
    core::SweepCheckpoint checkpoint;
    FrontierVerdict assembled;
    std::uint64_t total_cost = 0;
    std::size_t legs = 0;
    for (; legs < 64; ++legs) {
        core::SweepCheckpoint next;
        FrontierVerdict part;
        total_cost += run_leg(budget, [&] {
            part = sweep.batch_robustness_frontier(3, 2, criterion, mode,
                                                   legs == 0 ? nullptr : &checkpoint, &next);
        });
        if (legs == 0) {
            assembled = part;
        } else {
            core::merge_frontier(assembled, part);
        }
        checkpoint = next;
        if (checkpoint.finished) break;
    }
    ASSERT_LT(legs, 64u);
    EXPECT_GE(legs + 1, 3u) << "budget did not force enough retries";
    EXPECT_TRUE(assembled == full);
    // N retries cost ~one sweep, not N: at most one re-entered task plus
    // one checkpoint chunk per leg, gated at 15% total.
    EXPECT_LE(total_cost, full_cost + full_cost * 15 / 100)
        << "total=" << total_cost << " full=" << full_cost;
}

// The orbit engine's resume points (faulty-size / pair-rank / boundary
// granular) satisfy the same contract on a symmetric game.
TEST(GrantFuzz, OrbitResumeChainsMatchUnbudgetedRuns) {
    const auto abg = core::AnonymousBinaryGame::attack(6);
    const game::SymmetryGroup group = game::SymmetryGroup::single_class(6);
    const core::OrbitSweep sweep(abg.quotient(), group, {0});
    const std::size_t max_k = 4;
    const std::size_t max_t = 2;
    const GainCriterion criterion = GainCriterion::kAnyMemberGains;
    const SweepMode mode = SweepMode::kSerial;
    const RobustnessOptions options{criterion, mode};

    const auto full_cell = sweep.robustness_violation(max_k, max_t, options);
    const FrontierVerdict full_grid =
        sweep.batch_robustness_frontier(max_k, max_t, criterion, mode);
    const MaxKtResult full_walk = sweep.max_kt(max_k, max_t, criterion, mode);
    std::uint64_t full_cost = 0;
    {
        ExecutionGrant unlimited;
        GrantScope scope(&unlimited);
        (void)sweep.batch_robustness_frontier(max_k, max_t, criterion, mode);
        full_cost = unlimited.charged();
    }

    for (const std::uint64_t budget : {std::uint64_t{1},
                                       std::max<std::uint64_t>(full_cost / 4, 1)}) {
        const std::string label = "budget=" + std::to_string(budget);
        {
            core::SweepCheckpoint checkpoint;
            std::optional<core::RobustnessViolation> hit;
            std::uint64_t leg_budget = budget;
            std::size_t legs = 0;
            for (; legs < 512; ++legs) {
                core::SweepCheckpoint next;
                (void)run_leg(leg_budget, [&] {
                    hit = sweep.robustness_violation(max_k, max_t, options,
                                                     legs == 0 ? nullptr : &checkpoint, &next);
                });
                if (hit || next.finished) break;
                BNASH_GROW_IF_STUCK(leg_budget, !(next == checkpoint));
                checkpoint = next;
            }
            ASSERT_LT(legs, 512u) << label;
            ASSERT_EQ(hit.has_value(), full_cell.has_value()) << label;
            if (hit) EXPECT_TRUE(*hit == *full_cell) << label;
        }
        {
            core::SweepCheckpoint checkpoint;
            FrontierVerdict assembled;
            std::uint64_t leg_budget = budget;
            std::size_t legs = 0;
            for (; legs < 512; ++legs) {
                core::SweepCheckpoint next;
                FrontierVerdict part;
                (void)run_leg(leg_budget, [&] {
                    part = sweep.batch_robustness_frontier(
                        max_k, max_t, criterion, mode, legs == 0 ? nullptr : &checkpoint,
                        &next);
                });
                if (legs == 0) {
                    assembled = part;
                } else {
                    core::merge_frontier(assembled, part);
                }
                if (next.finished) break;
                BNASH_GROW_IF_STUCK(leg_budget, !(next == checkpoint));
                checkpoint = next;
            }
            ASSERT_LT(legs, 512u) << label;
            EXPECT_TRUE(assembled == full_grid) << label << " orbit grid differs";
        }
        {
            core::SweepCheckpoint checkpoint;
            MaxKtResult walk;
            std::uint64_t leg_budget = budget;
            std::size_t legs = 0;
            for (; legs < 512; ++legs) {
                core::SweepCheckpoint next;
                (void)run_leg(leg_budget, [&] {
                    walk = sweep.max_kt(max_k, max_t, criterion, mode,
                                        legs == 0 ? nullptr : &checkpoint, &next);
                });
                if (walk.complete) break;
                BNASH_GROW_IF_STUCK(leg_budget, !(next == checkpoint));
                checkpoint = next;
            }
            ASSERT_LT(legs, 512u) << label;
            EXPECT_TRUE(walk == full_walk) << label << " orbit walk differs";
        }
    }
}

TEST(GrantFuzz, PreExpiredGrantResolvesOnlyVacuousCells) {
    const NormalFormGame game = game::catalog::prisoners_dilemma();
    const auto profile = core::as_exact_profile(game, PureProfile{1, 1});
    ExecutionGrant grant;
    grant.cancel();
    GrantScope scope(&grant);
    const FrontierVerdict part = core::batch_robustness_frontier(game, profile, 2, 1, {});
    EXPECT_FALSE(part.complete());
    // Cell (0,0) is vacuously robust for every game; everything needing
    // actual work is unknown.
    EXPECT_EQ(part.verdict(0, 0), CellVerdict::kRobust);
    EXPECT_EQ(part.verdict(1, 0), CellVerdict::kUnknown);
    EXPECT_EQ(part.verdict(0, 1), CellVerdict::kUnknown);
    EXPECT_EQ(part.verdict(2, 1), CellVerdict::kUnknown);
}

}  // namespace
}  // namespace bnash
