// Tests for Section 4's games with awareness (E10, E11): generalized Nash
// equilibrium, the canonical-representation theorem, the Figure 1-3
// example with its p-crossover, and awareness of unawareness via virtual
// moves.
#include <gtest/gtest.h>

#include "core/awareness/awareness_game.h"
#include "util/combinatorics.h"
#include "game/catalog.h"
#include "solver/verification.h"

namespace bnash::core {
namespace {

using game::ExtensiveGame;
using util::Rational;

// --------------------------------------------------------------- structure

TEST(Awareness, CanonicalRepresentationActivatesEverything) {
    const auto aware = AwarenessGame::canonical(game::catalog::figure1_game());
    EXPECT_EQ(aware.num_games(), 1u);
    const auto pairs = aware.active_pairs();
    EXPECT_EQ(pairs.size(), 2u);  // (A, 0) and (B, 0)
    EXPECT_TRUE(aware.is_active_slot(0, 0));
    EXPECT_TRUE(aware.is_active_slot(0, 1));
}

TEST(Awareness, FinalizeRejectsActionCountMismatch) {
    AwarenessGame aware;
    const auto g0 = aware.add_game(game::catalog::figure1_game());
    const auto g1 = aware.add_game(game::catalog::figure1_game_without_downB());
    // Figure 1's B node has 2 actions; Gamma_B's B info set has 1.
    const auto b_node = game::catalog::figure1_game().node_at({1});
    aware.set_belief(g0, b_node, {g1, *game::catalog::figure1_game_without_downB()
                                          .find_info_set("B")});
    EXPECT_THROW(aware.finalize(), std::logic_error);
}

TEST(Awareness, FinalizeRejectsMoverChange) {
    AwarenessGame aware;
    const auto g0 = aware.add_game(game::catalog::figure1_game());
    // Point A's root belief at B's info set: different mover.
    const auto root = game::catalog::figure1_game().node_at({});
    aware.set_belief(g0, root, {g0, *game::catalog::figure1_game().find_info_set("B")});
    EXPECT_THROW(aware.finalize(), std::logic_error);
}

// ------------------------------------------- canonical representation thm

TEST(Awareness, CanonicalGeneralizedNashEqualsNash) {
    // "a strategy profile is a Nash equilibrium of Gamma iff it is a
    // generalized Nash equilibrium of the canonical representation".
    const auto tree = game::catalog::figure1_game();
    const auto aware = AwarenessGame::canonical(tree);
    const auto nf = tree.to_normal_form();

    // Enumerate all pure strategy profiles of the tree (one action per
    // info set) and compare the two notions.
    for (std::size_t a_choice = 0; a_choice < 2; ++a_choice) {
        for (std::size_t b_choice = 0; b_choice < 2; ++b_choice) {
            AwarenessGame::Profile profile(1);
            profile[0] = {game::pure_as_mixed(a_choice, 2), game::pure_as_mixed(b_choice, 2)};
            const bool generalized = aware.is_generalized_nash(profile);
            const bool nash = solver::is_pure_nash(nf, {a_choice, b_choice});
            EXPECT_EQ(generalized, nash) << "a=" << a_choice << " b=" << b_choice;
        }
    }
}

TEST(Awareness, CanonicalExistence) {
    // Every game with awareness has a generalized Nash equilibrium; on the
    // canonical representation the solver must find one.
    const auto aware = AwarenessGame::canonical(game::catalog::figure1_game());
    const auto profile = aware.solve_by_best_response();
    EXPECT_TRUE(aware.is_generalized_nash(profile));
}

// -------------------------------------------------------------- Figure 1-3

TEST(AwarenessFigure1, LowPPlaysAcross) {
    // p < 1/2: A expects the (aware) B to play down_B often enough that
    // across_A is worth it.
    const auto fig = figure1_awareness_game(Rational{1, 4});
    const auto profile = fig.game.solve_by_best_response();
    EXPECT_TRUE(fig.game.is_generalized_nash(profile));
    // A's strategy in Gamma_A: across_A (index 1).
    EXPECT_NEAR(profile[fig.gamma_a][fig.a_infoset_in_gamma_a][1], 1.0, 1e-9);
}

TEST(AwarenessFigure1, HighPPlaysDown) {
    // p > 1/2: A believes B is probably unaware of down_B and will play
    // across_B, so A takes the safe down_A -- "Nash equilibrium does not
    // seem to be the appropriate solution concept here."
    const auto fig = figure1_awareness_game(Rational{3, 4});
    const auto profile = fig.game.solve_by_best_response();
    EXPECT_TRUE(fig.game.is_generalized_nash(profile));
    EXPECT_NEAR(profile[fig.gamma_a][fig.a_infoset_in_gamma_a][0], 1.0, 1e-9);
}

TEST(AwarenessFigure1, CrossoverAtOneHalf) {
    // Exactly at p = 1/2 both actions tie; the equilibrium checker must
    // accept both pure choices for A.
    const auto fig = figure1_awareness_game(Rational{1, 2});
    auto profile = fig.game.solve_by_best_response();
    EXPECT_TRUE(fig.game.is_generalized_nash(profile));
    for (std::size_t a_action = 0; a_action < 2; ++a_action) {
        auto variant = profile;
        variant[fig.gamma_a][fig.a_infoset_in_gamma_a] = game::pure_as_mixed(a_action, 2);
        EXPECT_TRUE(fig.game.is_generalized_nash(variant)) << "action " << a_action;
    }
}

TEST(AwarenessFigure1, AwareBPlaysDownB) {
    // In every equilibrium where B's modeler-game node matters, the aware
    // B plays down_B (it believes the modeler's game, where down_B earns 2
    // whenever A crosses with positive probability under the uniform
    // starting point).
    const auto fig = figure1_awareness_game(Rational{1, 4});
    const auto profile = fig.game.solve_by_best_response();
    const auto b_set = *fig.game.game_at(fig.modeler).find_info_set("B");
    EXPECT_NEAR(profile[fig.modeler][b_set][0], 1.0, 1e-9);
}

TEST(AwarenessFigure1, UnawareAInGammaBPlaysDown) {
    // In Gamma_B (where down_B does not exist) A prefers down_A: 1 > 0.
    const auto fig = figure1_awareness_game(Rational{1, 4});
    const auto profile = fig.game.solve_by_best_response();
    const auto a_set = *fig.game.game_at(fig.gamma_b).find_info_set("A");
    EXPECT_NEAR(profile[fig.gamma_b][a_set][0], 1.0, 1e-9);
}

TEST(AwarenessFigure1, PureEquilibriaExistForEveryP) {
    for (const auto& p : {Rational{0}, Rational{1, 4}, Rational{1, 2}, Rational{3, 4},
                          Rational{1}}) {
        const auto fig = figure1_awareness_game(p);
        EXPECT_FALSE(fig.game.pure_generalized_equilibria().empty())
            << "p = " << p.to_string();
    }
}

// ----------------------------------------------------- virtual moves (AoU)

TEST(VirtualMove, TemptingVirtualPayoffChangesBsConjecturedPlay) {
    // If A believes B's unknown move yields B more than down_B's 2, A
    // conjectures B will play it; A's own move then rides on the believed
    // payoff to A.
    // believed payoffs (3, 3): A expects 3 from across -> plays across.
    const auto optimistic = virtual_move_game(Rational{3}, Rational{3});
    const auto profile = optimistic.solve_by_best_response();
    EXPECT_TRUE(optimistic.is_generalized_nash(profile));
    const auto a_set = *optimistic.game_at(1).find_info_set("A");
    EXPECT_NEAR(profile[1][a_set][1], 1.0, 1e-9);  // across_A
}

TEST(VirtualMove, ThreateningVirtualPayoffDetersA) {
    // believed payoffs (0, 3): B would play the virtual move and leave A
    // with 0 < 1, so A stays down -- the paper's "peace overtures" story.
    const auto pessimistic = virtual_move_game(Rational{0}, Rational{3});
    const auto profile = pessimistic.solve_by_best_response();
    EXPECT_TRUE(pessimistic.is_generalized_nash(profile));
    const auto a_set = *pessimistic.game_at(1).find_info_set("A");
    EXPECT_NEAR(profile[1][a_set][0], 1.0, 1e-9);  // down_A
}

TEST(VirtualMove, UnattractiveVirtualMoveIsIgnored) {
    // believed payoffs (5, -1): B would never play it (down_B pays 2), so
    // the subjective game behaves like Figure 1: A crosses.
    const auto ignored = virtual_move_game(Rational{5}, Rational{-1});
    const auto profile = ignored.solve_by_best_response();
    EXPECT_TRUE(ignored.is_generalized_nash(profile));
    const auto a_set = *ignored.game_at(1).find_info_set("A");
    EXPECT_NEAR(profile[1][a_set][1], 1.0, 1e-9);
}

TEST(VirtualMove, GeneralizedEquilibriumAlwaysExists) {
    for (const std::int64_t believed_a : {-2, 0, 1, 3}) {
        for (const std::int64_t believed_b : {-2, 0, 2, 4}) {
            const auto g = virtual_move_game(Rational{believed_a}, Rational{believed_b});
            const auto profile = g.solve_by_best_response();
            EXPECT_TRUE(g.is_generalized_nash(profile))
                << "believed (" << believed_a << ", " << believed_b << ")";
        }
    }
}

// ------------------------------------------------------------ sanity sweeps

class CanonicalEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanonicalEquivalence, RandomTreesAgreeWithNormalFormNash) {
    // Random 2-player perfect-information trees: pure generalized NE of
    // the canonical representation == pure NE of the strategic form.
    util::Rng rng{GetParam() * 31};
    ExtensiveGame tree(2);
    const auto root = tree.add_decision(0, "P0", {"l", "r"});
    const auto left = tree.add_decision(1, "P1L", {"l", "r"});
    const auto right = tree.add_decision(1, "P1R", {"l", "r"});
    tree.set_child(root, 0, left);
    tree.set_child(root, 1, right);
    for (const auto parent : {left, right}) {
        for (std::size_t a = 0; a < 2; ++a) {
            tree.set_child(parent, a,
                           tree.add_terminal({Rational{rng.next_int(-3, 3)},
                                              Rational{rng.next_int(-3, 3)}}));
        }
    }
    tree.finalize();
    const auto aware = AwarenessGame::canonical(tree);
    const auto nf = tree.to_normal_form();

    std::size_t generalized_count = aware.pure_generalized_equilibria().size();
    std::size_t nash_count = 0;
    util::product_for_each(nf.action_counts(), [&](const game::PureProfile& profile) {
        nash_count += solver::is_pure_nash(nf, profile);
        return true;
    });
    EXPECT_EQ(generalized_count, nash_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalEquivalence, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bnash::core
