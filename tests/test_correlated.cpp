// Tests for correlated equilibria and their bridge to Section 2's
// mediators: a mediator for a complete-information game is exactly a
// correlated-equilibrium device.
#include <gtest/gtest.h>

#include "core/machine/machine_game.h"
#include "core/robust/mediator.h"
#include "game/catalog.h"
#include "solver/correlated.h"
#include "solver/support_enumeration.h"
#include "util/combinatorics.h"
#include "util/rng.h"

namespace bnash::solver {
namespace {

using game::catalog::chicken;
using game::catalog::matching_pennies;
using game::catalog::prisoners_dilemma;
using game::catalog::roshambo;
using util::Rational;

TEST(Correlated, UniformIsCorrelatedEquilibriumOfRoshambo) {
    const auto g = roshambo();
    const std::vector<double> uniform(9, 1.0 / 9.0);
    EXPECT_TRUE(is_correlated_equilibrium(g, uniform));
}

TEST(Correlated, PointMassOnDefectIsCEOfPd) {
    const auto pd = prisoners_dilemma();
    std::vector<double> mu(4, 0.0);
    mu[pd.profile_rank({1, 1})] = 1.0;
    EXPECT_TRUE(is_correlated_equilibrium(pd, mu));
    // Point mass on (C,C) violates obedience.
    std::vector<double> cc(4, 0.0);
    cc[pd.profile_rank({0, 0})] = 1.0;
    EXPECT_FALSE(is_correlated_equilibrium(pd, cc));
}

TEST(Correlated, TrafficLightInChicken) {
    // The classic: a mediator that never recommends (straight, straight)
    // and randomizes over the asymmetric profiles is a CE whose welfare
    // beats the symmetric mixed Nash equilibrium.
    const auto g = chicken();
    std::vector<double> light(4, 0.0);
    light[g.profile_rank({0, 1})] = 0.5;  // (swerve, straight)
    light[g.profile_rank({1, 0})] = 0.5;  // (straight, swerve)
    EXPECT_TRUE(is_correlated_equilibrium(g, light));
}

TEST(Correlated, LpFindsWelfareOptimalCE) {
    const auto g = chicken();
    const auto ce = solve_correlated_equilibrium(g, CeObjective::kSocialWelfare);
    ASSERT_TRUE(ce.has_value());
    EXPECT_TRUE(is_correlated_equilibrium(g, ce->distribution));
    // Welfare-optimal CE in chicken: no mass on the crash, welfare 0
    // (swerve/swerve or the traffic light both achieve 0; crashing loses 20).
    EXPECT_NEAR(ce->objective_value, 0.0, 1e-6);
    EXPECT_NEAR(ce->distribution[g.profile_rank({1, 1})], 0.0, 1e-7);
}

TEST(Correlated, EgalitarianObjective) {
    const auto g = game::catalog::battle_of_the_sexes();
    const auto ce = solve_correlated_equilibrium(g, CeObjective::kEgalitarian);
    ASSERT_TRUE(ce.has_value());
    EXPECT_TRUE(is_correlated_equilibrium(g, ce->distribution));
    // Alternating between the two pure equilibria gives each player 1.5,
    // the egalitarian optimum.
    EXPECT_NEAR(std::min(ce->expected_payoffs[0], ce->expected_payoffs[1]), 1.5, 1e-6);
}

TEST(Correlated, PlayerZeroObjective) {
    const auto g = game::catalog::battle_of_the_sexes();
    const auto ce = solve_correlated_equilibrium(g, CeObjective::kPlayerZero);
    ASSERT_TRUE(ce.has_value());
    EXPECT_NEAR(ce->expected_payoffs[0], 2.0, 1e-6);  // player 0's favourite NE
}

TEST(Correlated, EveryNashIsCorrelated) {
    // Foundational inclusion, checked across the catalog.
    for (const auto& g : {prisoners_dilemma(), matching_pennies(), chicken(), roshambo(),
                          game::catalog::battle_of_the_sexes(), game::catalog::stag_hunt()}) {
        for (const auto& eq : support_enumeration(g)) {
            const auto mu = product_distribution(g, game::to_double(eq.profile));
            EXPECT_TRUE(is_correlated_equilibrium(g, mu, 1e-6));
        }
    }
}

TEST(Correlated, CeWelfareWeaklyBeatsBestNash) {
    for (const auto& g : {chicken(), game::catalog::battle_of_the_sexes(),
                          game::catalog::stag_hunt()}) {
        const auto ce = solve_correlated_equilibrium(g, CeObjective::kSocialWelfare);
        ASSERT_TRUE(ce.has_value());
        double best_nash_welfare = -1e300;
        for (const auto& eq : support_enumeration(g)) {
            best_nash_welfare = std::max(
                best_nash_welfare, (eq.payoffs[0] + eq.payoffs[1]).to_double());
        }
        EXPECT_GE(ce->objective_value, best_nash_welfare - 1e-6);
    }
}

class CorrelatedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorrelatedProperty, LpSolutionAlwaysValidatesOnRandomGames) {
    util::Rng rng{GetParam() * 733};
    const auto g = game::NormalFormGame::random({3, 3}, rng, -5, 5);
    const auto ce = solve_correlated_equilibrium(g, CeObjective::kSocialWelfare);
    ASSERT_TRUE(ce.has_value());
    EXPECT_TRUE(is_correlated_equilibrium(g, ce->distribution, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelatedProperty, ::testing::Range<std::uint64_t>(1, 31));

// ------------------------------------------------- bridge to the mediators

TEST(CorrelatedMediatorBridge, ObedientMediatorIffCorrelatedEquilibrium) {
    // Lift chicken to a single-type Bayesian game; a mediator policy's one
    // row is a distribution over action profiles, and truth-telling +
    // obedience is an equilibrium exactly when that row is a CE.
    const auto g = chicken();
    const auto lifted = core::lift_to_bayesian(g);

    const auto as_policy = [&](const std::vector<std::pair<game::PureProfile, Rational>>&
                                   rows) {
        core::MediatorPolicy policy(lifted);
        for (const auto& [profile, prob] : rows) {
            policy.set_recommendation(game::TypeProfile(2, 0), profile, prob);
        }
        return policy;
    };

    // The traffic light: CE, hence an obedient mediator.
    const auto light = as_policy({{{0, 1}, Rational{1, 2}}, {{1, 0}, Rational{1, 2}}});
    EXPECT_TRUE(light.is_truthful_equilibrium());
    // Mass on the crash: not a CE, and the mediator check must also fail.
    const auto crash = as_policy({{{1, 1}, Rational{1}}});
    EXPECT_FALSE(crash.is_truthful_equilibrium());

    // Quantified agreement over a grid of candidate distributions.
    for (const int i : {0, 1, 2, 4}) {
        for (const int j : {0, 1, 2}) {
            const Rational p_light{i, 8};
            const Rational p_swerve{j, 8};
            const Rational rest = Rational{1} - p_light * 2 - p_swerve;
            if (rest.sign() < 0) continue;
            const auto policy = as_policy({{{0, 1}, p_light},
                                           {{1, 0}, p_light},
                                           {{0, 0}, p_swerve},
                                           {{1, 1}, rest}});
            std::vector<double> mu(4, 0.0);
            mu[g.profile_rank({0, 1})] = p_light.to_double();
            mu[g.profile_rank({1, 0})] = p_light.to_double();
            mu[g.profile_rank({0, 0})] = p_swerve.to_double();
            mu[g.profile_rank({1, 1})] = rest.to_double();
            EXPECT_EQ(policy.is_truthful_equilibrium(),
                      is_correlated_equilibrium(g, mu, 1e-9))
                << "i=" << i << " j=" << j;
        }
    }
}

}  // namespace
}  // namespace bnash::solver
