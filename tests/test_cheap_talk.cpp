// Integration tests for the ADGH cheap-talk implementation of mediators
// (E6): distribution equality with the mediated game, fault tolerance at
// the paper's thresholds, secrecy, and failure beyond the thresholds.
#include <gtest/gtest.h>

#include "core/robust/cheap_talk.h"
#include "core/robust/mediator.h"
#include "game/catalog.h"
#include "util/combinatorics.h"
#include "util/stats.h"

namespace bnash::core {
namespace {

using game::TypeProfile;
using game::catalog::byzantine_agreement_game;
using game::catalog::correlated_types_game;
using util::Rational;

std::vector<CheapTalkBehavior> honest(std::size_t n) {
    return std::vector<CheapTalkBehavior>(n, CheapTalkBehavior::kHonest);
}

// n = 7 > 3k+3t for (k,t) = (1,1); d = 2, 2d+1 = 5 <= 7.
constexpr std::size_t kN = 7;

game::BayesianGame big_byzantine() { return byzantine_agreement_game(kN); }

TEST(CheapTalk, HonestRunReproducesDeterministicMediator) {
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    for (const std::size_t general_pref : {0u, 1u}) {
        TypeProfile types(kN, 0);
        types[0] = general_pref;
        const auto outcome = run_cheap_talk(policy, types, honest(kN), params);
        for (std::size_t i = 0; i < kN; ++i) {
            ASSERT_TRUE(outcome.recommendations[i].has_value()) << "player " << i;
            EXPECT_EQ(*outcome.recommendations[i], general_pref);
            EXPECT_EQ(outcome.actions[i], general_pref);
        }
    }
}

TEST(CheapTalk, RequiresBgwFloor) {
    const auto g = byzantine_agreement_game(4);
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;  // d = 2, needs n >= 5 > 4
    EXPECT_THROW((void)run_cheap_talk(policy, TypeProfile(4, 0), honest(4), params),
                 std::invalid_argument);
}

TEST(CheapTalk, ToleratesCrashAfterShare) {
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    auto behaviors = honest(kN);
    behaviors[3] = CheapTalkBehavior::kCrashAfterShare;
    TypeProfile types(kN, 0);
    types[0] = 1;
    const auto outcome = run_cheap_talk(policy, types, behaviors, params);
    for (std::size_t i = 0; i < kN; ++i) {
        if (i == 3) continue;
        ASSERT_TRUE(outcome.recommendations[i].has_value()) << "player " << i;
        EXPECT_EQ(*outcome.recommendations[i], 1u);
    }
}

TEST(CheapTalk, ToleratesSilentPlayer) {
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    auto behaviors = honest(kN);
    behaviors[5] = CheapTalkBehavior::kSilent;
    // A silent player's type defaults to 0 (the all-zero sharing), so the
    // general's preference still propagates when the general is honest.
    TypeProfile types(kN, 0);
    types[0] = 1;
    const auto outcome = run_cheap_talk(policy, types, behaviors, params);
    for (std::size_t i = 0; i < kN; ++i) {
        if (i == 5) continue;
        ASSERT_TRUE(outcome.recommendations[i].has_value());
        EXPECT_EQ(*outcome.recommendations[i], 1u);
    }
}

TEST(CheapTalk, HonestPlayersConsistentUnderShareCorruption) {
    // A corrupting non-general player cannot make honest players disagree:
    // its garbage input is equivalent to SOME (possibly out-of-domain)
    // reported type, identical for everyone.
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    auto behaviors = honest(kN);
    behaviors[6] = CheapTalkBehavior::kCorruptShares;
    TypeProfile types(kN, 0);
    types[0] = 1;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        params.seed = seed;
        const auto outcome = run_cheap_talk(policy, types, behaviors, params);
        // All honest players reach the same recommendation state. Note the
        // corrupter is NOT the general, and the Byzantine-consensus policy
        // ignores non-general types entirely, so recommendations must be
        // correct, not just consistent.
        for (std::size_t i = 0; i < kN; ++i) {
            if (i == 6) continue;
            ASSERT_TRUE(outcome.recommendations[i].has_value()) << "seed " << seed;
            EXPECT_EQ(*outcome.recommendations[i], 1u) << "seed " << seed;
        }
    }
}

TEST(CheapTalk, MisreportMatchesMediatorSemantics) {
    // A strategic general misreporting its type is exactly a misreport in
    // the mediated game: everyone is told the reported preference.
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    params.misreport_type = 0;
    auto behaviors = honest(kN);
    behaviors[0] = CheapTalkBehavior::kMisreport;
    TypeProfile types(kN, 0);
    types[0] = 1;  // true preference 1, reported 0
    const auto outcome = run_cheap_talk(policy, types, behaviors, params);
    for (std::size_t i = 1; i < kN; ++i) {
        ASSERT_TRUE(outcome.recommendations[i].has_value());
        EXPECT_EQ(*outcome.recommendations[i], 0u);  // the reported value
    }
}

TEST(CheapTalk, RandomizedPolicyDistributionMatchesMediator) {
    // 7-player variant of the correlated-coin policy: recommend all-0 or
    // all-1 with probability 1/2 each regardless of types.
    const auto g = big_byzantine();
    MediatorPolicy policy(g);
    util::product_for_each(g.type_counts(), [&](const TypeProfile& types) {
        policy.set_recommendation(types, game::PureProfile(kN, 0), Rational{1, 2});
        policy.set_recommendation(types, game::PureProfile(kN, 1), Rational{1, 2});
        return true;
    });
    policy.validate();
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    const TypeProfile types(kN, 0);
    const auto empirical =
        cheap_talk_action_distribution(policy, types, honest(kN), params, 60);
    const auto target_row = policy.induced_action_distribution(types);
    std::vector<double> target(target_row.size());
    for (std::size_t i = 0; i < target.size(); ++i) target[i] = target_row[i].to_double();
    EXPECT_LT(util::total_variation(empirical, target), 0.2);
}

TEST(CheapTalk, ReportsCostsAndStructure) {
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    const auto outcome = run_cheap_talk(policy, TypeProfile(kN, 0), honest(kN), params);
    EXPECT_GT(outcome.mul_gates, 0u);
    EXPECT_GT(outcome.metrics.messages, 0u);
    EXPECT_GT(outcome.phases, 2u);
    EXPECT_EQ(outcome.ba_instances, 0u);  // deterministic policy: no coin
    EXPECT_EQ(outcome.coin_space, 1u);
}

TEST(CheapTalk, RandomizedPolicyRunsByzantineAgreementOnCoins) {
    const auto g = big_byzantine();
    MediatorPolicy policy(g);
    util::product_for_each(g.type_counts(), [&](const TypeProfile& types) {
        policy.set_recommendation(types, game::PureProfile(kN, 0), Rational{1, 2});
        policy.set_recommendation(types, game::PureProfile(kN, 1), Rational{1, 2});
        return true;
    });
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    const auto outcome = run_cheap_talk(policy, TypeProfile(kN, 0), honest(kN), params);
    EXPECT_EQ(outcome.ba_instances, kN);  // one binary agreement per contributor
    EXPECT_EQ(outcome.coin_space, 2u);
    // All honest players landed on the same all-0 or all-1 recommendation.
    for (std::size_t i = 1; i < kN; ++i) {
        EXPECT_EQ(outcome.recommendations[i], outcome.recommendations[0]);
    }
}

// ------------------------------------------------------- broadcast channel

TEST(CheapTalk, BroadcastChannelEliminatesByzantineAgreement) {
    // With a physical broadcast the randomized policy needs no BA at all;
    // the paper's n > 2k+2t regime. Here n = 5 with (k,t) = (1,1):
    // 3k+3t = 6 > 5 rules out the point-to-point construction, but
    // 2k+2t = 4 < 5 admits the broadcast one (and 2d+1 = 5 <= n keeps BGW
    // alive).
    const auto g = byzantine_agreement_game(5);
    MediatorPolicy policy(g);
    util::product_for_each(g.type_counts(), [&](const TypeProfile& types) {
        policy.set_recommendation(types, game::PureProfile(5, 0), Rational{1, 2});
        policy.set_recommendation(types, game::PureProfile(5, 1), Rational{1, 2});
        return true;
    });
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    params.broadcast_channel = true;
    const auto outcome = run_cheap_talk(policy, TypeProfile(5, 0), honest(5), params);
    EXPECT_EQ(outcome.ba_instances, 0u);
    for (std::size_t i = 1; i < 5; ++i) {
        ASSERT_TRUE(outcome.recommendations[i].has_value());
        EXPECT_EQ(outcome.recommendations[i], outcome.recommendations[0]);
    }
}

TEST(CheapTalk, BroadcastChannelIsCheaperAtTheSameSize) {
    const auto g = big_byzantine();
    MediatorPolicy policy(g);
    util::product_for_each(g.type_counts(), [&](const TypeProfile& types) {
        policy.set_recommendation(types, game::PureProfile(kN, 0), Rational{1, 2});
        policy.set_recommendation(types, game::PureProfile(kN, 1), Rational{1, 2});
        return true;
    });
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    params.broadcast_channel = false;
    const auto p2p = run_cheap_talk(policy, TypeProfile(kN, 0), honest(kN), params);
    params.broadcast_channel = true;
    const auto broadcast = run_cheap_talk(policy, TypeProfile(kN, 0), honest(kN), params);
    EXPECT_GT(p2p.ba_instances, 0u);
    EXPECT_EQ(broadcast.ba_instances, 0u);
    EXPECT_LT(broadcast.metrics.messages, p2p.metrics.messages);
}

// ------------------------------------------------------------------ secrecy

TEST(CheapTalk, SecrecyThreshold) {
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;  // d = 2
    EXPECT_FALSE(coalition_can_learn_type(policy, 1, params));
    EXPECT_FALSE(coalition_can_learn_type(policy, 2, params));
    EXPECT_TRUE(coalition_can_learn_type(policy, 3, params));  // d+1 shares suffice
}

// --------------------------------------------- beyond-threshold behaviour

TEST(CheapTalk, BeyondThresholdSecrecyCollapses) {
    // With n = 7 and a coalition of size k+t+1 the sharing threshold is
    // crossed: the paper's n <= 3k+3t impossibility is rooted in exactly
    // this tension (larger thresholds would defeat reconstruction).
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 2;
    params.t = 1;  // d = 3; n = 7 = 2d+1 still evaluable, but 3k+3t = 9 > 7
    EXPECT_FALSE(coalition_can_learn_type(policy, 3, params));
    EXPECT_TRUE(coalition_can_learn_type(policy, 4, params));
}

class CheapTalkTypeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CheapTalkTypeSweep, EveryGeneralTypeReproduced) {
    const auto g = big_byzantine();
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    params.seed = GetParam();
    TypeProfile types(kN, 0);
    types[0] = GetParam() % 2;
    const auto outcome = run_cheap_talk(policy, types, honest(kN), params);
    const auto expected = policy.induced_action_distribution(types);
    const auto rank = util::product_rank(g.action_counts(), outcome.actions);
    EXPECT_EQ(expected[rank], Rational{1});
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheapTalkTypeSweep, ::testing::Range<std::size_t>(1, 11));

}  // namespace
}  // namespace bnash::core
