// Defensive-path and boundary tests across modules: error contracts,
// degenerate parameters, and rarely-hit branches. These pin the library's
// failure behavior so downstream users get exceptions, not UB.
#include <gtest/gtest.h>

#include "core/machine/machine_game.h"
#include "core/robust/anonymous.h"
#include "core/robust/cheap_talk.h"
#include "core/robust/mediator.h"
#include "crypto/circuit.h"
#include "crypto/shamir.h"
#include "dist/network.h"
#include "game/catalog.h"
#include "scrip/scrip_system.h"
#include "util/combinatorics.h"
#include <cmath>
#include <limits>

#include "util/rational.h"
#include "util/rng.h"

namespace bnash {
namespace {

using util::Rational;

// ----------------------------------------------------------------- util

TEST(EdgeUtil, RationalNegationOfZero) {
    EXPECT_EQ(-Rational{0}, Rational{0});
    EXPECT_EQ(Rational{0}.abs(), Rational{0});
    EXPECT_EQ(Rational{0}.sign(), 0);
}

TEST(EdgeUtil, RationalFromDoubleRejectsNonFinite) {
    EXPECT_THROW((void)Rational::from_double(std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
    EXPECT_THROW((void)Rational::from_double(std::nan("")), std::invalid_argument);
    EXPECT_THROW((void)Rational::from_double(0.5, 0), std::invalid_argument);
}

TEST(EdgeUtil, FullRangeNextInt) {
    // lo == INT64_MIN, hi == INT64_MAX exercises the span == 0 wrap path.
    util::Rng rng{1};
    for (int i = 0; i < 10; ++i) {
        (void)rng.next_int(std::numeric_limits<std::int64_t>::min(),
                           std::numeric_limits<std::int64_t>::max());
    }
    SUCCEED();
}

TEST(EdgeUtil, EmptyProductSpace) {
    int visits = 0;
    EXPECT_TRUE(util::product_for_each({}, [&](const auto&) {
        ++visits;
        return true;
    }));
    EXPECT_EQ(visits, 1);  // the empty tuple is visited exactly once
    EXPECT_EQ(util::product_size({}), 1u);
}

TEST(EdgeUtil, ProductRankErrors) {
    EXPECT_THROW((void)util::product_rank({2, 2}, {0}), std::invalid_argument);
    EXPECT_THROW((void)util::product_rank({2, 2}, {0, 2}), std::out_of_range);
    EXPECT_THROW((void)util::product_unrank({2, 2}, 4), std::out_of_range);
    EXPECT_THROW((void)util::product_unrank({2, 0}, 0), std::invalid_argument);
}

// ----------------------------------------------------------------- game

TEST(EdgeGame, MultiplayerToString) {
    const auto g = game::catalog::attack_coordination_game(3);
    const auto text = g.to_string();
    EXPECT_NE(text.find("3-player"), std::string::npos);
}

TEST(EdgeGame, ConstructorRejectsEmptyActionSets) {
    EXPECT_THROW(game::NormalFormGame({2, 0}), std::invalid_argument);
    EXPECT_THROW(game::NormalFormGame({}), std::invalid_argument);
}

TEST(EdgeGame, RestrictRejectsEmptyKeepSets) {
    const auto pd = game::catalog::prisoners_dilemma();
    EXPECT_THROW((void)pd.restrict({{}, {0}}), std::invalid_argument);
    EXPECT_THROW((void)pd.restrict({{0, 5}, {0}}), std::out_of_range);
}

TEST(EdgeGame, PayoffMatrixRequiresTwoPlayers) {
    const auto g = game::catalog::attack_coordination_game(3);
    EXPECT_THROW((void)g.payoff_matrix(0), std::logic_error);
}

TEST(EdgeGame, NodeAtRejectsForeignHistory) {
    const auto tree = game::catalog::figure1_game();
    EXPECT_THROW((void)tree.node_at({1, 1, 1}), std::out_of_range);
}

TEST(EdgeGame, BayesianRejectsNegativePriorAndMismatchedWidths) {
    game::BayesianGame g({2}, {2});
    EXPECT_THROW(g.set_prior({0}, Rational{-1, 2}), std::invalid_argument);
    EXPECT_THROW(game::BayesianGame({2}, {2, 2}), std::invalid_argument);
    EXPECT_THROW(game::BayesianGame({0}, {2}), std::invalid_argument);
}

// --------------------------------------------------------------- crypto

TEST(EdgeCrypto, ShamirDegreeZeroSharesAreConstant) {
    util::Rng rng{3};
    const auto shares = crypto::share_secret(crypto::Fe{9}, 4, 0, rng);
    for (const auto& share : shares) EXPECT_EQ(share.value, crypto::Fe{9});
    EXPECT_EQ(crypto::reconstruct({shares[2]}, 0), crypto::Fe{9});
}

TEST(EdgeCrypto, ShamirRejectsThresholdAtLeastN) {
    util::Rng rng{3};
    EXPECT_THROW((void)crypto::share_secret(crypto::Fe{1}, 3, 3, rng), std::invalid_argument);
}

TEST(EdgeCrypto, ReconstructWithErrorsRejectsBadAgreement) {
    util::Rng rng{4};
    const auto shares = crypto::share_secret(crypto::Fe{5}, 5, 1, rng);
    EXPECT_FALSE(crypto::reconstruct_with_errors(shares, 1, 6).has_value());  // > n
    EXPECT_FALSE(crypto::reconstruct_with_errors(shares, 1, 1).has_value());  // < t+1
}

TEST(EdgeCrypto, CircuitRejectsBadGateReferences) {
    crypto::Circuit c;
    const auto x = c.input(0);
    EXPECT_THROW((void)c.add(x, 99), std::out_of_range);
    EXPECT_THROW(c.set_output(99), std::out_of_range);
}

TEST(EdgeCrypto, LookupCompilerValidatesTableSize) {
    EXPECT_THROW((void)crypto::compile_lookup_table({2, 2}, {crypto::Fe{0}}),
                 std::invalid_argument);
    EXPECT_THROW((void)crypto::compile_lookup_table({}, {}), std::invalid_argument);
}

// ----------------------------------------------------------------- dist

TEST(EdgeDist, CrashAtRoundZeroWithNoPartialSendsIsSilent) {
    // CrashFault(0, 0) == total silence from the very first round.
    dist::CrashFault crash(0, 0);
    util::Rng rng{1};
    std::vector<dist::Message> out{{0, 1, 0, "x", {1}}};
    EXPECT_TRUE(crash.apply(0, out, rng).empty());
    EXPECT_TRUE(crash.apply(5, {{0, 1, 5, "x", {1}}}, rng).empty());
}

TEST(EdgeDist, OutboxRejectsUnknownRecipient) {
    dist::Outbox outbox{0, 3, 0};
    EXPECT_THROW(outbox.send(3, "x", {}), std::out_of_range);
}

TEST(EdgeDist, NetworkRejectsZeroProcesses) {
    EXPECT_THROW(dist::SynchronousNetwork(0, 1), std::invalid_argument);
}

// ----------------------------------------------------------------- core

TEST(EdgeCore, AnonymousGameValidation) {
    EXPECT_THROW(core::AnonymousBinaryGame(1, nullptr), std::invalid_argument);
    const auto g = core::AnonymousBinaryGame::attack(4);
    EXPECT_THROW((void)g.payoff(2, 0), std::out_of_range);
    EXPECT_THROW((void)g.payoff(0, 5), std::out_of_range);
    EXPECT_THROW((void)core::AnonymousBinaryGame::attack(20).to_normal_form(),
                 std::logic_error);
}

TEST(EdgeCore, MediatorPolicyValidation) {
    const auto g = game::catalog::correlated_types_game();
    core::MediatorPolicy policy(g);
    EXPECT_THROW(policy.set_recommendation({0, 0}, {0, 0}, Rational{-1, 2}),
                 std::invalid_argument);
    EXPECT_THROW(policy.validate(), std::logic_error);  // rows are all-zero
}

TEST(EdgeCore, CheapTalkWidthValidation) {
    const auto g = game::catalog::byzantine_agreement_game(7);
    const auto policy = core::MediatorPolicy::byzantine_consensus(g);
    core::CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    EXPECT_THROW((void)core::run_cheap_talk(policy, game::TypeProfile(6, 0),
                                            std::vector<core::CheapTalkBehavior>(
                                                7, core::CheapTalkBehavior::kHonest),
                                            params),
                 std::invalid_argument);
}

TEST(EdgeCore, MachineGameValidation) {
    auto g = core::computational_roshambo(1.0);
    EXPECT_THROW(g.add_machine(0, nullptr), std::invalid_argument);
    EXPECT_THROW((void)g.utility({0}, 0), std::invalid_argument);  // width
}

TEST(EdgeCore, BestResponseCycleFromEveryStart) {
    // Nonexistence means the dynamic must cycle from EVERY starting
    // profile, not just (rock, rock).
    auto g = core::computational_roshambo(1.0);
    for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = 0; b < 4; ++b) {
            const auto cycle = g.best_response_cycle({a, b});
            EXPECT_GT(cycle.size(), 1u) << "start (" << a << "," << b << ")";
        }
    }
}

// ---------------------------------------------------------------- scrip

TEST(EdgeScrip, AllHoardersMeansNoTrade) {
    scrip::ScripParams params;
    params.num_agents = 10;
    params.rounds = 1000;
    params.seed = 2;
    std::vector<scrip::AgentSpec> specs(10, scrip::AgentSpec{scrip::BehaviorKind::kHoarder, 0});
    const auto result = scrip::simulate(params, specs);
    EXPECT_DOUBLE_EQ(result.satisfied_fraction, 0.0);
}

TEST(EdgeScrip, ThresholdZeroNeverVolunteers) {
    scrip::ScripParams params;
    params.num_agents = 10;
    params.rounds = 2000;
    params.seed = 3;
    const auto result = scrip::simulate_uniform(params, 0);
    EXPECT_DOUBLE_EQ(result.satisfied_fraction, 0.0);
}

TEST(EdgeScrip, SpecWidthValidated) {
    scrip::ScripParams params;
    params.num_agents = 5;
    EXPECT_THROW((void)scrip::simulate(params, {}), std::invalid_argument);
}

}  // namespace
}  // namespace bnash
