#!/usr/bin/env python3
"""Fixture tests for scripts/bnash_lint.py, run from ctest.

Three layers:
  1. Known-bad snippets (tests/lint/bad/) trigger every rule at least
     once; waived and clean snippets (tests/lint/good/) stay quiet.
  2. The baseline round-trips: blessing the bad tree silences it, the
     blessed file is valid JSON with stable fingerprints, and findings
     JSON output is well-formed.
  3. The real src/ tree lints clean against the shipped baseline — the
     same invocation verify.sh gates on.

Plain unittest, no third-party deps; skipped entirely when python3 is
missing (CMake only registers the test when an interpreter was found).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "scripts" / "bnash_lint.py"
FIXTURES = REPO / "tests" / "lint"


def run_lint(*args):
    """Returns (exit_code, stdout, findings) with findings parsed from --json."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "findings.json"
        proc = subprocess.run(
            [sys.executable, str(LINT), "--json", str(json_path), *args],
            capture_output=True, text=True, check=False)
        payload = {}
        if json_path.is_file():
            payload = json.loads(json_path.read_text(encoding="utf-8"))
    return proc.returncode, proc.stdout, payload


class BadTree(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.code, cls.out, cls.payload = run_lint(
            "--root", str(FIXTURES), "--src", "bad", "--no-baseline")
        cls.findings = cls.payload.get("findings", [])
        cls.by_rule = {}
        for finding in cls.findings:
            cls.by_rule.setdefault(finding["rule"], []).append(finding)

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.code, 1, self.out)

    def hits(self, rule, path_fragment):
        return [f for f in self.by_rule.get(rule, [])
                if path_fragment in f["path"]]

    def test_walker_charge_fires(self):
        self.assertTrue(self.hits("walker-charge", "bad_walker.cpp"), self.out)

    def test_grant_propagation_fires(self):
        self.assertTrue(self.hits("grant-propagation", "bad_grant.cpp"), self.out)

    def test_naked_thread_fires(self):
        hits = self.hits("naked-thread", "bad_thread.cpp")
        self.assertEqual(len(hits), 1, self.out)  # std::this_thread is quiet

    def test_no_rand_fires_per_occurrence(self):
        hits = self.hits("no-rand", "bad_rand.cpp")
        # rand(), std::rand(), and random_device each fire
        self.assertEqual(len(hits), 3, self.out)

    def test_no_stdout_fires_per_occurrence(self):
        hits = self.hits("no-stdout", "bad_stdout.cpp")
        # cout, printf, and std::printf; cerr and fprintf(stderr) quiet
        self.assertEqual(len(hits), 3, self.out)

    def test_header_guard_fires_on_late_pragma(self):
        self.assertTrue(self.hits("header-guard", "bad_guard.h"), self.out)

    def test_header_guard_fires_on_ifndef_style(self):
        self.assertTrue(self.hits("header-guard", "bad_ifdef_guard.h"), self.out)

    def test_include_hygiene_fires(self):
        hits = self.hits("include-hygiene", "bad_include.cpp")
        messages = " | ".join(f["message"] for f in hits)
        self.assertIn("relative-up", messages)
        self.assertIn("bits/", messages)
        self.assertIn("does not resolve", messages)

    def test_first_include_rule_fires(self):
        hits = self.hits("include-hygiene", "own_header.cpp")
        self.assertTrue(any("own" in f["message"] for f in hits), self.out)

    def test_empty_waiver_reason_does_not_suppress(self):
        self.assertTrue(self.hits("no-rand", "bad_waiver.cpp"), self.out)

    def test_findings_json_shape(self):
        for finding in self.findings:
            for key in ("rule", "path", "line", "message", "fingerprint"):
                self.assertIn(key, finding)
            self.assertGreaterEqual(finding["line"], 1)
            self.assertTrue(finding["fingerprint"].startswith(finding["rule"] + ":"))


class GoodTree(unittest.TestCase):
    def test_waived_and_clean_snippets_pass(self):
        code, out, payload = run_lint(
            "--root", str(FIXTURES), "--src", "good", "--no-baseline")
        self.assertEqual(code, 0, out)
        self.assertEqual(payload.get("findings", []), [], out)


class BaselineRoundTrip(unittest.TestCase):
    def test_bless_then_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            bless = subprocess.run(
                [sys.executable, str(LINT), "--root", str(FIXTURES), "--src", "bad",
                 "--baseline", str(baseline), "--update-baseline"],
                capture_output=True, text=True, check=False)
            self.assertEqual(bless.returncode, 0, bless.stdout + bless.stderr)
            blessed = json.loads(baseline.read_text(encoding="utf-8"))
            self.assertGreater(len(blessed["suppressions"]), 0)

            code, out, payload = run_lint(
                "--root", str(FIXTURES), "--src", "bad", "--baseline", str(baseline))
            self.assertEqual(code, 0, out)
            self.assertEqual(payload.get("fresh", []), [], out)
            # Fingerprints are stable across runs: a re-bless is a no-op.
            subprocess.run(
                [sys.executable, str(LINT), "--root", str(FIXTURES), "--src", "bad",
                 "--baseline", str(baseline), "--update-baseline"],
                capture_output=True, text=True, check=False)
            reblessed = json.loads(baseline.read_text(encoding="utf-8"))
            self.assertEqual(blessed, reblessed)


class RealTree(unittest.TestCase):
    def test_src_lints_clean_with_shipped_baseline(self):
        code, out, _ = run_lint("--root", str(REPO))
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    os.chdir(REPO)  # relative paths in output stay repo-rooted
    unittest.main(verbosity=2)
