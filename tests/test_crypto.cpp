// Tests for the crypto substrate: field axioms, polynomial interpolation,
// Shamir sharing (identity, secrecy, error tolerance), commitments,
// simulated signatures, and circuit compilation.
#include <gtest/gtest.h>

#include <set>

#include "crypto/circuit.h"
#include "crypto/commitment.h"
#include "crypto/field.h"
#include "crypto/polynomial.h"
#include "crypto/shamir.h"
#include "crypto/signature.h"
#include "util/combinatorics.h"
#include "util/rng.h"

namespace bnash::crypto {
namespace {

// ------------------------------------------------------------------- field

TEST(Field, BasicArithmetic) {
    const Fe a{5};
    const Fe b{7};
    EXPECT_EQ(a + b, Fe{12});
    EXPECT_EQ(b - a, Fe{2});
    EXPECT_EQ(a * b, Fe{35});
    EXPECT_EQ(a - b, Fe{kFieldPrime - 2});
}

TEST(Field, ReductionOnConstruction) {
    EXPECT_EQ(Fe{kFieldPrime}, Fe{0});
    EXPECT_EQ(Fe{kFieldPrime + 3}, Fe{3});
}

TEST(Field, NegationAndFromInt) {
    EXPECT_EQ(fe_from_int(-1), Fe{kFieldPrime - 1});
    EXPECT_EQ(fe_from_int(-1) + Fe{1}, Fe{0});
    EXPECT_EQ(fe_from_int(42), Fe{42});
    EXPECT_EQ(-Fe{0}, Fe{0});
}

TEST(Field, InverseIsExact) {
    util::Rng rng{3};
    for (int i = 0; i < 50; ++i) {
        const Fe x = Fe::random(rng);
        if (x.is_zero()) continue;
        EXPECT_EQ(x * x.inverse(), Fe{1});
    }
    EXPECT_THROW((void)Fe{0}.inverse(), std::domain_error);
}

TEST(Field, PowMatchesRepeatedMultiplication) {
    const Fe base{3};
    Fe acc{1};
    for (std::uint64_t e = 0; e < 20; ++e) {
        EXPECT_EQ(base.pow(e), acc);
        acc *= base;
    }
}

TEST(Field, FermatLittleTheorem) {
    util::Rng rng{9};
    for (int i = 0; i < 10; ++i) {
        const Fe x = Fe::random(rng);
        if (x.is_zero()) continue;
        EXPECT_EQ(x.pow(kFieldPrime - 1), Fe{1});
    }
}

// -------------------------------------------------------------- polynomial

TEST(Polynomial, EvalHorner) {
    // p(x) = 2 + 3x + x^2; p(5) = 42.
    const Polynomial p{{Fe{2}, Fe{3}, Fe{1}}};
    EXPECT_EQ(p.eval(Fe{5}), Fe{42});
    EXPECT_EQ(p.eval(Fe{0}), Fe{2});
}

TEST(Polynomial, InterpolateRecoversPolynomial) {
    util::Rng rng{17};
    const auto original = Polynomial::random_with_constant(Fe{123}, 4, rng);
    std::vector<EvalPoint> points;
    for (std::uint64_t x = 1; x <= 5; ++x) {
        points.push_back({Fe{x}, original.eval(Fe{x})});
    }
    const auto recovered = interpolate(points);
    for (std::uint64_t x = 0; x < 20; ++x) {
        EXPECT_EQ(recovered.eval(Fe{x}), original.eval(Fe{x}));
    }
}

TEST(Polynomial, InterpolateAtMatchesFullInterpolation) {
    std::vector<EvalPoint> points{{Fe{1}, Fe{10}}, {Fe{2}, Fe{20}}, {Fe{3}, Fe{40}}};
    const auto poly = interpolate(points);
    EXPECT_EQ(interpolate_at(points, Fe{0}), poly.eval(Fe{0}));
    EXPECT_EQ(interpolate_at(points, Fe{7}), poly.eval(Fe{7}));
}

TEST(Polynomial, DuplicateXRejected) {
    std::vector<EvalPoint> points{{Fe{1}, Fe{10}}, {Fe{1}, Fe{20}}};
    EXPECT_THROW((void)interpolate(points), std::invalid_argument);
}

TEST(Polynomial, LagrangeCoefficientsSumToOneAtAnyPoint) {
    // Interpolating the constant-1 polynomial: coefficients sum to 1.
    const std::vector<Fe> xs{Fe{1}, Fe{4}, Fe{9}};
    const auto weights = lagrange_coefficients(xs, Fe{123});
    Fe total{0};
    for (const Fe w : weights) total += w;
    EXPECT_EQ(total, Fe{1});
}

// ------------------------------------------------------------------ Shamir

class ShamirProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShamirProperty, ShareReconstructIdentity) {
    util::Rng rng{GetParam()};
    const Fe secret = Fe::random(rng);
    const std::size_t n = 3 + rng.next_below(6);
    const std::size_t t = rng.next_below(n);
    const auto shares = share_secret(secret, n, t, rng);
    EXPECT_EQ(reconstruct(shares, t), secret);
    // Any (t+1)-subset reconstructs the same secret.
    const auto subset = util::subsets_of_size(n, t + 1);
    for (std::size_t s = 0; s < std::min<std::size_t>(subset.size(), 5); ++s) {
        std::vector<Share> picked;
        for (const auto index : subset[s]) picked.push_back(shares[index]);
        EXPECT_EQ(reconstruct(picked, t), secret);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShamirProperty, ::testing::Range<std::uint64_t>(1, 33));

TEST(Shamir, SecrecyUpToThreshold) {
    // t shares are jointly uniform: sharing two different secrets with the
    // same dealer randomness-stream produces t-share views that cannot be
    // distinguished statistically. We verify the weaker checkable fact:
    // for every candidate secret s', there exists a degree-t polynomial
    // consistent with any t shares and s' (interpolation through t+1
    // points always succeeds).
    util::Rng rng{7};
    const std::size_t n = 5;
    const std::size_t t = 2;
    const auto shares = share_secret(Fe{1111}, n, t, rng);
    for (const std::uint64_t candidate : {0ULL, 55ULL, 999999ULL}) {
        std::vector<EvalPoint> points{{Fe{0}, Fe{candidate}},
                                      {shares[0].x(), shares[0].value},
                                      {shares[1].x(), shares[1].value}};
        const auto poly = interpolate(points);  // must not throw
        EXPECT_EQ(poly.eval(Fe{0}), Fe{candidate});
        EXPECT_EQ(poly.eval(shares[0].x()), shares[0].value);
    }
}

TEST(Shamir, TooFewSharesThrows) {
    util::Rng rng{8};
    const auto shares = share_secret(Fe{5}, 5, 2, rng);
    std::vector<Share> two{shares[0], shares[1]};
    EXPECT_THROW((void)reconstruct(two, 2), std::invalid_argument);
}

TEST(Shamir, ErrorTolerantReconstruction) {
    util::Rng rng{9};
    const Fe secret{424242};
    // n = 7, t = 1, e = 1 corrupted: 7 >= t+1+2e = 4 -> recoverable with
    // agreement = 6.
    auto shares = share_secret(secret, 7, 1, rng);
    shares[3].value += Fe{1};  // corrupt one share
    const auto recovered = reconstruct_with_errors(shares, 1, 6);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, secret);
}

TEST(Shamir, ErrorReconstructionFailsBeyondBound) {
    util::Rng rng{10};
    auto shares = share_secret(Fe{1}, 4, 1, rng);
    // Corrupt half the shares and demand near-full agreement: no candidate.
    shares[0].value += Fe{5};
    shares[1].value += Fe{9};
    EXPECT_FALSE(reconstruct_with_errors(shares, 1, 4).has_value());
}

TEST(Shamir, AdditiveHomomorphism) {
    // Share-wise addition shares the sum (the BGW addition gate).
    util::Rng rng{11};
    const auto a = share_secret(Fe{100}, 5, 2, rng);
    const auto b = share_secret(Fe{23}, 5, 2, rng);
    std::vector<Share> sum(5);
    for (std::size_t i = 0; i < 5; ++i) sum[i] = Share{i, a[i].value + b[i].value};
    EXPECT_EQ(reconstruct(sum, 2), Fe{123});
}

TEST(Shamir, MultiplicationDoublesDegree) {
    // Share-wise product reconstructs the product only at threshold 2t.
    util::Rng rng{12};
    const auto a = share_secret(Fe{6}, 7, 1, rng);
    const auto b = share_secret(Fe{7}, 7, 1, rng);
    std::vector<Share> product(7);
    for (std::size_t i = 0; i < 7; ++i) {
        product[i] = Share{i, a[i].value * b[i].value};
    }
    EXPECT_EQ(reconstruct(product, 2), Fe{42});  // degree 2t = 2 needs 3 shares
}

// -------------------------------------------------------------- commitment

TEST(Commitment, CommitVerifyRoundTrip) {
    util::Rng rng{13};
    const auto opening = commit_random(Fe{77}, rng);
    const auto c = commit(opening.value, opening.nonce);
    EXPECT_TRUE(verify_commitment(c, opening));
}

TEST(Commitment, BindingAgainstValueChange) {
    util::Rng rng{14};
    const auto opening = commit_random(Fe{77}, rng);
    const auto c = commit(opening.value, opening.nonce);
    Opening forged = opening;
    forged.value = Fe{78};
    EXPECT_FALSE(verify_commitment(c, forged));
    Opening wrong_nonce = opening;
    wrong_nonce.nonce ^= 1;
    EXPECT_FALSE(verify_commitment(c, wrong_nonce));
}

TEST(Commitment, HidingAcrossNonces) {
    // Same value, different nonces: different digests.
    EXPECT_NE(commit(Fe{5}, 1), commit(Fe{5}, 2));
}

// --------------------------------------------------------------- signature

TEST(Signature, SignVerify) {
    util::Rng rng{15};
    KeyRegistry registry(3, rng);
    auto signer = registry.issue_signer(1);
    const auto sv = signer.sign(9999);
    EXPECT_TRUE(registry.verify(sv));
    EXPECT_EQ(sv.signer, 1u);
}

TEST(Signature, TamperedMessageFails) {
    util::Rng rng{16};
    KeyRegistry registry(2, rng);
    auto signer = registry.issue_signer(0);
    auto sv = signer.sign(1);
    sv.message = 2;
    EXPECT_FALSE(registry.verify(sv));
}

TEST(Signature, CrossIdentityForgeryFails) {
    util::Rng rng{17};
    KeyRegistry registry(2, rng);
    auto signer = registry.issue_signer(0);
    auto sv = signer.sign(1);
    sv.signer = 1;  // claim someone else signed it
    EXPECT_FALSE(registry.verify(sv));
}

TEST(Signature, KeysIssuedOnce) {
    util::Rng rng{18};
    KeyRegistry registry(2, rng);
    (void)registry.issue_signer(0);
    EXPECT_THROW((void)registry.issue_signer(0), std::logic_error);
}

// ----------------------------------------------------------------- circuit

TEST(Circuit, EvalBasicGates) {
    Circuit c;
    const auto x = c.input(0);
    const auto y = c.input(1);
    const auto three = c.constant(Fe{3});
    // (x + y) * 3 - x
    c.set_output(c.sub(c.mul(c.add(x, y), three), x));
    const std::vector<Fe> inputs{Fe{2}, Fe{5}};
    EXPECT_EQ(c.eval(inputs), Fe{19});
    EXPECT_EQ(c.num_inputs(), 2u);
    EXPECT_EQ(c.num_mul_gates(), 1u);
}

TEST(Circuit, GateSharing) {
    Circuit c;
    const auto a = c.input(0);
    const auto b = c.input(0);
    EXPECT_EQ(a, b);
    const auto k1 = c.constant(Fe{7});
    const auto k2 = c.constant(Fe{7});
    EXPECT_EQ(k1, k2);
}

TEST(Circuit, OutputRequired) {
    Circuit c;
    (void)c.input(0);
    const std::vector<Fe> inputs{Fe{1}};
    EXPECT_THROW((void)c.eval(inputs), std::logic_error);
}

TEST(Circuit, LookupTableCompilation) {
    // f(x, y) over {0,1,2} x {0,1}: f = 10*x + y.
    std::vector<std::size_t> domain{3, 2};
    std::vector<Fe> table;
    for (std::size_t x = 0; x < 3; ++x) {
        for (std::size_t y = 0; y < 2; ++y) {
            table.push_back(Fe{10 * x + y});
        }
    }
    const auto circuit = compile_lookup_table(domain, table);
    for (std::uint64_t x = 0; x < 3; ++x) {
        for (std::uint64_t y = 0; y < 2; ++y) {
            const std::vector<Fe> inputs{Fe{x}, Fe{y}};
            EXPECT_EQ(circuit.eval(inputs), Fe{10 * x + y});
        }
    }
}

class LookupTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LookupTableProperty, CompiledCircuitMatchesTable) {
    util::Rng rng{GetParam()};
    const std::vector<std::size_t> domain{1 + rng.next_below(3), 1 + rng.next_below(3),
                                          1 + rng.next_below(2)};
    std::vector<Fe> table(util::product_size(domain));
    for (auto& value : table) value = Fe{rng.next_below(1000)};
    const auto circuit = compile_lookup_table(domain, table);
    std::size_t row = 0;
    util::product_for_each(domain, [&](const std::vector<std::size_t>& tuple) {
        std::vector<Fe> inputs;
        for (const auto v : tuple) inputs.push_back(Fe{static_cast<std::uint64_t>(v)});
        EXPECT_EQ(circuit.eval(inputs), table[row]);
        ++row;
        return true;
    });
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookupTableProperty, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bnash::crypto
