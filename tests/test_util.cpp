// Unit and property tests for the util substrate: exact rationals,
// deterministic RNG, combinatorics, linear algebra, LP, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/combinatorics.h"
#include "util/matrix.h"
#include "util/offset_walker.h"
#include "util/rational.h"
#include "util/rng.h"
#include "util/simplex.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/work_counters.h"

namespace bnash::util {
namespace {

// ---------------------------------------------------------------- Rational

TEST(Rational, DefaultIsZero) {
    const Rational r;
    EXPECT_TRUE(r.is_zero());
    EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesSignAndGcd) {
    const Rational r{6, -8};
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
    EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
    const Rational a{1, 3};
    const Rational b{1, 6};
    EXPECT_EQ(a + b, Rational(1, 2));
    EXPECT_EQ(a - b, Rational(1, 6));
    EXPECT_EQ(a * b, Rational(1, 18));
    EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, ComparisonIsExact) {
    // 1/3 < 0.3333333333333333 is false in double but true here vs 33333/100000.
    EXPECT_GT(Rational(1, 3), Rational(33333, 100000));
    EXPECT_LT(Rational(1, 3), Rational(33334, 100000));
}

TEST(Rational, ReciprocalOfZeroThrows) {
    EXPECT_THROW((void)Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, DivisionByZeroThrows) {
    EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, OverflowDetected) {
    const Rational huge{std::numeric_limits<std::int64_t>::max(), 1};
    EXPECT_THROW(huge * huge, RationalOverflow);
}

TEST(Rational, FromDoubleRecoversSimpleFractions) {
    EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
    EXPECT_EQ(Rational::from_double(-0.25), Rational(-1, 4));
    EXPECT_EQ(Rational::from_double(1.0 / 3.0), Rational(1, 3));
    EXPECT_EQ(Rational::from_double(7.0), Rational(7));
}

TEST(Rational, ToStringRoundTrip) {
    EXPECT_EQ(Rational(-3, 4).to_string(), "-3/4");
    EXPECT_EQ(Rational(5).to_string(), "5");
    std::ostringstream os;
    os << Rational(2, 6);
    EXPECT_EQ(os.str(), "1/3");
}

// Property: field axioms on a pseudo-random sample.
class RationalFieldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalFieldProperty, AxiomsHold) {
    Rng rng{GetParam()};
    const auto draw = [&rng] {
        return Rational{rng.next_int(-50, 50), rng.next_int(1, 20)};
    };
    const Rational a = draw(), b = draw(), c = draw();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) {
        EXPECT_EQ(a * a.reciprocal(), Rational(1));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalFieldProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicFromSeed) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
    Rng rng{7};
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowRoughlyUniform) {
    Rng rng{11};
    std::array<int, 8> counts{};
    constexpr int kDraws = 80'000;
    for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(8)];
    for (const int c : counts) {
        EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
    }
}

TEST(Rng, NextIntBoundsInclusive) {
    Rng rng{3};
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.next_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng{5};
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, WeightedSamplingMatchesWeights) {
    Rng rng{13};
    const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
    std::array<int, 4> counts{};
    constexpr int kDraws = 100'000;
    for (int i = 0; i < kDraws; ++i) ++counts[rng.next_weighted(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0], kDraws * 0.1, kDraws * 0.01);
    EXPECT_NEAR(counts[1], kDraws * 0.3, kDraws * 0.015);
    EXPECT_NEAR(counts[3], kDraws * 0.6, kDraws * 0.015);
}

TEST(Rng, ForkIsIndependent) {
    Rng parent{99};
    Rng child = parent.fork();
    // The child must not replay the parent stream.
    Rng parent_copy{99};
    (void)parent_copy.next_u64();  // parent consumed one draw by forking
    EXPECT_EQ(parent.next_u64(), parent_copy.next_u64());
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent.next_u64());
    EXPECT_LT(same, 4);
}

TEST(Rng, ShufflePreservesMultiset) {
    Rng rng{17};
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = values;
    rng.shuffle(shuffled);
    auto sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, values);
}

// ------------------------------------------------------------ Combinatorics

TEST(Combinatorics, SubsetsOfSizeCounts) {
    EXPECT_EQ(subsets_of_size(5, 2).size(), 10u);
    EXPECT_EQ(subsets_of_size(5, 0).size(), 1u);  // the empty set
    EXPECT_EQ(subsets_of_size(3, 4).size(), 0u);
}

TEST(Combinatorics, SubsetsUpToSizeOrderedAndUnique) {
    const auto subsets = subsets_up_to_size(4, 2);
    EXPECT_EQ(subsets.size(), 4u + 6u);
    std::set<std::vector<std::size_t>> unique(subsets.begin(), subsets.end());
    EXPECT_EQ(unique.size(), subsets.size());
    EXPECT_EQ(count_subsets_up_to_size(4, 2), subsets.size());
}

TEST(Combinatorics, ProductForEachVisitsAll) {
    std::vector<std::vector<std::size_t>> seen;
    product_for_each({2, 3}, [&](const std::vector<std::size_t>& t) {
        seen.push_back(t);
        return true;
    });
    ASSERT_EQ(seen.size(), 6u);
    EXPECT_EQ(seen.front(), (std::vector<std::size_t>{0, 0}));
    EXPECT_EQ(seen.back(), (std::vector<std::size_t>{1, 2}));
}

TEST(Combinatorics, ProductForEachEarlyStop) {
    int visits = 0;
    const bool completed = product_for_each({10, 10}, [&](const auto&) {
        return ++visits < 5;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(visits, 5);
}

TEST(Combinatorics, ProductForEachZeroRadixVisitsNothing) {
    int visits = 0;
    const bool completed = product_for_each({3, 0, 2}, [&](const auto&) {
        ++visits;
        return true;
    });
    EXPECT_TRUE(completed);
    EXPECT_EQ(visits, 0);
}

TEST(Combinatorics, RankUnrankRoundTrip) {
    const std::vector<std::size_t> radices{3, 4, 2};
    for (std::uint64_t rank = 0; rank < product_size(radices); ++rank) {
        EXPECT_EQ(product_rank(radices, product_unrank(radices, rank)), rank);
    }
}

TEST(Combinatorics, Binomial) {
    EXPECT_EQ(binomial(10, 3), 120u);
    EXPECT_EQ(binomial(10, 0), 1u);
    EXPECT_EQ(binomial(3, 5), 0u);
    EXPECT_EQ(binomial(52, 5), 2'598'960u);
}

TEST(Combinatorics, SubsetEnumeratorMatchesSubsetsUpToSize) {
    SubsetEnumerator::clear_cache();
    for (std::size_t n = 1; n <= 6; ++n) {
        for (std::size_t k = 1; k <= n; ++k) {
            const SubsetEnumerator enumerator(n, k);
            const auto expected = subsets_up_to_size(n, k);
            ASSERT_EQ(enumerator.size(), expected.size()) << "n=" << n << " k=" << k;
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_EQ(enumerator[i], expected[i]) << "n=" << n << " k=" << k;
            }
        }
    }
}

TEST(Combinatorics, SubsetEnumeratorCachesPerShape) {
    SubsetEnumerator::clear_cache();
    const SubsetEnumerator first(7, 3);
    const SubsetEnumerator second(7, 3);
    // Same (n, max_size): both enumerators share ONE materialized list.
    EXPECT_EQ(&first.items(), &second.items());
    const SubsetEnumerator other(7, 2);
    EXPECT_NE(&first.items(), &other.items());
}

TEST(Combinatorics, RangedProductForEachConcatenatesToFullEnumeration) {
    const std::vector<std::size_t> radices{3, 2, 2};
    std::vector<std::vector<std::size_t>> full;
    product_for_each(radices, [&](const auto& t) {
        full.push_back(t);
        return true;
    });
    std::vector<std::vector<std::size_t>> chunked;
    const std::uint64_t total = product_size(radices);
    for (std::uint64_t lo = 0; lo < total; lo += 5) {
        product_for_each(radices, lo, std::min(total, lo + 5), [&](const auto& t) {
            chunked.push_back(t);
            return true;
        });
    }
    EXPECT_EQ(chunked, full);
}

TEST(Combinatorics, RangedProductForEachEarlyStopAndBounds) {
    int visits = 0;
    EXPECT_FALSE(product_for_each({4, 4}, 2, 14, [&](const auto&) {
        return ++visits < 3;
    }));
    EXPECT_EQ(visits, 3);
    EXPECT_TRUE(product_for_each({4, 4}, 5, 5, [&](const auto&) { return true; }));
    EXPECT_THROW((void)product_for_each({2, 2}, 0, 5, [](const auto&) { return true; }),
                 std::out_of_range);
}

// ------------------------------------------------------------ OffsetWalker
//
// The shared pinned-digit walker must reproduce, bit for bit, the four
// legacy walk orders it replaced (PRs 1-3 hand-rolled each): the dense
// tensor sweep's rank*n rows, the view tensor sweep's per-digit delta
// walk, GameView::materialize's full walk, and the dominance scanner's
// pinned-digit opponent walk. The references below are the legacy loops,
// inlined verbatim over synthetic per-digit offset tables (what a view's
// cell-offset columns look like).

// Random "cell offset" columns: arbitrary non-monotone offsets are fine —
// the walker only ever adds deltas that cancel over complete rows.
std::vector<std::vector<std::uint64_t>> random_columns(Rng& rng, std::size_t digits,
                                                       std::size_t max_radix) {
    std::vector<std::vector<std::uint64_t>> columns(digits);
    for (auto& column : columns) {
        const std::size_t radix = 1 + rng.next_below(max_radix);
        column.resize(radix);
        for (auto& offset : column) offset = rng.next_u64() % 1000;
    }
    return columns;
}

std::uint64_t row_of(const std::vector<std::vector<std::uint64_t>>& columns,
                     const std::vector<std::size_t>& tuple) {
    std::uint64_t row = 0;
    for (std::size_t d = 0; d < tuple.size(); ++d) row += columns[d][tuple[d]];
    return row;
}

std::vector<std::size_t> radices_of(const std::vector<std::vector<std::uint64_t>>& columns) {
    std::vector<std::size_t> radices;
    for (const auto& column : columns) radices.push_back(column.size());
    return radices;
}

OffsetWalker make_walker(const std::vector<std::vector<std::uint64_t>>& columns) {
    OffsetWalker walker;
    for (const auto& column : columns) walker.add_digit(column.data(), column.size());
    return walker;
}

class OffsetWalkerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OffsetWalkerProperty, MatchesFromScratchRowSumsEverywhere) {
    // Legacy order #3 (GameView::materialize): every visited row must be
    // the from-scratch sum of its tuple's offsets, in row-major order.
    Rng rng{GetParam()};
    const auto columns = random_columns(rng, 1 + rng.next_below(4), 4);
    const auto radices = radices_of(columns);
    OffsetWalker walker = make_walker(columns);
    walker.reset();
    std::uint64_t rank = 0;
    do {
        EXPECT_EQ(walker.tuple(), product_unrank(radices, rank));
        EXPECT_EQ(walker.row(), row_of(columns, walker.tuple()));
        ++rank;
    } while (walker.advance());
    EXPECT_EQ(rank, product_size(radices));
    EXPECT_EQ(walker.num_tuples(), product_size(radices));
}

TEST_P(OffsetWalkerProperty, MatchesLegacyViewTensorDeltaWalk) {
    // Legacy order #2 (ViewTensorBase::advance): incremental per-digit
    // deltas with unsigned wrap-around, starting from an arbitrary rank.
    Rng rng{GetParam() + 1000};
    const auto columns = random_columns(rng, 2 + rng.next_below(3), 4);
    const auto radices = radices_of(columns);
    const std::uint64_t total = product_size(radices);
    const std::uint64_t begin = rng.next_u64() % total;

    auto tuple = product_unrank(radices, begin);
    std::uint64_t row = row_of(columns, tuple);
    OffsetWalker walker = make_walker(columns);
    walker.seek(begin);
    for (std::uint64_t rank = begin; rank < total; ++rank) {
        EXPECT_EQ(walker.row(), row) << "rank " << rank;
        EXPECT_EQ(walker.tuple(), tuple);
        // The legacy loop, verbatim.
        for (std::size_t d = radices.size(); d-- > 0;) {
            const std::size_t a = ++tuple[d];
            if (a < radices[d]) {
                row += columns[d][a] - columns[d][a - 1];
                break;
            }
            row += columns[d][0] - columns[d][a - 1];
            tuple[d] = 0;
        }
        (void)walker.advance();
    }
}

TEST_P(OffsetWalkerProperty, BlockDecompositionConcatenatesToFullWalk) {
    // Legacy order #1 (the payoff engine's blocked sweeps): seeking block
    // entries and walking each block reproduces the full enumeration.
    Rng rng{GetParam() + 2000};
    const auto columns = random_columns(rng, 2 + rng.next_below(3), 4);
    const std::uint64_t total = product_size(radices_of(columns));
    std::vector<std::uint64_t> full;
    OffsetWalker walker = make_walker(columns);
    walker.reset();
    do {
        full.push_back(walker.row());
    } while (walker.advance());

    const std::uint64_t block = 1 + rng.next_u64() % 7;
    std::vector<std::uint64_t> chunked;
    for (std::uint64_t lo = 0; lo < total; lo += block) {
        const std::uint64_t hi = std::min(total, lo + block);
        OffsetWalker worker = make_walker(columns);
        worker.seek(lo);
        for (std::uint64_t rank = lo; rank < hi; ++rank) {
            chunked.push_back(worker.row());
            (void)worker.advance();
        }
    }
    EXPECT_EQ(chunked, full);
}

TEST_P(OffsetWalkerProperty, PinnedDigitMatchesLegacyOpponentWalk) {
    // Legacy order #4 (for_each_opponent_base): one digit pinned, the
    // rest enumerated row-major with the pinned contribution in every row.
    Rng rng{GetParam() + 3000};
    const auto columns = random_columns(rng, 2 + rng.next_below(3), 4);
    const auto radices = radices_of(columns);
    const std::size_t n = columns.size();
    const std::size_t pinned = rng.next_below(n);
    const std::size_t value = rng.next_below(radices[pinned]);

    // The legacy loop, verbatim (generalized from pin-at-0 to pin-at-v).
    std::vector<std::uint64_t> expected;
    {
        std::vector<std::size_t> tuple(n, 0);
        std::uint64_t row = 0;
        for (std::size_t p = 0; p < n; ++p) {
            row += columns[p][p == pinned ? value : 0];
        }
        while (true) {
            expected.push_back(row);
            std::size_t d = n;
            while (d-- > 0) {
                if (d == pinned) continue;
                if (++tuple[d] < radices[d]) {
                    row += columns[d][tuple[d]] - columns[d][tuple[d] - 1];
                    break;
                }
                row -= columns[d][tuple[d] - 1] - columns[d][0];
                tuple[d] = 0;
            }
            if (d == static_cast<std::size_t>(-1)) break;
        }
    }

    OffsetWalker walker;
    for (std::size_t p = 0; p < n; ++p) {
        if (p == pinned) {
            walker.add_pinned_digit(columns[p].data(), value);
        } else {
            walker.add_digit(columns[p].data(), columns[p].size());
        }
    }
    walker.reset();
    std::vector<std::uint64_t> actual;
    do {
        actual.push_back(walker.row());
    } while (walker.advance());
    EXPECT_EQ(actual, expected);

    // Pinned walk == the full walk filtered to tuples with digit = value.
    OffsetWalker full = make_walker(columns);
    full.reset();
    std::vector<std::uint64_t> filtered;
    do {
        if (full.tuple()[pinned] == value) filtered.push_back(full.row());
    } while (full.advance());
    EXPECT_EQ(actual, filtered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OffsetWalkerProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(OffsetWalker, ResetAppliesExternalBase) {
    const std::vector<std::vector<std::uint64_t>> columns{{10, 20}, {1, 2, 3}};
    OffsetWalker walker = make_walker(columns);
    walker.reset(100);
    EXPECT_EQ(walker.row(), 100u + 10u + 1u);
    // Rebase below zero wraps and cancels over a complete row sum.
    walker.reset(std::uint64_t{0} - 11);
    EXPECT_EQ(walker.row(), 0u);
}

TEST(OffsetWalker, SeekValidatesRange) {
    const std::vector<std::vector<std::uint64_t>> columns{{0, 1}, {0, 1, 2}};
    OffsetWalker walker = make_walker(columns);
    walker.seek(5);
    EXPECT_EQ(walker.tuple(), (std::vector<std::size_t>{1, 2}));
    EXPECT_THROW(walker.seek(6), std::out_of_range);
    EXPECT_THROW(walker.add_digit(columns[0].data(), 0), std::invalid_argument);
}

TEST(OffsetWalker, LowestChangedTracksCarries) {
    const std::vector<std::vector<std::uint64_t>> columns{{0, 0}, {0, 0}};
    OffsetWalker walker = make_walker(columns);
    walker.reset();
    ASSERT_TRUE(walker.advance());  // 00 -> 01
    EXPECT_EQ(walker.lowest_changed(), 1u);
    ASSERT_TRUE(walker.advance());  // 01 -> 10: both digits moved
    EXPECT_EQ(walker.lowest_changed(), 0u);
    ASSERT_TRUE(walker.advance());  // 10 -> 11
    EXPECT_EQ(walker.lowest_changed(), 1u);
    EXPECT_FALSE(walker.advance());
    EXPECT_EQ(walker.digit_moves(), 6u);  // 1 + 2 + 1 + 2 digit touches
}

TEST(WorkCounters, AccumulatesAndResets) {
    work_counters_reset();
    work_counters_add(5, 7);
    work_counters_add(1, 2);
    const auto snapshot = work_counters_snapshot();
    EXPECT_EQ(snapshot.cells_visited, 6u);
    EXPECT_EQ(snapshot.offsets_advanced, 9u);
    work_counters_reset();
    EXPECT_EQ(work_counters_snapshot().cells_visited, 0u);
}

// ------------------------------------------------------------------ Matrix

TEST(Matrix, SolveExactSystem) {
    // x + 2y = 5 ; 3x - y = 1  =>  x = 1, y = 2
    MatrixQ a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = -1;
    const auto x = solve_linear_system(a, std::vector<Rational>{5, 1});
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ((*x)[0], Rational(1));
    EXPECT_EQ((*x)[1], Rational(2));
}

TEST(Matrix, SingularSystemReturnsNullopt) {
    MatrixQ a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_FALSE(solve_linear_system(a, std::vector<Rational>{1, 2}).has_value());
}

TEST(Matrix, MultiplyIdentity) {
    const auto eye = MatrixD::identity(3);
    const std::vector<double> x{1.5, -2.0, 3.25};
    EXPECT_EQ(multiply(eye, x), x);
}

class MatrixSolveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixSolveProperty, SolutionSatisfiesSystem) {
    Rng rng{GetParam()};
    const std::size_t n = 1 + rng.next_below(5);
    MatrixQ a(n, n);
    std::vector<Rational> b(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.next_int(-9, 9);
        b[r] = rng.next_int(-9, 9);
    }
    const auto x = solve_linear_system(a, b);
    if (!x.has_value()) return;  // singular draw: nothing to verify
    const auto ax = multiply(a, *x);
    for (std::size_t r = 0; r < n; ++r) EXPECT_EQ(ax[r], b[r]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixSolveProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ----------------------------------------------------------------- Simplex

TEST(Simplex, SimpleMaximization) {
    // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), z = 36.
    LpProblem lp;
    lp.objective = {3, 5};
    lp.constraints = {
        {{1, 0}, LpRelation::kLessEqual, 4},
        {{0, 2}, LpRelation::kLessEqual, 12},
        {{3, 2}, LpRelation::kLessEqual, 18},
    };
    const auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(solution.objective_value, 36.0, 1e-7);
    EXPECT_NEAR(solution.x[0], 2.0, 1e-7);
    EXPECT_NEAR(solution.x[1], 6.0, 1e-7);
}

TEST(Simplex, DetectsUnbounded) {
    LpProblem lp;
    lp.objective = {1, 0};
    lp.constraints = {{{0, 1}, LpRelation::kLessEqual, 5}};
    EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasible) {
    LpProblem lp;
    lp.objective = {1};
    lp.constraints = {
        {{1}, LpRelation::kLessEqual, 1},
        {{1}, LpRelation::kGreaterEqual, 2},
    };
    EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, EqualityConstraints) {
    // max x + y st x + y = 3, x <= 2 => z = 3.
    LpProblem lp;
    lp.objective = {1, 1};
    lp.constraints = {
        {{1, 1}, LpRelation::kEqual, 3},
        {{1, 0}, LpRelation::kLessEqual, 2},
    };
    const auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(solution.objective_value, 3.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalized) {
    // x >= 1 expressed as -x <= -1; max -x => x = 1.
    LpProblem lp;
    lp.objective = {-1};
    lp.constraints = {{{-1}, LpRelation::kLessEqual, -1}};
    const auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(solution.x[0], 1.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
    // Classic cycling-prone instance (Beale); Bland's rule must terminate.
    LpProblem lp;
    lp.objective = {0.75, -150, 0.02, -6};
    lp.constraints = {
        {{0.25, -60, -0.04, 9}, LpRelation::kLessEqual, 0},
        {{0.5, -90, -0.02, 3}, LpRelation::kLessEqual, 0},
        {{0, 0, 1, 0}, LpRelation::kLessEqual, 1},
    };
    const auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(solution.objective_value, 0.05, 1e-7);
}

// Property: on random feasible-by-construction LPs, simplex matches a
// brute-force grid check as an upper bound witness (the simplex optimum
// must weakly dominate every feasible grid point).
class SimplexDominanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexDominanceProperty, OptimumDominatesFeasiblePoints) {
    Rng rng{GetParam()};
    const std::size_t num_vars = 2;
    LpProblem lp;
    lp.objective = {rng.next_double() * 4 - 2, rng.next_double() * 4 - 2};
    for (int c = 0; c < 3; ++c) {
        lp.constraints.push_back(
            {{rng.next_double() * 2, rng.next_double() * 2}, LpRelation::kLessEqual,
             1.0 + rng.next_double() * 4});
    }
    const auto solution = solve_lp(lp);
    if (solution.status != LpStatus::kOptimal) return;  // unbounded draws allowed
    for (double x = 0; x <= 5.0; x += 0.5) {
        for (double y = 0; y <= 5.0; y += 0.5) {
            bool feasible = true;
            for (const auto& constraint : lp.constraints) {
                if (constraint.coefficients[0] * x + constraint.coefficients[1] * y >
                    constraint.rhs + 1e-9) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible) continue;
            const double value = lp.objective[0] * x + lp.objective[1] * y;
            EXPECT_LE(value, solution.objective_value + 1e-6)
                << "feasible point (" << x << "," << y << ") beats simplex; vars="
                << num_vars;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexDominanceProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ------------------------------------------------------------------- Stats

TEST(Stats, Summary) {
    const std::vector<double> values{1, 2, 3, 4};
    const auto s = summarize(values);
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 4);
}

TEST(Stats, Percentile) {
    std::vector<double> values{4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(values, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(values, 0.5), 2.5);
}

TEST(Stats, EntropyUniformIsLogN) {
    const std::vector<double> counts{10, 10, 10, 10};
    EXPECT_NEAR(entropy_bits(counts), 2.0, 1e-12);
}

TEST(Stats, GiniExtremes) {
    EXPECT_NEAR(gini({1, 1, 1, 1}), 0.0, 1e-12);
    EXPECT_GT(gini({0, 0, 0, 100}), 0.7);
}

TEST(Stats, TotalVariation) {
    const std::vector<double> p{0.5, 0.5, 0.0};
    const std::vector<double> q{0.0, 0.5, 0.5};
    EXPECT_DOUBLE_EQ(total_variation(p, q), 0.5);
    EXPECT_DOUBLE_EQ(total_variation(p, p), 0.0);
}

// ------------------------------------------------------------------- Table

TEST(Table, FormatsAlignedColumns) {
    Table table({"n", "value"});
    table.add_row({"1", "alpha"});
    table.add_row({"10", "b"});
    const auto text = table.to_string();
    EXPECT_NE(text.find("| n  | value |"), std::string::npos);
    EXPECT_NE(text.find("| 10 | b     |"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
    Table table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
    Table table({"a", "b"});
    table.add_row({"1", "2"});
    EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(Table, FmtHelpers) {
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(std::size_t{42}), "42");
    EXPECT_EQ(Table::fmt(true), "yes");
}

}  // namespace
}  // namespace bnash::util
