// Fixture: explicitly seeded deterministic randomness and stderr output
// are both fine — no-rand / no-stdout must stay quiet. The string and
// comment mentions of rand() and std::cout must not trigger either.
#include <iostream>
#include <random>
#include <string>

namespace bnash::game {

// Documentation that talks about rand() and std::cout is not a finding.
int seeded_choice(std::uint64_t seed, int actions) {
    std::mt19937_64 rng(seed);
    const std::string note = "never call rand() or std::cout << in here";
    std::cerr << note << "\n";
    return static_cast<int>(rng() % static_cast<std::uint64_t>(actions));
}

}  // namespace bnash::game
