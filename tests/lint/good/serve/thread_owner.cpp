// Fixture: serve/ is a sanctioned concurrency owner — std::jthread here
// must NOT trigger naked-thread.
#include <thread>
#include <vector>

namespace bnash::serve {

void spawn_sessions(std::size_t count) {
    std::vector<std::jthread> threads;
    for (std::size_t i = 0; i < count; ++i) {
        threads.emplace_back([] {});
    }
}

}  // namespace bnash::serve
