// Fixture: a long leading comment block is fine — #pragma once only has
// to come before the first line of actual code, matching the repo's
// comment-header-then-pragma idiom.
//
// More commentary to make the point.
#pragma once

#include <cstddef>

namespace bnash::util {

inline std::size_t clean_fixture() { return 11; }

}  // namespace bnash::util
