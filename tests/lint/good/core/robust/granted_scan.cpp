// Fixture: a pooled run_blocks call whose enclosing function consults the
// active grant — grant-propagation must stay quiet without a waiver.
#include <cstddef>

namespace bnash::util {
struct ExecutionGrant {
    bool expired() const { return false; }
};
ExecutionGrant* active_grant() noexcept;
struct Pool {
    template <typename Fn>
    void run_blocks(std::size_t blocks, const Fn& fn) {
        for (std::size_t b = 0; b < blocks; ++b) fn(b);
    }
};
Pool& global_pool();
}

namespace bnash::core {

void granted_scan(std::size_t blocks) {
    bnash::util::ExecutionGrant* const grant = bnash::util::active_grant();
    bnash::util::global_pool().run_blocks(blocks, [&](std::size_t) {
        if (grant != nullptr && grant->expired()) return;
    });
}

}  // namespace bnash::core
