// Fixture: a grant-unaware run_blocks call with a documented waiver —
// grant-propagation must stay quiet.
#include <cstddef>

namespace bnash::util {
struct Pool {
    template <typename Fn>
    void run_blocks(std::size_t blocks, const Fn& fn) {
        for (std::size_t b = 0; b < blocks; ++b) fn(b);
    }
};
Pool& global_pool();
}

namespace bnash::core {

void waived_scan(std::size_t blocks) {
    // lint: grant-ok(fixture blocks are empty; there is no work a budget
    // could account for)
    bnash::util::global_pool().run_blocks(blocks, [](std::size_t) {});
}

}  // namespace bnash::core
