// Fixture: an advance loop that charges work counters in its enclosing
// function — walker-charge must stay quiet without any waiver.
#include <cstdint>

namespace bnash::util {
void work_counters_add(std::uint64_t cells, std::uint64_t offsets) noexcept;
}

namespace bnash::core {

struct TinyWalker {
    std::uint64_t row = 0;
    std::uint64_t moves = 0;
    bool advance() {
        ++moves;
        return ++row < 8;
    }
    std::uint64_t digit_moves() const { return moves; }
};

std::uint64_t sum_rows_charged(TinyWalker& walker) {
    std::uint64_t total = 0;
    std::uint64_t cells = 0;
    do {
        total += walker.row;
        ++cells;
    } while (walker.advance());
    bnash::util::work_counters_add(cells, walker.digit_moves());
    return total;
}

}  // namespace bnash::core
