// Fixture: an uncharged advance loop carrying an explicit multi-line
// waiver — walker-charge must stay quiet.
#include <cstdint>

namespace bnash::core {

struct TinyWalker {
    std::uint64_t row = 0;
    bool advance() { return ++row < 8; }
};

std::uint64_t sum_rows_waived(TinyWalker& walker) {
    std::uint64_t total = 0;
    do {
        total += walker.row;
        // lint: no-charge(fixture loop over eight constant rows; nothing a
        // work budget could meaningfully gate)
    } while (walker.advance());
    return total;
}

}  // namespace bnash::core
