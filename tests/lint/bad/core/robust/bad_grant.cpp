// Fixture: a pooled run_blocks call whose enclosing function shows no
// grant awareness and carries no waiver — must trigger grant-propagation.
#include "util/thread_pool.h"

namespace bnash::core {

void scan_everything(std::size_t blocks) {
    bnash::util::global_pool().run_blocks(blocks, [](std::size_t) {});
}

}  // namespace bnash::core
