// Fixture: an OffsetWalker advance loop that never charges work counters
// and carries no waiver — must trigger walker-charge.
#include "util/offset_walker.h"

namespace bnash::core {

std::uint64_t sum_rows(bnash::util::OffsetWalker& walker, std::uint64_t count) {
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        total += walker.row();
        (void)walker.advance();
    }
    return total;
}

}  // namespace bnash::core
