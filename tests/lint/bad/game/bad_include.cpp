// Fixture: include-hygiene violations — a relative-up include, a libstdc++
// internal header, and a quoted include that resolves nowhere.
#include "../core/robust/bad_walker.h"
#include <bits/stdc++.h>
#include "game/does_not_exist.h"

namespace bnash::game {

int include_fixture() { return 0; }

}  // namespace bnash::game
