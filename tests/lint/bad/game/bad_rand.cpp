// Fixture: ambient randomness in library code — must trigger no-rand on
// the rand() and std::rand() calls and the std::random_device.
#include <cstdlib>
#include <random>

namespace bnash::game {

int noisy_choice(int actions) {
    std::random_device entropy;
    return static_cast<int>((rand() + std::rand() + entropy()) % actions);
}

}  // namespace bnash::game
