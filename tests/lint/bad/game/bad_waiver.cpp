// Fixture: a waiver with an empty reason does not parse — no-rand must
// still fire despite the attempted suppression.
#include <cstdlib>

namespace bnash::game {

int lazy_waiver(int actions) {
    // lint: rand-ok()
    return rand() % actions;
}

}  // namespace bnash::game
