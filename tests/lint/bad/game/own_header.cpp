// Fixture: the unit's own header exists but is not the first include —
// must trigger include-hygiene's first-include rule.
#include "util/offset_walker.h"
#include "game/own_header.h"

namespace bnash::game {

int own_header_fixture() { return 3; }

}  // namespace bnash::game
