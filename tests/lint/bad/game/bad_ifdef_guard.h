// Fixture: #ifndef-style include guard — must trigger header-guard (the
// repo standardizes on #pragma once).
#ifndef BNASH_TESTS_LINT_BAD_GAME_BAD_IFDEF_GUARD_H
#define BNASH_TESTS_LINT_BAD_GAME_BAD_IFDEF_GUARD_H

namespace bnash::game {

inline int guarded_fixture() { return 1; }

}  // namespace bnash::game

#endif
