// Fixture: header that reaches code before #pragma once — must trigger
// header-guard.
#include <cstddef>

namespace bnash::game {

inline std::size_t fixture_value() { return 7; }

}  // namespace bnash::game
