#pragma once

namespace bnash::game {

int own_header_fixture();

}  // namespace bnash::game
