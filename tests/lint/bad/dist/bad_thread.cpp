// Fixture: raw thread construction outside util::ThreadPool / src/serve —
// must trigger naked-thread (std::this_thread uses must NOT trigger it).
#include <chrono>
#include <thread>

namespace bnash::dist {

void fire_and_forget() {
    std::thread worker([] { std::this_thread::sleep_for(std::chrono::seconds(1)); });
    worker.join();
}

}  // namespace bnash::dist
