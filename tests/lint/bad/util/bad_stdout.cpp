// Fixture: stdout writes in library code — must trigger no-stdout on the
// std::cout insertion and both printf spellings (std::cerr and
// std::fprintf(stderr, ...) are fine).
#include <cstdio>
#include <iostream>

namespace bnash::util {

void report_progress(int percent) {
    std::cout << "progress: " << percent << "\n";
    printf("progress: %d\n", percent);
    std::printf("progress: %d\n", percent);
    std::cerr << "errors go here\n";
    std::fprintf(stderr, "errors go here too: %d\n", percent);
}

}  // namespace bnash::util
