// Golden equivalence tests for the stride-indexed payoff engine: the
// single-sweep deviation/expected kernels must match the seed's naive
// per-(player, action) implementation exactly (Rational path) and to
// floating-point tolerance (double path), and the blocked sweep must be
// deterministic across serial and threaded execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "game/payoff_engine.h"
#include "solver/verification.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/work_counters.h"

namespace bnash::game {
namespace {

using util::Rational;

std::vector<std::size_t> random_shape(util::Rng& rng, std::size_t players) {
    std::vector<std::size_t> counts(players);
    for (auto& count : counts) count = static_cast<std::size_t>(rng.next_int(2, 4));
    return counts;
}

MixedProfile random_mixed(const NormalFormGame& game, util::Rng& rng, bool with_zeros) {
    MixedProfile profile(game.num_players());
    for (std::size_t i = 0; i < game.num_players(); ++i) {
        MixedStrategy s(game.num_actions(i), 0.0);
        double total = 0.0;
        for (auto& p : s) {
            p = (with_zeros && rng.next_bool(0.4)) ? 0.0 : rng.next_double() + 1e-3;
            total += p;
        }
        if (total == 0.0) {
            s[0] = 1.0;
            total = 1.0;
        }
        for (auto& p : s) p /= total;
        profile[i] = std::move(s);
    }
    return profile;
}

ExactMixedProfile random_exact(const NormalFormGame& game, util::Rng& rng) {
    ExactMixedProfile profile(game.num_players());
    for (std::size_t i = 0; i < game.num_players(); ++i) {
        ExactMixedStrategy s(game.num_actions(i), Rational{0});
        std::int64_t total = 0;
        std::vector<std::int64_t> weights(s.size());
        for (auto& w : weights) {
            w = rng.next_int(0, 4);
            total += w;
        }
        if (total == 0) {
            weights[0] = 1;
            total = 1;
        }
        for (std::size_t a = 0; a < s.size(); ++a) s[a] = Rational{weights[a], total};
        profile[i] = std::move(s);
    }
    return profile;
}

TEST(PayoffEngine, StridesRankMatchesProfileRank) {
    util::Rng rng{7};
    for (std::size_t players = 2; players <= 4; ++players) {
        const auto g = NormalFormGame::random(random_shape(rng, players), rng);
        const PayoffEngine engine(g);
        for (int trial = 0; trial < 20; ++trial) {
            PureProfile profile(players);
            for (std::size_t i = 0; i < players; ++i) {
                profile[i] = static_cast<std::size_t>(
                    rng.next_int(0, static_cast<std::int64_t>(g.num_actions(i)) - 1));
            }
            EXPECT_EQ(engine.rank_of(profile), g.profile_rank(profile));
        }
    }
}

TEST(PayoffEngine, SingleSweepMatchesNaiveDouble) {
    util::Rng rng{11};
    for (std::size_t players = 2; players <= 4; ++players) {
        for (int trial = 0; trial < 5; ++trial) {
            const auto g = NormalFormGame::random(random_shape(rng, players), rng);
            const PayoffEngine engine(g);
            for (const bool with_zeros : {false, true}) {
                const auto profile = random_mixed(g, rng, with_zeros);
                const auto fast = engine.deviation_payoffs_all(profile);
                const auto slow = naive::deviation_payoffs_all(g, profile);
                ASSERT_EQ(fast.size(), slow.size());
                for (std::size_t i = 0; i < fast.size(); ++i) {
                    for (std::size_t a = 0; a < fast[i].size(); ++a) {
                        EXPECT_NEAR(fast[i][a], slow[i][a], 1e-9)
                            << "players=" << players << " i=" << i << " a=" << a;
                    }
                }
            }
        }
    }
}

TEST(PayoffEngine, SingleSweepMatchesNaiveExact) {
    util::Rng rng{13};
    for (std::size_t players = 2; players <= 4; ++players) {
        for (int trial = 0; trial < 3; ++trial) {
            const auto g = NormalFormGame::random(random_shape(rng, players), rng);
            const PayoffEngine engine(g);
            const auto profile = random_exact(g, rng);
            const auto fast = engine.deviation_payoffs_all_exact(profile);
            for (std::size_t i = 0; i < fast.size(); ++i) {
                for (std::size_t a = 0; a < fast[i].size(); ++a) {
                    // Byte-identical: exact arithmetic admits no tolerance.
                    EXPECT_EQ(fast[i][a], naive::deviation_payoff_exact(g, profile, i, a))
                        << "players=" << players << " i=" << i << " a=" << a;
                }
            }
        }
    }
}

TEST(PayoffEngine, ExpectedPayoffIsTableContraction) {
    util::Rng rng{17};
    const auto g = NormalFormGame::random({3, 4, 3}, rng);
    const PayoffEngine engine(g);
    const auto profile = random_mixed(g, rng, false);
    const auto dev = engine.deviation_payoffs_all(profile);
    const auto expected = engine.expected_payoffs(profile);
    for (std::size_t i = 0; i < g.num_players(); ++i) {
        double contraction = 0.0;
        for (std::size_t a = 0; a < dev[i].size(); ++a) {
            contraction += profile[i][a] * dev[i][a];
        }
        EXPECT_NEAR(expected[i], contraction, 1e-9);
    }
    // Exact mirror of the same identity.
    const auto exact_profile = random_exact(g, rng);
    const auto exact_dev = engine.deviation_payoffs_all_exact(exact_profile);
    const auto exact_expected = engine.expected_payoffs_exact(exact_profile);
    for (std::size_t i = 0; i < g.num_players(); ++i) {
        Rational contraction{0};
        for (std::size_t a = 0; a < exact_dev[i].size(); ++a) {
            contraction += exact_profile[i][a] * exact_dev[i][a];
        }
        EXPECT_EQ(exact_expected[i], contraction);
    }
}

TEST(PayoffEngine, DeviationRowMatchesFullTable) {
    util::Rng rng{19};
    const auto g = NormalFormGame::random({4, 3, 4}, rng);
    const PayoffEngine engine(g);
    const auto profile = random_mixed(g, rng, true);
    const auto dev = engine.deviation_payoffs_all(profile);
    for (std::size_t i = 0; i < g.num_players(); ++i) {
        const auto row = engine.deviation_row(profile, i);
        ASSERT_EQ(row.size(), dev[i].size());
        for (std::size_t a = 0; a < row.size(); ++a) {
            EXPECT_NEAR(row[a], dev[i][a], 1e-12);
        }
    }
}

TEST(PayoffEngine, BestResponsesAndRegretMatchGameApi) {
    util::Rng rng{23};
    const auto g = NormalFormGame::random({5, 5}, rng);
    const PayoffEngine engine(g);
    const auto profile = random_mixed(g, rng, false);
    for (std::size_t i = 0; i < g.num_players(); ++i) {
        EXPECT_EQ(engine.best_responses(profile, i, 1e-9), g.best_responses(profile, i));
    }
    EXPECT_DOUBLE_EQ(engine.regret(profile), g.regret(profile));
}

TEST(PayoffEngine, ThreadedAndSerialSweepsAreBitIdentical) {
    util::Rng rng{29};
    // 32^3 = 32768 profiles: two parallel blocks, so the blocked merge
    // path (and on multi-core hosts the pool dispatch) is exercised.
    const auto g = NormalFormGame::random({32, 32, 32}, rng);
    const PayoffEngine engine(g);
    const auto profile = random_mixed(g, rng, false);
    const auto threaded = engine.deviation_payoffs_all(profile, SweepMode::kAuto);
    const auto serial = engine.deviation_payoffs_all(profile, SweepMode::kSerial);
    ASSERT_EQ(threaded.size(), serial.size());
    for (std::size_t i = 0; i < threaded.size(); ++i) {
        for (std::size_t a = 0; a < threaded[i].size(); ++a) {
            // Bitwise, not near: block decomposition is fixed and partial
            // tables merge in block order regardless of worker count.
            EXPECT_EQ(threaded[i][a], serial[i][a]);
        }
    }
    // Re-running must also be deterministic.
    const auto again = engine.deviation_payoffs_all(profile, SweepMode::kAuto);
    for (std::size_t i = 0; i < threaded.size(); ++i) {
        for (std::size_t a = 0; a < threaded[i].size(); ++a) {
            EXPECT_EQ(threaded[i][a], again[i][a]);
        }
    }
    const auto expected_threaded = engine.expected_payoffs(profile, SweepMode::kAuto);
    const auto expected_serial = engine.expected_payoffs(profile, SweepMode::kSerial);
    for (std::size_t i = 0; i < expected_threaded.size(); ++i) {
        EXPECT_EQ(expected_threaded[i], expected_serial[i]);
    }
}

// --------------------------------------------------- sparse-support sweeps

// Support-k profile: exactly `support` actions per player get mass.
MixedProfile random_support_profile(const NormalFormGame& game, util::Rng& rng,
                                    std::size_t support) {
    MixedProfile profile(game.num_players());
    for (std::size_t i = 0; i < game.num_players(); ++i) {
        MixedStrategy s(game.num_actions(i), 0.0);
        std::vector<std::size_t> actions(game.num_actions(i));
        for (std::size_t a = 0; a < actions.size(); ++a) actions[a] = a;
        rng.shuffle(actions);
        const std::size_t width = std::min(support, actions.size());
        double total = 0.0;
        for (std::size_t j = 0; j < width; ++j) {
            s[actions[j]] = rng.next_double() + 0.1;
            total += s[actions[j]];
        }
        for (auto& p : s) p /= total;
        profile[i] = std::move(s);
    }
    return profile;
}

TEST(PayoffEngine, SparseSweepsAreBitIdenticalToDense) {
    // The sparse walk enumerates exactly the profiles the dense sweep
    // would not have skipped, in the same order, with partial sums cut at
    // the same dense block boundaries — so doubles match BITWISE, not
    // just to tolerance, in both sweep modes and at every support width
    // (including degenerate single-support point masses).
    util::Rng rng{41};
    for (int trial = 0; trial < 12; ++trial) {
        const std::size_t players = 2 + static_cast<std::size_t>(trial % 3);
        const auto g = NormalFormGame::random(random_shape(rng, players), rng);
        const PayoffEngine engine(g);
        const std::size_t support = 1 + static_cast<std::size_t>(trial % 3);
        const auto profile = random_support_profile(g, rng, support);
        for (const auto mode : {SweepMode::kSerial, SweepMode::kAuto}) {
            EXPECT_EQ(engine.expected_payoffs_sparse(profile, mode),
                      engine.expected_payoffs(profile, mode))
                << "trial " << trial;
            EXPECT_EQ(engine.deviation_payoffs_all_sparse(profile, mode),
                      engine.deviation_payoffs_all(profile, mode))
                << "trial " << trial;
        }
        for (std::size_t i = 0; i < players; ++i) {
            EXPECT_EQ(engine.expected_payoff_sparse(profile, i),
                      engine.expected_payoff(profile, i))
                << "trial " << trial;
        }
    }
}

TEST(PayoffEngine, SparseExactSweepsMatchDense) {
    util::Rng rng{43};
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t players = 2 + static_cast<std::size_t>(trial % 2);
        const auto g = NormalFormGame::random(random_shape(rng, players), rng);
        const PayoffEngine engine(g);
        // random_exact draws weight 0 with probability 1/5 per action, so
        // sparse supports occur naturally; force a point mass sometimes.
        auto profile = random_exact(g, rng);
        if (trial % 3 == 0) {
            for (auto& s : profile) {
                std::fill(s.begin(), s.end(), Rational{0});
                s[0] = Rational{1};
            }
        }
        EXPECT_EQ(engine.expected_payoffs_exact_sparse(profile),
                  engine.expected_payoffs_exact(profile));
        EXPECT_EQ(engine.deviation_payoffs_all_exact_sparse(profile),
                  engine.deviation_payoffs_all_exact(profile));
        for (std::size_t i = 0; i < players; ++i) {
            EXPECT_EQ(engine.expected_payoff_exact_sparse(profile, i),
                      engine.expected_payoff_exact(profile, i));
        }
    }
}

TEST(PayoffEngine, SparseMultiBlockMatchesDenseBitwise) {
    // > kParallelBlock dense profiles with a support-2 profile: the
    // sparse sweep's support-space blocks are cut at the DENSE block
    // boundaries, so threaded partial-sum merges group identically and
    // doubles still match bitwise.
    util::Rng rng{47};
    const auto g = NormalFormGame::random({8, 8, 8, 8, 8, 8}, rng);  // 2^18 profiles
    ASSERT_GT(g.num_profiles(), PayoffEngine::kParallelBlock);
    const PayoffEngine engine(g);
    const auto profile = random_support_profile(g, rng, 2);
    for (const auto mode : {SweepMode::kSerial, SweepMode::kAuto}) {
        EXPECT_EQ(engine.deviation_payoffs_all_sparse(profile, mode),
                  engine.deviation_payoffs_all(profile, mode));
        EXPECT_EQ(engine.expected_payoffs_sparse(profile, mode),
                  engine.expected_payoffs(profile, mode));
    }
}

TEST(PayoffEngine, SparseSweepVisitsOnlyTheSupport) {
    // The work counters certify the claimed asymptotics: a support-1
    // profile on a 3x3x3 game costs the dense expected sweep 27 rows and
    // the sparse sweep exactly 1.
    util::Rng rng{53};
    const auto g = NormalFormGame::random({3, 3, 3}, rng);
    const PayoffEngine engine(g);
    MixedProfile point(3, MixedStrategy(3, 0.0));
    for (auto& s : point) s[1] = 1.0;
    util::work_counters_reset();
    (void)engine.expected_payoffs(point, SweepMode::kSerial);
    const auto dense = util::work_counters_snapshot();
    util::work_counters_reset();
    (void)engine.expected_payoffs_sparse(point, SweepMode::kSerial);
    const auto sparse = util::work_counters_snapshot();
    EXPECT_EQ(dense.cells_visited, 27u);
    EXPECT_EQ(sparse.cells_visited, 1u);
    EXPECT_LT(sparse.offsets_advanced, dense.offsets_advanced);
}

TEST(PayoffEngine, ValidatesProfileShape) {
    util::Rng rng{31};
    const auto g = NormalFormGame::random({2, 3}, rng);
    const PayoffEngine engine(g);
    EXPECT_THROW((void)engine.deviation_payoffs_all({{0.5, 0.5}}), std::invalid_argument);
    EXPECT_THROW((void)engine.deviation_payoffs_all({{0.5, 0.5}, {1.0}}),
                 std::invalid_argument);
}

TEST(PayoffEngine, VerificationAgreesWithEngine) {
    // pure_nash_equilibria now walks ranks with stride deltas; the result
    // must agree with a per-profile is_pure_nash check.
    util::Rng rng{37};
    const auto g = NormalFormGame::random({3, 3, 3}, rng);
    const auto equilibria = solver::pure_nash_equilibria(g);
    std::size_t count = 0;
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const auto profile = g.profile_unrank(rank);
        if (solver::is_pure_nash(g, profile)) {
            ASSERT_LT(count, equilibria.size());
            EXPECT_EQ(equilibria[count], profile);
            ++count;
        }
    }
    EXPECT_EQ(count, equilibria.size());
}

TEST(ThreadPool, RunsEveryBlockExactlyOnce) {
    auto& pool = util::global_pool();
    constexpr std::size_t kBlocks = 257;
    std::vector<std::atomic<int>> hits(kBlocks);
    pool.run_blocks(kBlocks, [&](std::size_t block) { hits[block].fetch_add(1); });
    for (std::size_t block = 0; block < kBlocks; ++block) {
        EXPECT_EQ(hits[block].load(), 1) << "block " << block;
    }
    // Reuse must work (the pool is a long-lived process-wide resource).
    pool.run_blocks(3, [&](std::size_t block) { hits[block].fetch_add(1); });
    for (std::size_t block = 0; block < 3; ++block) {
        EXPECT_EQ(hits[block].load(), 2);
    }
}

}  // namespace
}  // namespace bnash::game
