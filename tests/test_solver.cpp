// Tests for the Nash solvers: verification oracles, iterated elimination,
// support enumeration, Lemke-Howson, zero-sum LP, and learning dynamics.
// Cross-validation property: every equilibrium any solver returns must
// pass the independent verification oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "game/catalog.h"
#include "game/payoff_engine.h"
#include "solver/iterated_elimination.h"
#include "solver/learning.h"
#include "solver/lemke_howson.h"
#include "solver/support_enumeration.h"
#include "solver/verification.h"
#include "solver/zero_sum.h"
#include "util/rng.h"

namespace bnash::solver {
namespace {

using game::MixedProfile;
using game::PureProfile;
using game::catalog::attack_coordination_game;
using game::catalog::bargaining_game;
using game::catalog::battle_of_the_sexes;
using game::catalog::chicken;
using game::catalog::coordination;
using game::catalog::matching_pennies;
using game::catalog::prisoners_dilemma;
using game::catalog::roshambo;
using game::catalog::stag_hunt;
using util::Rational;

// ------------------------------------------------------------ verification

TEST(Verification, PrisonersDilemmaDefectIsUniquePureNash) {
    const auto pd = prisoners_dilemma();
    const auto equilibria = pure_nash_equilibria(pd);
    ASSERT_EQ(equilibria.size(), 1u);
    EXPECT_EQ(equilibria[0], (PureProfile{1, 1}));
    EXPECT_TRUE(is_pure_nash(pd, {1, 1}));
    EXPECT_FALSE(is_pure_nash(pd, {0, 0}));
}

TEST(Verification, DefectDefectIsParetoDominatedByCooperate) {
    // The paper: "(C,C) gives both players a better payoff than (D,D)".
    const auto pd = prisoners_dilemma();
    EXPECT_TRUE(is_pareto_dominated(pd, {1, 1}));
    EXPECT_FALSE(is_pareto_dominated(pd, {0, 0}));
}

TEST(Verification, MatchingPenniesHasNoPureNash) {
    EXPECT_TRUE(pure_nash_equilibria(matching_pennies()).empty());
}

TEST(Verification, AttackGameAllZeroIsNash) {
    // Section 2: "Clearly everyone playing 0 is a Nash equilibrium".
    const auto g = attack_coordination_game(5);
    EXPECT_TRUE(is_pure_nash(g, PureProfile(5, 0)));
}

TEST(Verification, BargainingAllStayIsNash) {
    const auto g = bargaining_game(4);
    EXPECT_TRUE(is_pure_nash(g, PureProfile(4, 0)));
}

TEST(Verification, MixedNashVerifiedApproximately) {
    const auto mp = matching_pennies();
    const MixedProfile uniform{game::uniform_strategy(2), game::uniform_strategy(2)};
    EXPECT_TRUE(is_nash(mp, uniform));
    // Row is indifferent when col is uniform, but col now strictly prefers
    // to exploit the skew: not an equilibrium.
    const MixedProfile skewed{{0.6, 0.4}, {0.5, 0.5}};
    EXPECT_FALSE(is_nash(mp, skewed));
    EXPECT_TRUE(is_epsilon_nash(mp, skewed, 0.21));  // col's gain is 0.2
    const MixedProfile bad{{0.6, 0.4}, {0.9, 0.1}};
    EXPECT_FALSE(is_nash(mp, bad));
}

TEST(Verification, ExactNashCheck) {
    const auto mp = matching_pennies();
    const game::ExactMixedProfile uniform{{Rational{1, 2}, Rational{1, 2}},
                                          {Rational{1, 2}, Rational{1, 2}}};
    EXPECT_TRUE(is_nash_exact(mp, uniform));
    const game::ExactMixedProfile off{{Rational{1, 2}, Rational{1, 2}},
                                      {Rational{1, 3}, Rational{2, 3}}};
    EXPECT_FALSE(is_nash_exact(mp, off));
}

// ----------------------------------------------------- iterated elimination

TEST(Elimination, PrisonersDilemmaSolvesByStrictDominance) {
    const auto result = iterated_elimination(prisoners_dilemma(), DominanceKind::kStrictPure);
    EXPECT_EQ(result.reduced.num_actions(0), 1u);
    EXPECT_EQ(result.reduced.num_actions(1), 1u);
    EXPECT_EQ(result.kept[0], (std::vector<std::size_t>{1}));  // only D survives
    EXPECT_EQ(result.kept[1], (std::vector<std::size_t>{1}));
    EXPECT_EQ(result.trace.size(), 2u);
}

TEST(Elimination, MatchingPenniesIrreducible) {
    const auto result = iterated_elimination(matching_pennies(), DominanceKind::kStrictPure);
    EXPECT_EQ(result.reduced.num_actions(0), 2u);
    EXPECT_EQ(result.reduced.num_actions(1), 2u);
    EXPECT_TRUE(result.trace.empty());
}

TEST(Elimination, MixedDominanceBeatsPureOnlyTest) {
    // Row actions: T (4,0), M (0,4), B (1,1) against two columns; B is not
    // pure-dominated but is strictly dominated by the mixture (1/2, 1/2).
    game::NormalFormGame g({3, 2});
    g.set_payoffs({0, 0}, {4, 0});
    g.set_payoffs({0, 1}, {0, 0});
    g.set_payoffs({1, 0}, {0, 0});
    g.set_payoffs({1, 1}, {4, 0});
    g.set_payoffs({2, 0}, {1, 0});
    g.set_payoffs({2, 1}, {1, 0});
    EXPECT_FALSE(is_dominated(g, 0, 2, DominanceKind::kStrictPure));
    EXPECT_TRUE(is_dominated(g, 0, 2, DominanceKind::kStrictMixed));
    const auto result = iterated_elimination(g, DominanceKind::kStrictMixed);
    EXPECT_EQ(result.kept[0], (std::vector<std::size_t>{0, 1}));
}

TEST(Elimination, WeakDominanceExample) {
    // Column 1 weakly dominates column 0 (ties in row 0, better in row 1).
    game::NormalFormGame g({2, 2});
    g.set_payoffs({0, 0}, {1, 1});
    g.set_payoffs({0, 1}, {1, 1});
    g.set_payoffs({1, 0}, {0, 0});
    g.set_payoffs({1, 1}, {0, 2});
    EXPECT_TRUE(is_dominated(g, 1, 0, DominanceKind::kWeakPure));
    EXPECT_FALSE(is_dominated(g, 1, 0, DominanceKind::kStrictPure));
}

// Property: strict iterated elimination never removes an action that any
// Nash equilibrium plays with positive probability (the classical
// survival theorem) -- random 2-player games.
class EliminationPreservesNash : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EliminationPreservesNash, NashSupportsSurviveStrictIesds) {
    util::Rng rng{GetParam() * 6151};
    const auto g = game::NormalFormGame::random({4, 4}, rng, -6, 6);
    const auto result = iterated_elimination(g, DominanceKind::kStrictPure);
    for (const auto& eq : support_enumeration(g)) {
        for (std::size_t player = 0; player < 2; ++player) {
            for (std::size_t action = 0; action < 4; ++action) {
                if (eq.profile[player][action].is_zero()) continue;
                const auto& kept = result.kept[player];
                EXPECT_NE(std::find(kept.begin(), kept.end(), action), kept.end())
                    << "player " << player << " action " << action
                    << " eliminated despite equilibrium support";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminationPreservesNash,
                         ::testing::Range<std::uint64_t>(1, 31));

// ------------------------------------------------------ support enumeration

TEST(SupportEnumeration, MatchingPenniesUniqueUniform) {
    const auto equilibria = support_enumeration(matching_pennies());
    ASSERT_EQ(equilibria.size(), 1u);
    const auto& eq = equilibria[0];
    EXPECT_EQ(eq.profile[0], (game::ExactMixedStrategy{Rational{1, 2}, Rational{1, 2}}));
    EXPECT_EQ(eq.profile[1], (game::ExactMixedStrategy{Rational{1, 2}, Rational{1, 2}}));
    EXPECT_EQ(eq.payoffs[0], Rational{0});
}

TEST(SupportEnumeration, RoshamboUniqueUniformThirds) {
    // Example 3.3: "the unique Nash equilibrium has the players randomizing
    // uniformly between 0, 1, and 2".
    const auto equilibria = support_enumeration(roshambo());
    ASSERT_EQ(equilibria.size(), 1u);
    for (std::size_t player = 0; player < 2; ++player) {
        for (std::size_t action = 0; action < 3; ++action) {
            EXPECT_EQ(equilibria[0].profile[player][action], Rational(1, 3));
        }
    }
}

TEST(SupportEnumeration, BattleOfTheSexesHasThreeEquilibria) {
    const auto equilibria = support_enumeration(battle_of_the_sexes());
    EXPECT_EQ(equilibria.size(), 3u);  // two pure + one mixed
    int pure_count = 0;
    for (const auto& eq : equilibria) {
        const bool pure = std::all_of(eq.profile.begin(), eq.profile.end(),
                                      [](const game::ExactMixedStrategy& s) {
                                          return std::any_of(
                                              s.begin(), s.end(),
                                              [](const Rational& p) { return p == Rational{1}; });
                                      });
        pure_count += pure;
    }
    EXPECT_EQ(pure_count, 2);
}

TEST(SupportEnumeration, PrisonersDilemmaOnlyDefect) {
    const auto equilibria = support_enumeration(prisoners_dilemma());
    ASSERT_EQ(equilibria.size(), 1u);
    EXPECT_EQ(equilibria[0].profile[0][1], Rational{1});
    EXPECT_EQ(equilibria[0].payoffs[0], Rational{-3});
}

class SupportEnumerationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupportEnumerationProperty, AllReturnedEquilibriaVerifyExactly) {
    util::Rng rng{GetParam()};
    const auto g = game::NormalFormGame::random({3, 3}, rng, -5, 5);
    const auto equilibria = support_enumeration(g);
    for (const auto& eq : equilibria) {
        EXPECT_TRUE(is_nash_exact(g, eq.profile));
        EXPECT_TRUE(game::is_exact_distribution(eq.profile[0]));
        EXPECT_TRUE(game::is_exact_distribution(eq.profile[1]));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupportEnumerationProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ------------------------------------------------------------ Lemke-Howson

TEST(LemkeHowson, FindsMatchingPenniesEquilibrium) {
    const auto eq = lemke_howson(matching_pennies(), 0);
    ASSERT_TRUE(eq.has_value());
    EXPECT_TRUE(is_nash_exact(matching_pennies(), eq->profile));
    EXPECT_EQ(eq->profile[0][0], Rational(1, 2));
}

TEST(LemkeHowson, FindsRoshamboEquilibrium) {
    const auto eq = lemke_howson(roshambo(), 0);
    ASSERT_TRUE(eq.has_value());
    for (std::size_t action = 0; action < 3; ++action) {
        EXPECT_EQ(eq->profile[0][action], Rational(1, 3));
        EXPECT_EQ(eq->profile[1][action], Rational(1, 3));
    }
}

TEST(LemkeHowson, AllLabelsOnBattleOfTheSexes) {
    const auto equilibria = lemke_howson_all_labels(battle_of_the_sexes());
    // LH reaches the two pure equilibria from different labels (the mixed
    // one has index 2 and may or may not be reached); all must verify.
    EXPECT_GE(equilibria.size(), 2u);
    for (const auto& eq : equilibria) {
        EXPECT_TRUE(is_nash_exact(battle_of_the_sexes(), eq.profile));
    }
}

TEST(LemkeHowson, ReportsPivotStats) {
    LemkeHowsonStats stats;
    const auto eq = lemke_howson(roshambo(), 0, 1000, &stats);
    ASSERT_TRUE(eq.has_value());
    EXPECT_GT(stats.pivots, 0u);
}

class LemkeHowsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LemkeHowsonProperty, AgreesWithVerifierOnRandomGames) {
    util::Rng rng{GetParam() * 7919};
    const auto g = game::NormalFormGame::random({4, 4}, rng, -9, 9);
    for (std::size_t label = 0; label < 8; ++label) {
        const auto eq = lemke_howson(g, label);
        if (!eq) continue;  // degenerate cap: allowed
        EXPECT_TRUE(is_nash_exact(g, eq->profile))
            << "label " << label << " produced a non-equilibrium";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemkeHowsonProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ----------------------------------------------------------------- ZeroSum

TEST(ZeroSum, RoshamboValueZeroUniform) {
    const auto solution = solve_zero_sum(roshambo());
    EXPECT_NEAR(solution.value, 0.0, 1e-7);
    for (std::size_t a = 0; a < 3; ++a) {
        EXPECT_NEAR(solution.row_strategy[a], 1.0 / 3.0, 1e-6);
        EXPECT_NEAR(solution.col_strategy[a], 1.0 / 3.0, 1e-6);
    }
}

TEST(ZeroSum, RejectsNonZeroSum) {
    EXPECT_THROW((void)solve_zero_sum(prisoners_dilemma()), std::logic_error);
}

TEST(ZeroSum, AsymmetricGameValue) {
    // Row payoffs [[2, -1], [-1, 1]]: value = 1/5 with x = (2/5, 3/5).
    util::MatrixQ a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = -1;
    a(1, 0) = -1;
    a(1, 1) = 1;
    const auto solution = solve_zero_sum(game::NormalFormGame::zero_sum(a));
    EXPECT_NEAR(solution.value, 0.2, 1e-7);
    EXPECT_NEAR(solution.row_strategy[0], 0.4, 1e-6);
}

class ZeroSumAgreesWithExactSolvers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZeroSumAgreesWithExactSolvers, ValueMatchesSupportEnumeration) {
    util::Rng rng{GetParam() * 104729};
    util::MatrixQ a(3, 3);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.next_int(-5, 5);
    }
    const auto g = game::NormalFormGame::zero_sum(a);
    const auto lp = solve_zero_sum(g);
    const auto exact = support_enumeration(g);
    ASSERT_FALSE(exact.empty());
    // All equilibria of a zero-sum game share the same value.
    for (const auto& eq : exact) {
        EXPECT_NEAR(eq.payoffs[0].to_double(), lp.value, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroSumAgreesWithExactSolvers,
                         ::testing::Range<std::uint64_t>(1, 31));

// ---------------------------------------------------------------- learning

TEST(Learning, FictitiousPlayConvergesOnMatchingPennies) {
    LearningOptions options;
    options.max_iterations = 20'000;
    options.target_regret = 5e-3;
    const auto result = fictitious_play(matching_pennies(), options);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.profile[0][0], 0.5, 0.05);
    EXPECT_NEAR(result.profile[1][0], 0.5, 0.05);
}

TEST(Learning, FictitiousPlaySolvesPrisonersDilemmaImmediately) {
    const auto result = fictitious_play(prisoners_dilemma());
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.profile[0][1], 0.9);  // mass concentrates on defect
}

TEST(Learning, ReplicatorConvergesOnDominanceSolvableGame) {
    LearningOptions options;
    options.max_iterations = 50'000;
    options.target_regret = 1e-3;
    const auto result = replicator_dynamics(prisoners_dilemma(), options);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.profile[0][1], 0.99);
}

TEST(Learning, ReplicatorStaysOnSimplex) {
    LearningOptions options;
    options.max_iterations = 500;
    const auto result = replicator_dynamics(roshambo(), options);
    for (const auto& strategy : result.profile) {
        EXPECT_TRUE(game::is_distribution(strategy, 1e-6));
    }
}

TEST(Learning, RegretTraceIsRecorded) {
    LearningOptions options;
    options.max_iterations = 1000;
    options.trace_every = 100;
    options.target_regret = -1.0;  // unreachable: force the full run
    const auto result = fictitious_play(matching_pennies(), options);
    EXPECT_GE(result.regret_trace.size(), 9u);
}

TEST(Learning, FictitiousPlayOnCoordinationPicksAnEquilibrium) {
    const auto result = fictitious_play(coordination());
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(is_nash(coordination(), result.profile, 1e-2));
}

// N-player: fictitious play on the bargaining game reaches all-stay or an
// all-leave-ish equilibrium; either way regret must vanish.
TEST(Learning, FictitiousPlayHandlesNPlayerGames) {
    LearningOptions options;
    options.max_iterations = 5000;
    options.target_regret = 1e-2;
    const auto result = fictitious_play(bargaining_game(4), options);
    EXPECT_TRUE(result.converged);
}

// Cross-solver property: on random 2-player games, every support-
// enumeration equilibrium is found "stable" by the verifier, and LH (when
// it succeeds) lands in the same set for nondegenerate draws.
class CrossSolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossSolverProperty, LemkeHowsonEquilibriumIsAmongSupportEnumeration) {
    util::Rng rng{GetParam() * 15485863};
    const auto g = game::NormalFormGame::random({3, 4}, rng, -7, 7);
    const auto all = support_enumeration(g);
    const auto lh = lemke_howson(g, 0);
    if (!lh) return;
    const bool found = std::any_of(all.begin(), all.end(), [&](const MixedEquilibrium& eq) {
        return eq.profile == lh->profile;
    });
    // Degenerate games can have LH land on a component vertex that support
    // enumeration (equal-size supports) misses; the verifier is the final
    // arbiter in that case.
    if (!found) {
        EXPECT_TRUE(is_nash_exact(g, lh->profile));
    } else {
        SUCCEED();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSolverProperty,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(Solvers, StagHuntAndChickenEquilibriumCounts) {
    EXPECT_EQ(pure_nash_equilibria(stag_hunt()).size(), 2u);
    EXPECT_EQ(pure_nash_equilibria(chicken()).size(), 2u);
    EXPECT_EQ(support_enumeration(stag_hunt()).size(), 3u);
}

// ------------------------------------------------------------ view solvers

// Both 2-player solvers accept a GameView: an elimination-reduced game is
// solved WITHOUT materializing its tensor, and the equilibria match
// solving the materialized copy exactly.
TEST(ViewSolvers, SolveEliminationReducedViewWithoutMaterializing) {
    int reduced_games = 0;
    for (std::uint64_t seed = 1; reduced_games < 8 && seed <= 60; ++seed) {
        util::Rng game_rng{seed * 2731};
        const auto g = game::NormalFormGame::random({4, 4}, game_rng, -6, 6);
        const auto by_views = iterated_elimination_view(g, DominanceKind::kStrictPure);
        if (by_views.trace.empty()) continue;  // nothing eliminated: not interesting
        ++reduced_games;
        const auto materialized = by_views.reduced.materialize();

        const auto before = game::NormalFormGame::tensor_allocations();
        const auto via_view = support_enumeration(by_views.reduced);
        const auto lh_view = lemke_howson(by_views.reduced, 0);
        EXPECT_EQ(game::NormalFormGame::tensor_allocations(), before)
            << "seed " << seed << ": view solvers must not allocate a tensor";

        const auto via_copy = support_enumeration(materialized);
        ASSERT_EQ(via_view.size(), via_copy.size()) << "seed " << seed;
        for (std::size_t i = 0; i < via_view.size(); ++i) {
            EXPECT_EQ(via_view[i].profile, via_copy[i].profile) << "seed " << seed;
            EXPECT_EQ(via_view[i].payoffs, via_copy[i].payoffs) << "seed " << seed;
        }
        const auto lh_copy = lemke_howson(materialized, 0);
        ASSERT_EQ(lh_view.has_value(), lh_copy.has_value()) << "seed " << seed;
        if (lh_view && lh_copy) {
            EXPECT_EQ(lh_view->profile, lh_copy->profile) << "seed " << seed;
            EXPECT_EQ(lh_view->payoffs, lh_copy->payoffs) << "seed " << seed;
        }
    }
    EXPECT_EQ(reduced_games, 8) << "random draw produced too few reducible games";
}

// The dynamics' best-response tie tolerance and the verifier's default
// deviation tolerance are ONE shared constant now; a payoff gap below it
// is a tie for both. Previously fictitious play hardcoded its own copy —
// this pins the wiring so they cannot drift apart again.
TEST(Learning, TieToleranceSharedWithNashVerifier) {
    // 1-player, 2-action game with a sub-tolerance payoff gap: action 1
    // "wins" by less than kNashTolerance.
    game::NormalFormGame g({2});
    g.set_payoff({0}, 0, util::Rational{1});
    // 1 + tol/2 exactly: a gap of 5e-10, below the 1e-9 tolerance.
    g.set_payoff({1}, 0, util::Rational{2'000'000'001, 2'000'000'000});
    const game::PayoffEngine engine(g);

    // At the shared tolerance the two actions tie, and ties break toward
    // the lowest index — exactly the indifference is_nash certifies.
    const auto row = engine.deviation_row({game::uniform_strategy(2)}, 0);
    const auto tied = game::PayoffEngine::best_responses_from(row, kNashTolerance);
    ASSERT_EQ(tied.size(), 2u);
    EXPECT_EQ(tied.front(), 0u);
    EXPECT_TRUE(is_nash(g, {game::pure_as_mixed(0, 2)}));
    // A tolerance tighter than the gap separates them again.
    EXPECT_EQ(game::PayoffEngine::best_responses_from(row, 0.0).size(), 1u);
    EXPECT_FALSE(is_nash(g, {game::pure_as_mixed(0, 2)}, 0.0));

    // Fictitious play inherits the shared default and therefore keeps
    // playing action 0; an explicit tighter tie_tolerance switches the
    // best response to action 1. Same engine, same game — only the
    // (previously hardcoded) tolerance differs.
    LearningOptions shared;
    shared.max_iterations = 8;
    shared.target_regret = 0.0;
    EXPECT_EQ(shared.tie_tolerance, kNashTolerance);
    const auto with_shared = fictitious_play(g, shared);
    LearningOptions tight = shared;
    tight.tie_tolerance = 0.0;
    const auto with_tight = fictitious_play(g, tight);
    // Counts seed at 1; 8 iterations add 8 plays. Under the shared
    // tolerance all of them tie-break to action 0; under the tight one
    // all go to action 1.
    EXPECT_GT(with_shared.profile[0][0], with_shared.profile[0][1]);
    EXPECT_LT(with_tight.profile[0][0], with_tight.profile[0][1]);
}

TEST(ViewSolvers, FullViewMatchesGameOverloads) {
    const auto game = battle_of_the_sexes();
    const auto view = game::GameView::full(game);
    const auto via_view = support_enumeration(view);
    const auto via_game = support_enumeration(game);
    ASSERT_EQ(via_view.size(), via_game.size());
    for (std::size_t i = 0; i < via_view.size(); ++i) {
        EXPECT_EQ(via_view[i].profile, via_game[i].profile);
    }
    const auto lh_all_view = lemke_howson_all_labels(view);
    const auto lh_all_game = lemke_howson_all_labels(game);
    ASSERT_EQ(lh_all_view.size(), lh_all_game.size());
    for (std::size_t i = 0; i < lh_all_view.size(); ++i) {
        EXPECT_EQ(lh_all_view[i].profile, lh_all_game[i].profile);
    }
}

}  // namespace
}  // namespace bnash::solver
