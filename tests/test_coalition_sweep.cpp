// The CoalitionSweep robustness engine: parallel and serial sweeps must
// return IDENTICAL verdicts and violations, and both must match the PR-1
// serial reference checkers exactly — on the paper's catalog games, on
// random games, for pure and mixed candidate profiles.
#include <gtest/gtest.h>

#include <vector>

#include "core/robust/coalition_sweep.h"
#include "core/robust/robustness.h"
#include "game/catalog.h"
#include "util/rng.h"

namespace bnash::core {
namespace {

using game::ExactMixedProfile;
using game::NormalFormGame;
using game::PureProfile;
using game::SweepMode;
using util::Rational;

void expect_same_violation(const std::optional<RobustnessViolation>& a,
                           const std::optional<RobustnessViolation>& b,
                           const std::string& what) {
    ASSERT_EQ(a.has_value(), b.has_value()) << what;
    if (a && b) EXPECT_TRUE(*a == *b) << what << ": " << a->to_string() << " vs "
                                      << b->to_string();
}

void expect_all_checkers_agree(const NormalFormGame& g, const ExactMixedProfile& profile,
                               std::size_t k, std::size_t t, GainCriterion criterion,
                               const std::string& what) {
    RobustnessOptions serial{criterion, SweepMode::kSerial};
    RobustnessOptions parallel{criterion, SweepMode::kAuto};
    const auto via_serial = find_robustness_violation(g, profile, k, t, serial);
    const auto via_parallel = find_robustness_violation(g, profile, k, t, parallel);
    const auto via_reference =
        reference::find_robustness_violation(g, profile, k, t, RobustnessOptions{criterion});
    expect_same_violation(via_serial, via_parallel, what + " serial-vs-parallel");
    expect_same_violation(via_serial, via_reference, what + " sweep-vs-reference");
}

// ----------------------------------------------------- catalog equivalence

TEST(CoalitionSweep, MatchesReferenceOnCatalogGames) {
    for (const std::size_t n : {3u, 4u, 5u}) {
        const auto attack = game::catalog::attack_coordination_game(n);
        const auto all_zero = as_exact_profile(attack, PureProfile(n, 0));
        const auto bargaining = game::catalog::bargaining_game(n);
        const auto all_stay = as_exact_profile(bargaining, PureProfile(n, 0));
        for (std::size_t k = 0; k <= n; ++k) {
            for (std::size_t t = 0; t <= 2 && t < n; ++t) {
                if (k == 0 && t == 0) continue;
                const auto label = "n=" + std::to_string(n) + " k=" + std::to_string(k) +
                                   " t=" + std::to_string(t);
                expect_all_checkers_agree(attack, all_zero, k, t,
                                          GainCriterion::kAnyMemberGains, "attack " + label);
                expect_all_checkers_agree(bargaining, all_stay, k, t,
                                          GainCriterion::kAnyMemberGains,
                                          "bargaining " + label);
            }
        }
    }
}

TEST(CoalitionSweep, MatchesReferenceOnRandomGamesAndProfiles) {
    util::Rng rng{97};
    for (int trial = 0; trial < 12; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(trial % 2);
        std::vector<std::size_t> counts(n);
        for (auto& c : counts) c = static_cast<std::size_t>(rng.next_int(2, 3));
        const auto g = NormalFormGame::random(counts, rng, -4, 4);
        // Random PURE candidate (fast path).
        PureProfile pure(n);
        for (std::size_t i = 0; i < n; ++i) {
            pure[i] = static_cast<std::size_t>(
                rng.next_int(0, static_cast<std::int64_t>(counts[i]) - 1));
        }
        const auto profile = as_exact_profile(g, pure);
        const auto criterion = (trial % 3 == 0) ? GainCriterion::kAllMembersGain
                                                : GainCriterion::kAnyMemberGains;
        expect_all_checkers_agree(g, profile, 2, 1, criterion,
                                  "random pure trial " + std::to_string(trial));
    }
}

TEST(CoalitionSweep, MatchesReferenceOnMixedProfiles) {
    // Mixed candidates exercise the expected-utility fallback path.
    const auto mp = game::catalog::matching_pennies();
    const ExactMixedProfile uniform{{Rational{1, 2}, Rational{1, 2}},
                                    {Rational{1, 2}, Rational{1, 2}}};
    expect_all_checkers_agree(mp, uniform, 1, 1, GainCriterion::kAnyMemberGains,
                              "matching pennies uniform");

    util::Rng rng{101};
    const auto g = NormalFormGame::random({2, 2, 2}, rng, -3, 3);
    const ExactMixedProfile skewed{{Rational{1, 3}, Rational{2, 3}},
                                   {Rational{1}, Rational{0}},
                                   {Rational{3, 4}, Rational{1, 4}}};
    expect_all_checkers_agree(g, skewed, 2, 1, GainCriterion::kAnyMemberGains,
                              "random mixed");
}

// ---------------------------------------------------------- sweep surface

TEST(CoalitionSweep, DirectEngineMatchesFreeFunctions) {
    const auto g = game::catalog::attack_coordination_game(4);
    const auto all_zero = as_exact_profile(g, PureProfile(4, 0));
    const CoalitionSweep sweep(g, all_zero);
    const auto direct = sweep.robustness_violation(2, 1, RobustnessOptions{});
    const auto via_free = find_robustness_violation(g, all_zero, 2, 1);
    expect_same_violation(direct, via_free, "direct-vs-free");
    // Serial and parallel direct calls agree too.
    expect_same_violation(sweep.resilience_violation(2, 0, GainCriterion::kAnyMemberGains,
                                                     SweepMode::kSerial),
                          sweep.resilience_violation(2, 0, GainCriterion::kAnyMemberGains,
                                                     SweepMode::kAuto),
                          "direct serial-vs-parallel");
}

TEST(CoalitionSweep, ViolationPayloadPinsThePaperExample)
{
    // The attack game's first breaking pair in enumeration order is {0,1}
    // jointly switching to 1, earning 2 over the candidate 1.
    const auto g = game::catalog::attack_coordination_game(5);
    const auto all_zero = as_exact_profile(g, PureProfile(5, 0));
    const auto violation = find_resilience_violation(g, all_zero, 2);
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->coalition, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(violation->coalition_deviation, (PureProfile{1, 1}));
    EXPECT_TRUE(violation->faulty.empty());
    EXPECT_EQ(violation->payoff_before, 1.0);
    EXPECT_EQ(violation->payoff_after, 2.0);
}

TEST(CoalitionSweep, EdgeCasesReturnNoViolation) {
    const auto pd = game::catalog::prisoners_dilemma();
    const auto both_defect = as_exact_profile(pd, {1, 1});
    const CoalitionSweep sweep(pd, both_defect);
    EXPECT_FALSE(sweep.immunity_violation(0).has_value());
    EXPECT_FALSE(
        sweep.resilience_violation(0, 1, GainCriterion::kAnyMemberGains).has_value());
}

// --------------------------------------------- degenerate batch frontiers
//
// The shifted violations[k-1]/[t-1] indexing in the batch verdicts must
// stay correct at the degenerate corners: empty budgets (max_k == 0,
// max_t == 0), single-profile games, and 1-player games. Every cell is
// pinned against the independent probe it stands in for.

void expect_frontier_matches_probes(const NormalFormGame& g, const ExactMixedProfile& profile,
                                    std::size_t max_k, std::size_t max_t,
                                    const std::string& what) {
    for (const auto mode : {SweepMode::kSerial, SweepMode::kAuto}) {
        const RobustnessOptions options{GainCriterion::kAnyMemberGains, mode};
        const auto frontier = batch_robustness_frontier(g, profile, max_k, max_t, options);
        ASSERT_EQ(frontier.cells.size(), (max_k + 1) * (max_t + 1)) << what;
        for (std::size_t k = 0; k <= max_k; ++k) {
            for (std::size_t t = 0; t <= max_t; ++t) {
                const auto independent = find_robustness_violation(g, profile, k, t, options);
                expect_same_violation(independent, frontier.violation(k, t),
                                      what + " cell k=" + std::to_string(k) +
                                          " t=" + std::to_string(t));
            }
        }
        // The boundary walk agrees with the grid cell for cell and never
        // resolves more cells than the grid holds.
        const auto walk = max_kt(g, profile, max_k, max_t, options);
        for (std::size_t k = 0; k <= max_k; ++k) {
            for (std::size_t t = 0; t <= max_t; ++t) {
                EXPECT_EQ(walk.robust(k, t), frontier.robust(k, t))
                    << what << " max_kt cell k=" << k << " t=" << t;
            }
        }
        EXPECT_LE(walk.cells_resolved, (max_k + 1) * (max_t + 1)) << what;
        // Batch verdict boundaries against their probe loops.
        const auto resilience = batch_resilience(g, profile, max_k, options);
        ASSERT_EQ(resilience.violations.size(), max_k) << what;
        for (std::size_t k = 1; k <= max_k; ++k) {
            expect_same_violation(find_resilience_violation(g, profile, k, options),
                                  resilience.violations[k - 1],
                                  what + " batch k=" + std::to_string(k));
        }
        const auto immunity = batch_immunity(g, profile, max_t, mode);
        ASSERT_EQ(immunity.violations.size(), max_t) << what;
        for (std::size_t t = 1; t <= max_t; ++t) {
            expect_same_violation(find_immunity_violation(g, profile, t),
                                  immunity.violations[t - 1],
                                  what + " batch t=" + std::to_string(t));
        }
    }
}

TEST(CoalitionSweep, DegenerateFrontierBudgets) {
    const auto g = game::catalog::attack_coordination_game(4);
    for (const std::size_t base : {0u, 1u}) {
        const auto profile = as_exact_profile(g, PureProfile(4, base));
        const std::string what = "attack base=" + std::to_string(base);
        expect_frontier_matches_probes(g, profile, 0, 0, what + " (0,0)");
        expect_frontier_matches_probes(g, profile, 0, 3, what + " (0,3)");
        expect_frontier_matches_probes(g, profile, 3, 0, what + " (3,0)");
    }
}

TEST(CoalitionSweep, DegenerateSingleProfileAndOnePlayerGames) {
    // Every player has ONE action: no deviation exists, so every cell of
    // every frontier is robust and every boundary sits at its budget.
    NormalFormGame single({1, 1, 1});
    for (std::size_t p = 0; p < 3; ++p) single.set_payoff({0, 0, 0}, p, Rational{p + 1});
    const auto single_profile = as_exact_profile(single, PureProfile(3, 0));
    expect_frontier_matches_probes(single, single_profile, 3, 2, "single-profile");
    const auto walk = max_kt(single, single_profile, 3, 2);
    EXPECT_EQ(walk.immunity_ok, 2u);
    EXPECT_EQ(walk.k_of_t, (std::vector<std::size_t>{3, 3, 3}));
    ASSERT_EQ(walk.maximal.size(), 1u);
    EXPECT_EQ(walk.maximal.front(), (std::pair<std::size_t, std::size_t>{3, 2}));

    // 1-player game: coalitions of size 1 exist, faulty sets leave no
    // outsiders to hurt.
    NormalFormGame solo({3});
    for (std::size_t a = 0; a < 3; ++a) solo.set_payoff({a}, 0, Rational{(a == 1) ? 5 : 2});
    const auto best = as_exact_profile(solo, PureProfile{1});
    const auto worst = as_exact_profile(solo, PureProfile{0});
    expect_frontier_matches_probes(solo, best, 1, 1, "solo best");
    expect_frontier_matches_probes(solo, worst, 1, 1, "solo worst");
    EXPECT_TRUE(is_kt_robust(solo, best, 1, 1));
    EXPECT_FALSE(is_k_resilient(solo, worst, 1));
}

}  // namespace
}  // namespace bnash::core
