// Tests for Section 3's computational games (E7, E8, E9): machine games,
// the primality example, computational roshambo's nonexistence, and the
// memory-charged FRPD analysis.
#include <gtest/gtest.h>

#include "core/machine/frpd.h"
#include "core/machine/machine_game.h"
#include "core/machine/primality.h"
#include "game/catalog.h"

namespace bnash::core {
namespace {

// ------------------------------------------------------------ machine game

TEST(MachineGame, CostModelAddsUp) {
    MachineCost cost;
    cost.base = 1.0;
    cost.per_state = 0.5;
    cost.per_memory_bit = 0.25;
    cost.randomized_surcharge = 2.0;
    const MachineMetrics metrics{3, 0, 4, true};
    EXPECT_DOUBLE_EQ(cost.cost(metrics), 1.0 + 1.5 + 1.0 + 2.0);
}

TEST(MachineGame, LiftPreservesPayoffs) {
    const auto rps = game::catalog::roshambo();
    const auto lifted = lift_to_bayesian(rps);
    EXPECT_EQ(lifted.num_players(), 2u);
    EXPECT_EQ(lifted.payoff({0, 0}, {0, 1}, 0), rps.payoff({0, 1}, 0));
    EXPECT_NO_THROW(lifted.validate_prior());
}

TEST(MachineGame, UtilityChargesComplexity) {
    auto game = computational_roshambo(1.0);
    // rock vs rock: payoff 0, cost 1 each -> utility -1.
    EXPECT_DOUBLE_EQ(game.utility({0, 0}, 0), -1.0);
    // uniform vs rock: expected payoff 0, cost 1 + 1 -> -2.
    EXPECT_DOUBLE_EQ(game.utility({3, 0}, 0), -2.0);
    // paper beats rock: +1 - 1 = 0.
    EXPECT_DOUBLE_EQ(game.utility({1, 0}, 0), 0.0);
}

TEST(MachineGame, Example33NoEquilibriumExists) {
    // The paper: "it is easy to see that there is no Nash equilibrium"
    // once randomization costs more than determinism.
    auto game = computational_roshambo(1.0);
    EXPECT_TRUE(game.machine_equilibria().empty());
}

TEST(MachineGame, FreeRandomizationRestoresEquilibrium) {
    // Control experiment: with no surcharge the uniform machine is a best
    // response to itself and (uniform, uniform) is an equilibrium again --
    // pinning the surcharge as the cause of nonexistence.
    auto game = computational_roshambo(0.0);
    EXPECT_TRUE(game.is_machine_equilibrium({3, 3}));
    EXPECT_FALSE(game.machine_equilibria().empty());
}

TEST(MachineGame, BestResponseCycleDemonstratesNonexistence) {
    auto game = computational_roshambo(1.0);
    const auto cycle = game.best_response_cycle({0, 0});
    // The dynamic must fall into a cycle of length > 1 (no fixed point).
    EXPECT_GT(cycle.size(), 1u);
}

TEST(MachineGame, DeterministicMachineBeatsAnyFixedOpponent) {
    auto game = computational_roshambo(1.0);
    // Against any deterministic machine j, the best response is the
    // deterministic counter j (+) 1, never the uniform machine.
    for (std::size_t opponent = 0; opponent < 3; ++opponent) {
        const auto best = game.best_machines({0, opponent}, 0);
        ASSERT_EQ(best.size(), 1u);
        EXPECT_EQ(best.front(), (opponent + 1) % 3);
    }
}

TEST(MachineGame, TypeEchoAndTableMachines) {
    const auto echo = type_echo_machine();
    EXPECT_EQ(echo->action_distribution(1, 3), (std::vector<double>{0, 1, 0}));
    const auto table = table_machine({1, 0}, "swap");
    EXPECT_EQ(table->action_distribution(0, 2), (std::vector<double>{0, 1}));
    EXPECT_EQ(table->action_distribution(1, 2), (std::vector<double>{1, 0}));
    MachineMetrics metrics;
    util::Rng rng{1};
    EXPECT_EQ(table->run(1, rng, metrics), 0u);
}

// ---------------------------------------------------------------- primality

TEST(Primality, MillerRabinCorrectness) {
    EXPECT_TRUE(is_prime_u64(2));
    EXPECT_TRUE(is_prime_u64(97));
    EXPECT_TRUE(is_prime_u64(2147483647ULL));          // 2^31 - 1
    EXPECT_TRUE(is_prime_u64(2305843009213693951ULL)); // 2^61 - 1
    EXPECT_FALSE(is_prime_u64(1));
    EXPECT_FALSE(is_prime_u64(561));   // Carmichael
    EXPECT_FALSE(is_prime_u64(341));   // 2-pseudoprime
    EXPECT_FALSE(is_prime_u64(1ULL << 62));
}

TEST(Primality, OpCountGrowsWithBits) {
    std::uint64_t small_ops = 0;
    std::uint64_t large_ops = 0;
    (void)is_prime_u64((1ULL << 15) + 3, &small_ops);
    (void)is_prime_u64((1ULL << 61) - 1, &large_ops);
    EXPECT_GT(large_ops, small_ops);
}

TEST(Primality, Example31CrossoverExists) {
    // Cheap computation: guessing correctly dominates. Expensive
    // computation (high step price): play safe. The equilibrium flips.
    PrimalityParams cheap;
    cheap.bits = 10;
    cheap.step_price = 0.0001;
    cheap.samples = 500;
    EXPECT_EQ(best_primality_machine(cheap), PrimalityMachineKind::kMillerRabin);

    PrimalityParams dear = cheap;
    dear.bits = 60;
    dear.step_price = 0.05;
    EXPECT_EQ(best_primality_machine(dear), PrimalityMachineKind::kPlaySafe);
}

TEST(Primality, GuessingMachinesLoseUnderTheBalancedPrior) {
    // Inputs are half prime / half composite, so every blind guesser sits
    // near expected 0, strictly below play-safe's +1.
    PrimalityParams params;
    params.bits = 40;
    params.samples = 800;
    params.step_price = 0.0;
    const auto always_prime =
        evaluate_primality_machine(PrimalityMachineKind::kAlwaysPrime, params);
    const auto always_composite =
        evaluate_primality_machine(PrimalityMachineKind::kAlwaysComposite, params);
    const auto safe = evaluate_primality_machine(PrimalityMachineKind::kPlaySafe, params);
    EXPECT_LT(always_prime.expected_utility, safe.expected_utility);
    EXPECT_LT(always_composite.expected_utility, safe.expected_utility);
    EXPECT_NEAR(always_prime.fraction_prime, 0.5, 0.08);
}

TEST(Primality, RejectsBadParameters) {
    PrimalityParams params;
    params.bits = 1;
    EXPECT_THROW((void)evaluate_primality_machine(PrimalityMachineKind::kPlaySafe, params),
                 std::invalid_argument);
}

// --------------------------------------------------------------------- FRPD

TEST(Frpd, TftPairIsEquilibriumForLongGames) {
    // Example 3.2: positive memory price + long horizon => (TfT, TfT) is a
    // computational Nash equilibrium.
    FrpdParams params;
    params.rounds = 50;
    params.delta = 0.9;
    params.memory_price = 0.2;
    const auto analysis = analyze_tft_equilibrium(params);
    EXPECT_TRUE(analysis.tft_pair_is_equilibrium);
    // The boundary quantities confirm why: 2 * 0.9^50 << 0.2 * 6 bits.
    EXPECT_LT(analysis.last_round_gain, analysis.counter_memory_cost);
}

TEST(Frpd, TftPairFailsForShortGames) {
    // Short horizon: the discounted last-round gain exceeds the memory
    // cost, so the defect-last machine profitably deviates.
    FrpdParams params;
    params.rounds = 3;
    params.delta = 0.9;
    params.memory_price = 0.2;
    const auto analysis = analyze_tft_equilibrium(params);
    EXPECT_FALSE(analysis.tft_pair_is_equilibrium);
    EXPECT_EQ(analysis.best_deviation, "TfT-DefectLast");
    EXPECT_GT(analysis.last_round_gain, analysis.counter_memory_cost);
}

TEST(Frpd, FreeMemoryRestoresClassicalBackwardInduction) {
    // With memory free of charge the defect-last deviation always wins:
    // the classical analysis reappears (no cooperation equilibrium).
    FrpdParams params;
    params.rounds = 50;
    params.delta = 0.9;
    params.memory_price = 0.0;
    const auto analysis = analyze_tft_equilibrium(params);
    EXPECT_FALSE(analysis.tft_pair_is_equilibrium);
}

TEST(Frpd, EquilibriumThresholdMatchesClosedForm) {
    // Boundary check: (TfT,TfT) is an equilibrium iff 2*delta^N <=
    // memory_price * ceil(log2 N) (the other machines are never the best
    // deviation in this regime).
    FrpdParams params;
    params.delta = 0.95;
    params.memory_price = 0.05;
    for (const std::size_t rounds : {5u, 10u, 20u, 40u, 80u, 160u}) {
        params.rounds = rounds;
        const auto analysis = analyze_tft_equilibrium(params);
        const bool closed_form = analysis.last_round_gain <= analysis.counter_memory_cost;
        EXPECT_EQ(analysis.tft_pair_is_equilibrium, closed_form) << "N = " << rounds;
    }
}

TEST(Frpd, AsymmetricEquilibrium) {
    // "even if only one player is computationally bounded ... there is a
    // Nash equilibrium where the bounded player plays TfT, while the other
    // plays the best response of cooperating up (but not including) to the
    // last round, and then defecting."
    FrpdParams params;
    params.rounds = 50;
    params.delta = 0.9;
    params.memory_price = 0.2;
    EXPECT_TRUE(asymmetric_equilibrium_holds(params));
}

TEST(Frpd, DeltaMustBeInRange) {
    FrpdParams params;
    params.delta = 0.4;
    EXPECT_THROW((void)analyze_tft_equilibrium(params), std::invalid_argument);
}

class FrpdRegionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrpdRegionSweep, EquilibriumRegionIsMonotoneInHorizon) {
    // Once the horizon is long enough for (TfT,TfT) to be an equilibrium,
    // stretching it further keeps it one (delta^N decays, log grows).
    FrpdParams params;
    params.delta = 0.8 + 0.03 * static_cast<double>(GetParam());
    params.memory_price = 0.1;
    bool seen_equilibrium = false;
    for (std::size_t rounds = 2; rounds <= 256; rounds *= 2) {
        params.rounds = rounds;
        const auto analysis = analyze_tft_equilibrium(params);
        if (seen_equilibrium) {
            EXPECT_TRUE(analysis.tft_pair_is_equilibrium)
                << "regression at N = " << rounds << ", delta = " << params.delta;
        }
        seen_equilibrium |= analysis.tft_pair_is_equilibrium;
    }
    EXPECT_TRUE(seen_equilibrium);  // the region is non-empty for every delta
}

INSTANTIATE_TEST_SUITE_P(Deltas, FrpdRegionSweep, ::testing::Range<std::size_t>(0, 6));

}  // namespace
}  // namespace bnash::core
