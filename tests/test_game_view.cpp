// GameView: zero-copy restriction/permutation views must agree exactly
// with the copying restrict() path, the engine sweeps over views must be
// bit-identical to sweeping the materialized subgame, and the view-based
// iterated elimination must allocate exactly ONE payoff tensor (the final
// reduced game).
#include <gtest/gtest.h>

#include <vector>

#include "game/catalog.h"
#include "game/game_view.h"
#include "game/normal_form.h"
#include "game/payoff_engine.h"
#include "solver/iterated_elimination.h"
#include "util/rng.h"

namespace bnash::game {
namespace {

using util::Rational;

std::vector<std::size_t> random_shape(util::Rng& rng, std::size_t players) {
    std::vector<std::size_t> counts(players);
    for (auto& count : counts) count = static_cast<std::size_t>(rng.next_int(2, 4));
    return counts;
}

// Non-empty random subset of 0..count-1, ascending (restrict's contract).
std::vector<std::size_t> random_kept(util::Rng& rng, std::size_t count) {
    std::vector<std::size_t> kept;
    for (std::size_t a = 0; a < count; ++a) {
        if (rng.next_bool(0.6)) kept.push_back(a);
    }
    if (kept.empty()) {
        kept.push_back(static_cast<std::size_t>(
            rng.next_int(0, static_cast<std::int64_t>(count) - 1)));
    }
    return kept;
}

MixedProfile random_mixed(const std::vector<std::size_t>& counts, util::Rng& rng) {
    MixedProfile profile(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        MixedStrategy s(counts[i]);
        double total = 0.0;
        for (auto& p : s) {
            p = rng.next_double() + 0.05;
            total += p;
        }
        for (auto& p : s) p /= total;
        profile[i] = std::move(s);
    }
    return profile;
}

ExactMixedProfile random_exact(const std::vector<std::size_t>& counts, util::Rng& rng) {
    ExactMixedProfile profile(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        ExactMixedStrategy s(counts[i], Rational{0});
        std::int64_t total = 0;
        std::vector<std::int64_t> weights(s.size());
        for (auto& w : weights) {
            w = rng.next_int(0, 4);
            total += w;
        }
        if (total == 0) {
            weights[0] = 1;
            total = 1;
        }
        for (std::size_t a = 0; a < s.size(); ++a) s[a] = Rational{weights[a], total};
        profile[i] = std::move(s);
    }
    return profile;
}

void expect_games_equal(const NormalFormGame& a, const NormalFormGame& b) {
    ASSERT_EQ(a.action_counts(), b.action_counts());
    for (std::uint64_t rank = 0; rank < a.num_profiles(); ++rank) {
        for (std::size_t p = 0; p < a.num_players(); ++p) {
            EXPECT_EQ(a.payoff_at(rank, p), b.payoff_at(rank, p));
            EXPECT_EQ(a.payoff_d_at(rank, p), b.payoff_d_at(rank, p));
        }
    }
    for (std::size_t p = 0; p < a.num_players(); ++p) {
        for (std::size_t action = 0; action < a.num_actions(p); ++action) {
            EXPECT_EQ(a.action_label(p, action), b.action_label(p, action));
        }
    }
}

// ------------------------------------------------------------- equivalence

TEST(GameView, RestrictViewMatchesRestrictOnRandomGames) {
    util::Rng rng{11};
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t players = 2 + static_cast<std::size_t>(trial % 3);
        const auto g = NormalFormGame::random(random_shape(rng, players), rng);
        std::vector<std::vector<std::size_t>> kept(players);
        for (std::size_t p = 0; p < players; ++p) kept[p] = random_kept(rng, g.num_actions(p));
        const auto copied = g.restrict(kept);
        const auto view = g.restrict_view(kept);
        EXPECT_EQ(view.num_profiles(), copied.num_profiles());
        expect_games_equal(copied, view.materialize());
        // Direct rank-indexed lookups agree cell by cell too.
        for (std::uint64_t rank = 0; rank < copied.num_profiles(); ++rank) {
            for (std::size_t p = 0; p < players; ++p) {
                EXPECT_EQ(view.payoff_at(rank, p), copied.payoff_at(rank, p));
                EXPECT_EQ(view.payoff_d_at(rank, p), copied.payoff_d_at(rank, p));
            }
        }
    }
}

TEST(GameView, CarriesActionLabels) {
    const auto rps = catalog::roshambo();
    const auto view = rps.restrict_view({{0, 2}, {1}});
    const auto materialized = view.materialize();
    const auto copied = rps.restrict({{0, 2}, {1}});
    expect_games_equal(copied, materialized);
    EXPECT_EQ(materialized.action_label(0, 1), "scissors");
}

TEST(GameView, FullViewIsIdentity) {
    util::Rng rng{13};
    const auto g = NormalFormGame::random({3, 2, 4}, rng);
    const auto view = GameView::full(g);
    EXPECT_EQ(view.num_profiles(), g.num_profiles());
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        for (std::size_t p = 0; p < g.num_players(); ++p) {
            EXPECT_EQ(view.payoff_at(rank, p), g.payoff_at(rank, p));
        }
    }
}

TEST(GameView, PermuteSwapsPlayers) {
    util::Rng rng{17};
    const auto g = NormalFormGame::random({2, 3}, rng);
    const auto view = GameView::permute(g, {1, 0});
    EXPECT_EQ(view.num_actions(0), 3u);
    EXPECT_EQ(view.num_actions(1), 2u);
    for (std::size_t a = 0; a < 3; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
            // View profile (a, b) is parent profile (b, a); view player 0
            // is parent player 1.
            EXPECT_EQ(view.payoff({a, b}, 0), g.payoff({b, a}, 1));
            EXPECT_EQ(view.payoff({a, b}, 1), g.payoff({b, a}, 0));
        }
    }
}

TEST(GameView, ComposedRestrictionMatchesRestrictChain) {
    util::Rng rng{19};
    const auto g = NormalFormGame::random({4, 4, 3}, rng);
    const std::vector<std::vector<std::size_t>> first{{0, 2, 3}, {1, 2, 3}, {0, 2}};
    const std::vector<std::vector<std::size_t>> second{{1, 2}, {0, 2}, {1}};
    const auto copied = g.restrict(first).restrict(second);
    const auto view = g.restrict_view(first).restrict(second);
    expect_games_equal(copied, view.materialize());
}

TEST(GameView, ValidationMatchesRestrict) {
    const auto pd = catalog::prisoners_dilemma();
    EXPECT_THROW((void)pd.restrict_view({{0}}), std::invalid_argument);
    EXPECT_THROW((void)pd.restrict_view({{}, {0}}), std::invalid_argument);
    EXPECT_THROW((void)pd.restrict_view({{0, 5}, {0}}), std::out_of_range);
    EXPECT_THROW((void)GameView::permute(pd, {0, 0}), std::invalid_argument);
    EXPECT_THROW((void)GameView::permute(pd, {0}), std::invalid_argument);
}

// ------------------------------------------------------- engine view sweeps

TEST(GameView, EngineSweepsOnViewsAreBitIdenticalToMaterialized) {
    util::Rng rng{23};
    for (int trial = 0; trial < 10; ++trial) {
        const auto g = NormalFormGame::random(random_shape(rng, 3), rng);
        std::vector<std::vector<std::size_t>> kept(3);
        for (std::size_t p = 0; p < 3; ++p) kept[p] = random_kept(rng, g.num_actions(p));
        const auto view = g.restrict_view(kept);
        const auto materialized = view.materialize();
        const PayoffEngine engine(materialized);

        const auto mixed = random_mixed(view.action_counts(), rng);
        EXPECT_EQ(expected_payoffs(view, mixed), engine.expected_payoffs(mixed));
        EXPECT_EQ(deviation_payoffs_all(view, mixed), engine.deviation_payoffs_all(mixed));
        for (std::size_t p = 0; p < 3; ++p) {
            EXPECT_EQ(deviation_row(view, mixed, p), engine.deviation_row(mixed, p));
        }

        const auto exact = random_exact(view.action_counts(), rng);
        EXPECT_EQ(expected_payoffs_exact(view, exact), engine.expected_payoffs_exact(exact));
        EXPECT_EQ(deviation_payoffs_all_exact(view, exact),
                  engine.deviation_payoffs_all_exact(exact));
    }
}

TEST(GameView, MultiBlockViewSweepsAreBitIdenticalToMaterialized) {
    // Enough view profiles (> kParallelBlock) to split the sweep into
    // several blocks: pins the incremental running-row odometer across
    // block boundaries (each block re-derives its entry row from the
    // unranked tuple, then steps by cell-offset deltas) against the
    // materialized dense sweep, serial and parallel.
    util::Rng rng{37};
    const auto g = NormalFormGame::random({200, 200}, rng, -5, 5);
    std::vector<std::vector<std::size_t>> kept(2);
    for (std::size_t a = 0; a < 200; ++a) {
        if (a % 5 != 0) kept[0].push_back(a);  // 160 kept
        if (a % 3 != 2) kept[1].push_back(a);  // 134 kept
    }
    const auto view = g.restrict_view(kept);
    ASSERT_GT(view.num_profiles(), PayoffEngine::kParallelBlock);
    const auto materialized = view.materialize();
    const PayoffEngine engine(materialized);
    const auto mixed = random_mixed(view.action_counts(), rng);
    for (const auto mode : {SweepMode::kSerial, SweepMode::kAuto}) {
        EXPECT_EQ(expected_payoffs(view, mixed, mode), engine.expected_payoffs(mixed, mode));
        EXPECT_EQ(deviation_payoffs_all(view, mixed, mode),
                  engine.deviation_payoffs_all(mixed, mode));
    }
    for (std::size_t p = 0; p < 2; ++p) {
        EXPECT_EQ(deviation_row(view, mixed, p), engine.deviation_row(mixed, p));
    }
}

TEST(GameView, ViewSweepValidatesProfileShape) {
    util::Rng rng{29};
    const auto g = NormalFormGame::random({3, 3}, rng);
    const auto view = g.restrict_view({{0, 2}, {1, 2}});
    MixedProfile wrong{{0.5, 0.5, 0.0}, {0.5, 0.5}};  // player 0 has 2 view actions
    EXPECT_THROW((void)expected_payoffs(view, wrong), std::invalid_argument);
}

// -------------------------------------------------- zero-copy elimination

TEST(GameView, IteratedEliminationAllocatesExactlyOneTensor) {
    // A dominance chain: payoff -(own action index) makes action a
    // strictly dominated by a-1 for every player, so elimination walks
    // all the way down to the all-0 profile, one action per round.
    NormalFormGame g({6, 6});
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const auto profile = g.profile_unrank(rank);
        for (std::size_t p = 0; p < 2; ++p) {
            g.set_payoff(profile, p, -static_cast<std::int64_t>(profile[p]));
        }
    }
    const auto before = NormalFormGame::tensor_allocations();
    const auto result = solver::iterated_elimination(g, solver::DominanceKind::kStrictPure);
    const auto after = NormalFormGame::tensor_allocations();
    // 10 elimination rounds, ONE materialization: the view loop allocates
    // no intermediate payoff tensors (the seed path allocated one per
    // round plus the working copy).
    EXPECT_EQ(after - before, 1u);
    EXPECT_EQ(result.trace.size(), 10u);
    EXPECT_EQ(result.reduced.num_profiles(), 1u);
    EXPECT_EQ(result.kept[0], (std::vector<std::size_t>{0}));
    EXPECT_EQ(result.kept[1], (std::vector<std::size_t>{0}));
}

TEST(GameView, ViewsThemselvesAllocateNoTensor) {
    util::Rng rng{31};
    const auto g = NormalFormGame::random({4, 4, 4}, rng);
    const auto before = NormalFormGame::tensor_allocations();
    const auto view = g.restrict_view({{0, 1}, {1, 2, 3}, {2}});
    const auto narrowed = view.restrict({{0}, {0, 2}, {0}});
    (void)narrowed.payoff({0, 1, 0}, 2);
    EXPECT_EQ(NormalFormGame::tensor_allocations(), before);
}

}  // namespace
}  // namespace bnash::game
