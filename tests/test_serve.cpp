// The serving layer: canonical signatures (permutation + affine
// invariance, overflow fallback), the sharded single-flight verdict
// cache with follower-owned deadlines and leader hand-off, the
// RobustnessServer's degradation ladder under scripted fault injection
// — slow tasks against deadlines, poisoned (throwing) tasks,
// cancellation in flight, leader death with follower promotion, queue
// overflow shedding with exponential per-source backoff, resume-token
// lifecycle (mint, seek, reject), streamed frontier columns — and both
// line-protocol fronts (stdin and TCP socket) including parser
// hardening, pipelining bounds, read deadlines, and scheduled
// mid-stream drops.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/robust/robustness.h"
#include "game/catalog.h"
#include "game/normal_form.h"
#include "serve/canonical.h"
#include "serve/fault_schedule.h"
#include "serve/server.h"
#include "serve/socket_front.h"
#include "serve/text_front.h"
#include "util/execution_grant.h"
#include "util/rng.h"
#include "util/work_counters.h"

namespace bnash::serve {
namespace {

using core::CellVerdict;
using game::NormalFormGame;
using game::PureProfile;
using util::Rational;

NormalFormGame asymmetric_game() {
    NormalFormGame game({2, 3});
    util::Rng rng(99);
    for (std::uint64_t rank = 0; rank < game.num_profiles(); ++rank) {
        const PureProfile cell = game.profile_unrank(rank);
        for (std::size_t player = 0; player < 2; ++player) {
            game.set_payoff(cell, player, Rational(rng.next_int(-9, 9)));
        }
    }
    return game;
}

game::ExactMixedProfile pure(const NormalFormGame& game, const PureProfile& actions) {
    return core::as_exact_profile(game, actions);
}

// -------------------------------------------------------- canonicalization

TEST(Canonical, PlayerPermutationInvariant) {
    const NormalFormGame a = asymmetric_game();
    // The same game with the two players swapped (tensor, counts, and the
    // candidate profile carried along).
    NormalFormGame b({3, 2});
    for (std::size_t x = 0; x < 2; ++x) {
        for (std::size_t y = 0; y < 3; ++y) {
            b.set_payoff({y, x}, 0, a.payoff({x, y}, 1));
            b.set_payoff({y, x}, 1, a.payoff({x, y}, 0));
        }
    }
    const auto profile_a = pure(a, {1, 2});
    const auto profile_b = pure(b, {2, 1});
    const CanonicalSignature sig_a = canonical_signature(a, profile_a);
    const CanonicalSignature sig_b = canonical_signature(b, profile_b);
    EXPECT_TRUE(sig_a.normalized);
    EXPECT_EQ(sig_a.bytes, sig_b.bytes);
}

TEST(Canonical, AffineRescaleInvariant) {
    const NormalFormGame a = asymmetric_game();
    NormalFormGame b = a;
    for (std::uint64_t rank = 0; rank < a.num_profiles(); ++rank) {
        const PureProfile cell = a.profile_unrank(rank);
        b.set_payoff(cell, 0, a.payoff_at(rank, 0) * 3 + 5);
        b.set_payoff(cell, 1, a.payoff_at(rank, 1) * Rational(1, 2) - 7);
    }
    const auto profile = pure(a, {0, 1});
    EXPECT_EQ(canonical_signature(a, profile).bytes, canonical_signature(b, profile).bytes);
}

TEST(Canonical, PayoffAndProfileChangesChangeTheKey) {
    const NormalFormGame a = asymmetric_game();
    NormalFormGame b = a;
    b.set_payoff({0, 0}, 0, a.payoff({0, 0}, 0) + 1);
    const auto profile = pure(a, {0, 0});
    EXPECT_NE(canonical_signature(a, profile).bytes, canonical_signature(b, profile).bytes);
    EXPECT_NE(canonical_signature(a, profile).bytes,
              canonical_signature(a, pure(a, {1, 0})).bytes);
}

TEST(Canonical, QueryParametersChangeTheKey) {
    const NormalFormGame a = asymmetric_game();
    const auto profile = pure(a, {0, 0});
    const auto key = [&](std::size_t k, std::size_t t, core::GainCriterion criterion) {
        return canonical_key(a, profile, k, t, criterion);
    };
    EXPECT_NE(key(1, 0, core::GainCriterion::kAnyMemberGains),
              key(2, 0, core::GainCriterion::kAnyMemberGains));
    EXPECT_NE(key(1, 0, core::GainCriterion::kAnyMemberGains),
              key(1, 1, core::GainCriterion::kAnyMemberGains));
    EXPECT_NE(key(1, 0, core::GainCriterion::kAnyMemberGains),
              key(1, 0, core::GainCriterion::kAllMembersGain));
}

TEST(Canonical, OverflowFallsBackToRawTag) {
    // The affine span (2^62)/5 + (2^62)/3 overflows 64-bit rationals, so
    // normalization must fall back to the tagged identity serialization.
    const std::int64_t big = std::int64_t{1} << 62;
    NormalFormGame game({2, 2});
    game.set_payoff({0, 0}, 0, Rational(-big, 3));
    game.set_payoff({1, 1}, 0, Rational(big, 5));
    const auto profile = pure(game, {0, 0});
    const CanonicalSignature sig = canonical_signature(game, profile);
    EXPECT_FALSE(sig.normalized);
    EXPECT_NE(sig.bytes.find("raw"), std::string::npos);
    // Deterministic: the fallback reproduces itself.
    EXPECT_EQ(sig.bytes, canonical_signature(game, profile).bytes);
}

TEST(Canonical, SymmetricGamesFoldToOrbitSizedKeys) {
    // Two symmetry classes: players {0,1} with 2 actions, {2,3} with 3.
    // Payoffs depend only on (own class, own action, sum of all actions),
    // so the game is invariant under within-class relabelings.
    const auto payoff = [](const PureProfile& cell, std::size_t player) {
        const std::int64_t weight = player < 2 ? 3 : 5;
        std::int64_t sum = 0;
        for (const std::size_t action : cell) sum += static_cast<std::int64_t>(action);
        return Rational(static_cast<std::int64_t>(cell[player]) * weight + sum);
    };
    NormalFormGame g({2, 2, 3, 3});
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const PureProfile cell = g.profile_unrank(rank);
        for (std::size_t player = 0; player < 4; ++player) {
            g.set_payoff(cell, player, payoff(cell, player));
        }
    }
    // The same game uploaded with the players reversed.
    NormalFormGame h({3, 3, 2, 2});
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const PureProfile cell = g.profile_unrank(rank);
        PureProfile reversed(cell.rbegin(), cell.rend());
        for (std::size_t player = 0; player < 4; ++player) {
            h.set_payoff(reversed, player, g.payoff(cell, 3 - player));
        }
    }
    const CanonicalSignature sig_g = canonical_signature(g, pure(g, {1, 1, 2, 2}));
    const CanonicalSignature sig_h = canonical_signature(h, pure(h, {2, 2, 1, 1}));
    // Both uploads fold to the SAME orbit-sized ("sym:"-tagged) key.
    EXPECT_NE(sig_g.bytes.find(":sym:"), std::string::npos);
    EXPECT_EQ(sig_g.bytes, sig_h.bytes);
    // An asymmetric game never takes the symmetry path.
    const NormalFormGame plain = asymmetric_game();
    EXPECT_EQ(canonical_signature(plain, pure(plain, {0, 0})).bytes.find(":sym:"),
              std::string::npos);
}

// ----------------------------------------------------------- verdict cache

TEST(VerdictCacheTest, SingleFlightRoles) {
    VerdictCache cache(4);
    auto first = cache.admit("key");
    ASSERT_EQ(first.role, VerdictCache::Role::kLeader);
    auto second = cache.admit("key");
    ASSERT_EQ(second.role, VerdictCache::Role::kFollower);
    cache.fulfill("key", CellVerdict::kBroken);
    const VerdictCache::Resolution resolution = second.pending.get();
    EXPECT_FALSE(resolution.promoted);
    EXPECT_EQ(resolution.verdict, CellVerdict::kBroken);
    auto third = cache.admit("key");
    EXPECT_EQ(third.role, VerdictCache::Role::kHit);
    EXPECT_EQ(third.verdict, CellVerdict::kBroken);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.waits, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(VerdictCacheTest, DegradedResultsAreNotMemoized) {
    VerdictCache cache(1);
    auto leader = cache.admit("key");
    ASSERT_EQ(leader.role, VerdictCache::Role::kLeader);
    auto follower = cache.admit("key");
    cache.fulfill("key", CellVerdict::kUnknown);
    // The stampede still resolves (degradation is shared)...
    EXPECT_EQ(follower.pending.get().verdict, CellVerdict::kUnknown);
    // ...but a later request recomputes instead of inheriting kUnknown.
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
}

TEST(VerdictCacheTest, FailurePropagatesAndDropsTheEntry) {
    VerdictCache cache(1);
    ASSERT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
    auto follower = cache.admit("key");
    cache.fail("key", std::make_exception_ptr(std::runtime_error("poisoned")));
    EXPECT_THROW(follower.pending.get(), std::runtime_error);
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
}

TEST(VerdictCacheTest, ClearKeepsInFlightEntries) {
    VerdictCache cache(2);
    ASSERT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
    ASSERT_EQ(cache.admit("flying").role, VerdictCache::Role::kLeader);
    cache.clear();
    EXPECT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);     // dropped
    EXPECT_EQ(cache.admit("flying").role, VerdictCache::Role::kFollower);  // kept
    cache.fulfill("flying", CellVerdict::kRobust);
}

TEST(VerdictCacheTest, CapacityEvictsLeastRecentlyUsed) {
    VerdictCache cache(1, 2);  // one shard so the whole cap is one slice
    EXPECT_EQ(cache.capacity(), 2u);
    ASSERT_EQ(cache.admit("a").role, VerdictCache::Role::kLeader);
    cache.fulfill("a", CellVerdict::kRobust);
    ASSERT_EQ(cache.admit("b").role, VerdictCache::Role::kLeader);
    cache.fulfill("b", CellVerdict::kBroken);
    // Touch "a" so "b" becomes the least recently used entry.
    EXPECT_EQ(cache.admit("a").role, VerdictCache::Role::kHit);
    ASSERT_EQ(cache.admit("c").role, VerdictCache::Role::kLeader);
    cache.fulfill("c", CellVerdict::kRobust);  // over capacity: "b" goes
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.admit("a").role, VerdictCache::Role::kHit);
    EXPECT_EQ(cache.admit("c").role, VerdictCache::Role::kHit);
    EXPECT_EQ(cache.admit("b").role, VerdictCache::Role::kLeader);  // evicted
    cache.fulfill("b", CellVerdict::kBroken);
}

TEST(VerdictCacheTest, InFlightEntriesAreNeverEvicted) {
    VerdictCache cache(1, 1);
    ASSERT_EQ(cache.admit("flying").role, VerdictCache::Role::kLeader);
    ASSERT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
    // In-flight entries don't count against the cap and can't be victims:
    // the stampede on "flying" stays single-flight.
    EXPECT_EQ(cache.stats().evictions, 0u);
    auto follower = cache.admit("flying");
    ASSERT_EQ(follower.role, VerdictCache::Role::kFollower);
    cache.fulfill("flying", CellVerdict::kBroken);
    EXPECT_EQ(follower.pending.get().verdict, CellVerdict::kBroken);
    // Memoizing "flying" pushed the shard over its slice: "done" (the
    // older complete entry) is the victim.
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.admit("flying").role, VerdictCache::Role::kHit);
    EXPECT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
}

TEST(VerdictCacheTest, DegradedResultsDoNotConsumeCapacity) {
    VerdictCache cache(1, 1);
    ASSERT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
    ASSERT_EQ(cache.admit("vague").role, VerdictCache::Role::kLeader);
    cache.fulfill("vague", CellVerdict::kUnknown);  // never memoized
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.admit("done").role, VerdictCache::Role::kHit);
}

TEST(VerdictCacheTest, EvictionChurnRacesAnInFlightEntry) {
    // Heavy memoize/evict churn around a key that stays in flight: the
    // in-flight entry must survive every eviction scan, and its
    // followers must still resolve. (The interesting assertions here are
    // TSan's.)
    VerdictCache cache(1, 2);
    ASSERT_EQ(cache.admit("hot").role, VerdictCache::Role::kLeader);
    std::vector<std::thread> churners;
    for (int worker = 0; worker < 4; ++worker) {
        churners.emplace_back([&cache, worker] {
            for (int i = 0; i < 64; ++i) {
                const std::string key = "cold-" + std::to_string(worker) + "-" +
                                        std::to_string(i);
                if (cache.admit(key).role == VerdictCache::Role::kLeader) {
                    cache.fulfill(key, CellVerdict::kRobust);
                }
            }
        });
    }
    auto follower = cache.admit("hot");
    ASSERT_EQ(follower.role, VerdictCache::Role::kFollower);
    for (std::thread& churner : churners) churner.join();
    // "hot" stayed in flight through every eviction scan; fulfilling it
    // now memoizes it as the most recent entry.
    cache.fulfill("hot", CellVerdict::kBroken);
    EXPECT_EQ(follower.pending.get().verdict, CellVerdict::kBroken);
    EXPECT_EQ(cache.admit("hot").role, VerdictCache::Role::kHit);
    EXPECT_GT(cache.stats().evictions, 0u);
}

// ------------------------------------------- cache promotion (hand-off)

TEST(VerdictCacheTest, DegradePromotesTheLongestDeadlineLiveFollower) {
    using Clock = util::ExecutionGrant::Clock;
    VerdictCache cache(1);
    ASSERT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);

    const auto bounded = std::make_shared<util::ExecutionGrant>(
        util::ExecutionGrant::kUnlimited, Clock::now() + std::chrono::hours(1));
    const auto expired = std::make_shared<util::ExecutionGrant>();
    expired->cancel();
    const auto infinite = std::make_shared<util::ExecutionGrant>();  // no deadline

    auto bounded_waiter = cache.admit("key", bounded);
    auto expired_waiter = cache.admit("key", expired);
    auto infinite_waiter = cache.admit("key", infinite);
    ASSERT_EQ(bounded_waiter.role, VerdictCache::Role::kFollower);
    ASSERT_EQ(expired_waiter.role, VerdictCache::Role::kFollower);
    ASSERT_EQ(infinite_waiter.role, VerdictCache::Role::kFollower);

    // Leader dies: the deadline-free follower outranks the 1h one, and
    // the expired follower is skipped and resolved degraded on the spot.
    EXPECT_TRUE(cache.degrade("key", "token-1"));
    const VerdictCache::Resolution dropped = expired_waiter.pending.get();
    EXPECT_FALSE(dropped.promoted);
    EXPECT_EQ(dropped.verdict, CellVerdict::kUnknown);
    EXPECT_EQ(dropped.checkpoint, "token-1");
    const VerdictCache::Resolution promoted = infinite_waiter.pending.get();
    EXPECT_TRUE(promoted.promoted);
    EXPECT_EQ(promoted.checkpoint, "token-1");
    // The bounded follower keeps waiting on the new leader...
    EXPECT_NE(bounded_waiter.pending.wait_for(std::chrono::milliseconds(0)),
              std::future_status::ready);
    // ...and the entry is still in flight (new arrivals become followers).
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kFollower);
    // The promoted leader finishes the sweep and fulfills as usual.
    cache.fulfill("key", CellVerdict::kRobust);
    EXPECT_EQ(bounded_waiter.pending.get().verdict, CellVerdict::kRobust);
    EXPECT_EQ(cache.stats().promotions, 1u);
}

TEST(VerdictCacheTest, LaterDeadlineWinsThePromotion) {
    using Clock = util::ExecutionGrant::Clock;
    VerdictCache cache(1);
    ASSERT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
    const auto near = std::make_shared<util::ExecutionGrant>(
        util::ExecutionGrant::kUnlimited, Clock::now() + std::chrono::hours(1));
    const auto far = std::make_shared<util::ExecutionGrant>(
        util::ExecutionGrant::kUnlimited, Clock::now() + std::chrono::hours(2));
    auto near_waiter = cache.admit("key", near);
    auto far_waiter = cache.admit("key", far);
    EXPECT_TRUE(cache.degrade("key", "tok"));
    EXPECT_TRUE(far_waiter.pending.get().promoted);
    EXPECT_NE(near_waiter.pending.wait_for(std::chrono::milliseconds(0)),
              std::future_status::ready);
    cache.fulfill("key", CellVerdict::kBroken);
    EXPECT_EQ(near_waiter.pending.get().verdict, CellVerdict::kBroken);
}

TEST(VerdictCacheTest, DegradeWithNoLiveFollowerResolvesTheBurst) {
    VerdictCache cache(1);
    ASSERT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
    const auto expired = std::make_shared<util::ExecutionGrant>();
    expired->cancel();
    auto waiter = cache.admit("key", expired);
    // The only follower is already expired: nobody can carry the sweep.
    EXPECT_FALSE(cache.degrade("key", "tok"));
    const VerdictCache::Resolution resolution = waiter.pending.get();
    EXPECT_FALSE(resolution.promoted);
    EXPECT_EQ(resolution.verdict, CellVerdict::kUnknown);
    EXPECT_EQ(resolution.checkpoint, "tok");
    // The entry is gone: a retry starts fresh.
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
    EXPECT_EQ(cache.stats().promotions, 0u);
}

TEST(VerdictCacheTest, DegradeWithZeroFollowersErasesTheEntry) {
    VerdictCache cache(1);
    ASSERT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
    EXPECT_FALSE(cache.degrade("key", "tok"));
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
}

// ----------------------------------------------------------------- server

QueryRequest pd_request(std::size_t action, std::size_t k = 1, std::size_t t = 0) {
    QueryRequest request;
    request.game = game::catalog::prisoners_dilemma();
    request.profile = pure(request.game, PureProfile(2, action));
    request.k = k;
    request.t = t;
    return request;
}

// A (2,1)-robust query big enough to truncate under small budgets;
// serial mode so checkpoints land at deterministic task boundaries.
QueryRequest attack_request() {
    QueryRequest request;
    request.game = game::catalog::attack_coordination_game(5);
    request.profile = pure(request.game, PureProfile(5, 1));
    request.k = 2;
    request.t = 1;
    request.mode = game::SweepMode::kSerial;
    return request;
}

TEST(Server, ResolvesExactVerdicts) {
    RobustnessServer server;
    // (D, D) is the PD's Nash equilibrium: (1,0)-robust.
    const QueryResponse robust = server.query(pd_request(1));
    EXPECT_EQ(robust.status, QueryStatus::kResolved);
    EXPECT_EQ(robust.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(robust.cache_hit);
    // (C, C) is not: either player gains by defecting.
    const QueryResponse broken = server.query(pd_request(0));
    EXPECT_EQ(broken.status, QueryStatus::kResolved);
    EXPECT_EQ(broken.verdict, CellVerdict::kBroken);
    const auto stats = server.stats();
    EXPECT_EQ(stats.resolved, 2u);
    EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(Server, BudgetDegradesThenRetryResolvesThenMemoizes) {
    RobustnessServer server;
    QueryRequest request;
    request.game = game::catalog::attack_coordination_game(5);
    request.profile = pure(request.game, PureProfile(5, 1));
    request.k = 2;
    request.t = 1;

    request.budget_cells = 4;
    const QueryResponse degraded = server.query(request);
    EXPECT_EQ(degraded.status, QueryStatus::kDegraded);
    EXPECT_EQ(degraded.verdict, CellVerdict::kUnknown);
    EXPECT_GT(degraded.cells_charged, 0u);
    EXPECT_FALSE(degraded.resume_token.empty());

    request.budget_cells = util::ExecutionGrant::kUnlimited;
    const QueryResponse resolved = server.query(request);
    EXPECT_EQ(resolved.status, QueryStatus::kResolved);
    EXPECT_EQ(resolved.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(resolved.cache_hit);  // the degraded answer was not cached

    const util::WorkCounters before = util::work_counters_snapshot();
    const QueryResponse hit = server.query(request);
    const util::WorkCounters after = util::work_counters_snapshot();
    EXPECT_EQ(hit.status, QueryStatus::kResolved);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.cells_charged, 0u);
    // Counter-verified: a cache hit performs no sweep work at all.
    EXPECT_EQ(before.cells_visited, after.cells_visited);
    EXPECT_EQ(before.offsets_advanced, after.offsets_advanced);

    const auto stats = server.stats();
    EXPECT_EQ(stats.degraded, 1u);
    EXPECT_EQ(stats.resolved, 2u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 2u);  // degraded miss + resolving miss
}

TEST(Server, RescaledUploadHitsTheSameEntry) {
    RobustnessServer server;
    const QueryResponse first = server.query(pd_request(1));
    ASSERT_EQ(first.status, QueryStatus::kResolved);
    QueryRequest rescaled = pd_request(1);
    for (std::uint64_t rank = 0; rank < rescaled.game.num_profiles(); ++rank) {
        const PureProfile cell = rescaled.game.profile_unrank(rank);
        for (std::size_t player = 0; player < 2; ++player) {
            rescaled.game.set_payoff(cell, player,
                                     rescaled.game.payoff_at(rank, player) * 2 + 7);
        }
    }
    const QueryResponse second = server.query(rescaled);
    EXPECT_EQ(second.verdict, first.verdict);
    EXPECT_TRUE(second.cache_hit);
}

TEST(Server, BoundedCacheEvictsAndReports) {
    RobustnessServer::Options options;
    options.cache_shards = 1;
    options.cache_capacity = 1;
    RobustnessServer server(options);
    ASSERT_EQ(server.query(pd_request(1)).status, QueryStatus::kResolved);
    ASSERT_EQ(server.query(pd_request(0)).status, QueryStatus::kResolved);
    EXPECT_EQ(server.stats().cache_evictions, 1u);
    // The evicted entry recomputes: correctness survives bounding, only
    // the repeat-query latency changes.
    const QueryResponse repeat = server.query(pd_request(1));
    EXPECT_EQ(repeat.status, QueryStatus::kResolved);
    EXPECT_EQ(repeat.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(repeat.cache_hit);
}

TEST(Server, SlowTaskAgainstDeadlineDegrades) {
    RobustnessServer server;
    server.set_fault_hook([](const QueryRequest&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    QueryRequest request = pd_request(1);
    request.deadline = std::chrono::milliseconds(1);
    const QueryResponse response = server.query(request);
    EXPECT_EQ(response.status, QueryStatus::kDegraded);
    EXPECT_EQ(response.verdict, CellVerdict::kUnknown);
}

TEST(Server, PoisonedTaskErrorsAndRetrySucceeds) {
    RobustnessServer server;
    server.set_fault_hook(
        [](const QueryRequest&) { throw std::runtime_error("injected fault"); });
    const QueryResponse poisoned = server.query(pd_request(1));
    EXPECT_EQ(poisoned.status, QueryStatus::kError);
    EXPECT_NE(poisoned.error.find("injected fault"), std::string::npos);
    // The failure dropped the in-flight cache entry: a clean retry works.
    server.set_fault_hook(std::function<void(const QueryRequest&)>{});
    const QueryResponse retry = server.query(pd_request(1));
    EXPECT_EQ(retry.status, QueryStatus::kResolved);
    EXPECT_EQ(retry.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(retry.cache_hit);
    EXPECT_EQ(server.stats().errors, 1u);
}

TEST(Server, CancelInFlightDegradesInsteadOfBlocking) {
    RobustnessServer::Options options;
    options.num_workers = 1;
    RobustnessServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    server.set_fault_hook([&](const QueryRequest&) {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    RobustnessServer::Submission submission = server.submit(pd_request(1));
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return started; });
    }
    submission.grant->cancel();  // the request is mid-flight on the worker
    {
        std::unique_lock<std::mutex> lock(mutex);
        release = true;
        cv.notify_all();
    }
    const QueryResponse response = submission.result.get();
    EXPECT_EQ(response.status, QueryStatus::kDegraded);
    EXPECT_EQ(response.verdict, CellVerdict::kUnknown);
    EXPECT_EQ(server.stats().degraded, 1u);
}

TEST(Server, FullQueueShedsWithRetryAfter) {
    RobustnessServer::Options options;
    options.num_workers = 1;
    options.queue_capacity = 1;
    options.retry_after_ms = 25;
    RobustnessServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    server.set_fault_hook([&](const QueryRequest&) {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    // First request occupies the worker...
    RobustnessServer::Submission first = server.submit(pd_request(1));
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return started; });
    }
    // ...second fills the queue, third is shed at admission.
    RobustnessServer::Submission second = server.submit(pd_request(0));
    RobustnessServer::Submission third = server.submit(pd_request(1, 2, 0));
    const QueryResponse shed = third.result.get();
    EXPECT_EQ(shed.status, QueryStatus::kRejected);
    EXPECT_GE(shed.retry_after_ms, 25u);
    {
        std::unique_lock<std::mutex> lock(mutex);
        release = true;
        cv.notify_all();
    }
    EXPECT_EQ(first.result.get().status, QueryStatus::kResolved);
    EXPECT_EQ(second.result.get().status, QueryStatus::kResolved);
    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.rejected, 1u);
}

TEST(Server, ConsecutiveShedsBackOffExponentiallyAndResetOnAdmit) {
    RobustnessServer::Options options;
    options.num_workers = 1;
    options.queue_capacity = 1;
    options.retry_after_ms = 10;
    options.retry_backoff_cap = 3;
    RobustnessServer server(options);
    std::atomic<int> entered{0};
    std::atomic<bool> gate{false};
    server.set_fault_hook([&](const QueryRequest&) {
        entered.fetch_add(1);
        while (!gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    // Only cache LEADERS reach the hook, so waiting on `entered` proves
    // the worker has dequeued the blocking request (and the queue slot is
    // free again).
    const auto wait_entered = [&](int count) {
        const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (entered.load() < count && std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ASSERT_GE(entered.load(), count);
    };
    QueryRequest burst = pd_request(1);
    burst.source = "burst";
    QueryRequest other = pd_request(1);
    other.source = "other";

    // Occupy the worker and fill the queue, then hammer from one source.
    RobustnessServer::Submission in_flight = server.submit(pd_request(1));
    wait_entered(1);
    RobustnessServer::Submission queued = server.submit(pd_request(0));
    // With the queue pinned at depth 1, the base hint is 10 * (1 + 1).
    EXPECT_EQ(server.submit(burst).result.get().retry_after_ms, 20u);   // streak 1
    EXPECT_EQ(server.submit(burst).result.get().retry_after_ms, 40u);   // streak 2
    EXPECT_EQ(server.submit(burst).result.get().retry_after_ms, 80u);   // streak 3
    EXPECT_EQ(server.submit(burst).result.get().retry_after_ms, 160u);  // streak 4
    EXPECT_EQ(server.submit(burst).result.get().retry_after_ms, 160u);  // capped at 2^3
    // A different source keeps its own (fresh) streak.
    EXPECT_EQ(server.submit(other).result.get().retry_after_ms, 20u);

    gate.store(true);
    EXPECT_EQ(in_flight.result.get().status, QueryStatus::kResolved);
    EXPECT_EQ(queued.result.get().status, QueryStatus::kResolved);
    // An ADMITTED request from the burst source resets its streak. (This
    // one is a cache hit, so it never reaches the gate hook.)
    EXPECT_EQ(server.submit(burst).result.get().status, QueryStatus::kResolved);

    // Re-block with UNCACHED queries (memoized ones skip the gate hook).
    gate.store(false);
    RobustnessServer::Submission refill_flight = server.submit(pd_request(1, 2, 0));
    wait_entered(3);  // 1: in_flight, 2: queued, 3: refill_flight
    RobustnessServer::Submission refill_queue = server.submit(pd_request(0, 2, 1));
    // ...so the next shed starts from the base hint again.
    EXPECT_EQ(server.submit(burst).result.get().retry_after_ms, 20u);
    gate.store(true);
    EXPECT_EQ(refill_flight.result.get().status, QueryStatus::kResolved);
    EXPECT_EQ(refill_queue.result.get().status, QueryStatus::kResolved);
}

TEST(Server, CacheStampedeIsSingleFlight) {
    RobustnessServer::Options options;
    options.num_workers = 3;
    RobustnessServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> leaders{0};
    server.set_fault_hook([&](const QueryRequest&) {
        leaders.fetch_add(1);  // only cache leaders reach the hook
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
    });
    RobustnessServer::Submission a = server.submit(pd_request(1));
    RobustnessServer::Submission b = server.submit(pd_request(1));
    RobustnessServer::Submission c = server.submit(pd_request(1));
    // Wait until both non-leaders are parked on the leader's future.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().stampede_waits < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(server.stats().stampede_waits, 2u);
    {
        std::unique_lock<std::mutex> lock(mutex);
        release = true;
        cv.notify_all();
    }
    for (auto* submission : {&a, &b, &c}) {
        const QueryResponse response = submission->result.get();
        EXPECT_EQ(response.status, QueryStatus::kResolved);
        EXPECT_EQ(response.verdict, CellVerdict::kRobust);
    }
    EXPECT_EQ(leaders.load(), 1);  // one sweep served the whole burst
    EXPECT_EQ(server.stats().cache_misses, 1u);
}

TEST(Server, ShutdownRejectsQueuedRequests) {
    std::future<QueryResponse> queued_1;
    std::future<QueryResponse> queued_2;
    std::future<QueryResponse> in_flight;
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    std::thread releaser;
    {
        RobustnessServer::Options options;
        options.num_workers = 1;
        options.queue_capacity = 8;
        RobustnessServer server(options);
        server.set_fault_hook([&](const QueryRequest&) {
            std::unique_lock<std::mutex> lock(mutex);
            started = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        });
        in_flight = server.submit(pd_request(1)).result;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return started; });
        }
        queued_1 = server.submit(pd_request(0)).result;
        queued_2 = server.submit(pd_request(1, 2, 0)).result;
        // Unblock the worker well after ~RobustnessServer() has latched
        // stopping; the in-flight request finishes, the queued ones drain
        // as rejected.
        releaser = std::thread([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            std::unique_lock<std::mutex> lock(mutex);
            release = true;
            cv.notify_all();
        });
    }
    releaser.join();
    EXPECT_EQ(in_flight.get().status, QueryStatus::kResolved);
    EXPECT_EQ(queued_1.get().status, QueryStatus::kRejected);
    EXPECT_EQ(queued_2.get().status, QueryStatus::kRejected);
}

// ---------------------------------------------------------- resume tokens

TEST(ServerResume, BudgetedRetriesChainThroughOneSweep) {
    // Reference: the unbudgeted cost of the query, on a throwaway server
    // so nothing is memoized where the budgeted chain runs.
    std::uint64_t full_cost = 0;
    {
        RobustnessServer reference;
        const QueryResponse unbudgeted = reference.query(attack_request());
        ASSERT_EQ(unbudgeted.status, QueryStatus::kResolved);
        ASSERT_EQ(unbudgeted.verdict, CellVerdict::kRobust);
        full_cost = unbudgeted.cells_charged;
    }
    ASSERT_GT(full_cost, 0u);

    RobustnessServer server;
    QueryRequest request = attack_request();
    request.budget_cells = std::max<std::uint64_t>(full_cost / 4, 1);
    QueryResponse response = server.query(request);
    std::uint64_t total_cells = response.cells_charged;
    std::size_t retries = 0;
    while (response.status == QueryStatus::kDegraded && retries < 64) {
        EXPECT_FALSE(response.resume_token.empty());
        request.resume_token = response.resume_token;
        response = server.query(request);
        total_cells += response.cells_charged;
        ++retries;
    }
    EXPECT_EQ(response.status, QueryStatus::kResolved);
    EXPECT_EQ(response.verdict, CellVerdict::kRobust);
    EXPECT_GE(retries, 2u);
    // The retries seeked past resolved work: the chain costs far less
    // than recomputing from scratch each time. (The tight <= 1.15x gate
    // runs on the large-grid fuzz corpus in test_grant.)
    EXPECT_LT(total_cells, full_cost * retries);

    // The chained verdict is memoized like any exact verdict.
    request.resume_token.clear();
    request.budget_cells = util::ExecutionGrant::kUnlimited;
    EXPECT_TRUE(server.query(request).cache_hit);
}

TEST(ServerResume, TokenFromDifferentRequestIsRejected) {
    RobustnessServer server;
    QueryRequest request = attack_request();
    request.budget_cells = 8;
    const QueryResponse degraded = server.query(request);
    ASSERT_EQ(degraded.status, QueryStatus::kDegraded);
    ASSERT_FALSE(degraded.resume_token.empty());

    // Same token, different (k, t): the checkpoint's task ranks would
    // seek into the wrong enumeration — refused outright.
    QueryRequest other = attack_request();
    other.k = 3;
    other.resume_token = degraded.resume_token;
    const QueryResponse rejected = server.query(other);
    EXPECT_EQ(rejected.status, QueryStatus::kError);
    EXPECT_NE(rejected.error.find("does not match"), std::string::npos);

    // Different game entirely.
    QueryRequest wrong_game = pd_request(1);
    wrong_game.resume_token = degraded.resume_token;
    EXPECT_EQ(server.query(wrong_game).status, QueryStatus::kError);

    // The original request still accepts its own token.
    request.resume_token = degraded.resume_token;
    request.budget_cells = util::ExecutionGrant::kUnlimited;
    const QueryResponse resumed = server.query(request);
    EXPECT_EQ(resumed.status, QueryStatus::kResolved);
    EXPECT_EQ(resumed.verdict, CellVerdict::kRobust);
}

TEST(ServerResume, StaleGenerationAndGarbageTokensAreRejected) {
    RobustnessServer server;
    QueryRequest request = attack_request();
    request.budget_cells = 8;
    const QueryResponse degraded = server.query(request);
    ASSERT_EQ(degraded.status, QueryStatus::kDegraded);

    server.invalidate_resume_tokens();
    request.resume_token = degraded.resume_token;
    request.budget_cells = util::ExecutionGrant::kUnlimited;
    const QueryResponse stale = server.query(request);
    EXPECT_EQ(stale.status, QueryStatus::kError);
    EXPECT_NE(stale.error.find("stale"), std::string::npos);

    for (const char* garbage :
         {"zzz", "c.0", "c.0.1.not-a-number", "f.0.1.2.3",
          "c.99999999999999999999999999999999.1.2"}) {
        request.resume_token = garbage;
        const QueryResponse rejected = server.query(request);
        EXPECT_EQ(rejected.status, QueryStatus::kError) << garbage;
    }
    // A rejected token leaves no cache debris: the clean query resolves.
    request.resume_token.clear();
    EXPECT_EQ(server.query(request).status, QueryStatus::kResolved);
}

// ------------------------------------------------- promotion, end to end

TEST(Server, LeaderDeathPromotesFollowerWhichFinishesTheSweep) {
    RobustnessServer::Options options;
    options.num_workers = 2;
    RobustnessServer server(options);
    std::atomic<int> arrivals{0};
    server.set_fault_hook([&](const QueryRequest&, util::ExecutionGrant& grant) {
        if (arrivals.fetch_add(1) != 0) return;  // only the first leader dies
        // Wait for a follower to park on us, then starve our grant so the
        // sweep truncates at its first checkpoint.
        const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (server.stats().stampede_waits < 1 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        grant.restrict_budget(1);
    });
    RobustnessServer::Submission a = server.submit(attack_request());
    RobustnessServer::Submission b = server.submit(attack_request());
    const QueryResponse ra = a.result.get();
    const QueryResponse rb = b.result.get();

    // One of the two was the dying leader (degraded, with a token); the
    // other inherited the checkpoint, finished the sweep, and resolved.
    const QueryResponse& dead = ra.status == QueryStatus::kDegraded ? ra : rb;
    const QueryResponse& alive = ra.status == QueryStatus::kDegraded ? rb : ra;
    EXPECT_EQ(dead.status, QueryStatus::kDegraded);
    EXPECT_FALSE(dead.resume_token.empty());
    EXPECT_EQ(alive.status, QueryStatus::kResolved);
    EXPECT_EQ(alive.verdict, CellVerdict::kRobust);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.cache_promotions, 1u);
    EXPECT_EQ(stats.degraded, 1u);
    EXPECT_EQ(stats.resolved, 1u);
    // The promoted run resumed rather than restarting: both runs
    // together cost about one sweep, not two.
    EXPECT_EQ(arrivals.load(), 2);
}

// ---------------------------------------------------------- fault schedule

TEST(FaultScheduleTest, DrivesEveryDegradationRung) {
    RobustnessServer server;
    FaultSchedule schedule;
    schedule.throw_at(1, "scripted poison");
    schedule.starve_at(2, 4);
    schedule.install(server);

    // Arrival 0: untouched, resolves.
    EXPECT_EQ(server.query(attack_request()).status, QueryStatus::kResolved);
    // Arrival 1: poisoned (different request so the memo doesn't absorb it).
    const QueryResponse poisoned = server.query(pd_request(1));
    EXPECT_EQ(poisoned.status, QueryStatus::kError);
    EXPECT_NE(poisoned.error.find("scripted poison"), std::string::npos);
    // Arrival 2: starved to 4 cells — degrades with a token. (A robust
    // query: a broken one could pin its witness inside the budget and
    // resolve exactly.)
    QueryRequest starved = attack_request();
    starved.k = 1;
    const QueryResponse degraded = server.query(starved);
    EXPECT_EQ(degraded.status, QueryStatus::kDegraded);
    ASSERT_FALSE(degraded.resume_token.empty());
    // ...arrival 3: the resumed retry finishes.
    starved.resume_token = degraded.resume_token;
    const QueryResponse resumed = server.query(starved);
    EXPECT_EQ(resumed.status, QueryStatus::kResolved);
    EXPECT_EQ(schedule.queries_seen(), 4u);
}

// ----------------------------------------------------------- frontier grid

FrontierRequest frontier_request(std::size_t max_k, std::size_t max_t) {
    FrontierRequest request;
    request.game = game::catalog::attack_coordination_game(5);
    request.profile = pure(request.game, PureProfile(5, 1));
    request.max_k = max_k;
    request.max_t = max_t;
    request.mode = game::SweepMode::kSerial;
    return request;
}

TEST(ServerFrontier, StreamsEveryColumnAndResolves) {
    RobustnessServer server;
    std::vector<std::size_t> streamed_ts;
    const FrontierResponse response = server.frontier(
        frontier_request(2, 2),
        [&](std::size_t t, std::size_t breaking_k, const core::RobustnessViolation*) {
            streamed_ts.push_back(t);
            EXPECT_LE(breaking_k, 3u);  // 0..max_k+1
        });
    ASSERT_EQ(response.status, QueryStatus::kResolved);
    EXPECT_TRUE(response.frontier.complete());
    EXPECT_EQ(response.stream_columns, 3u);
    EXPECT_EQ(streamed_ts.size(), 3u);
    EXPECT_EQ(std::set<std::size_t>(streamed_ts.begin(), streamed_ts.end()),
              (std::set<std::size_t>{0, 1, 2}));
    EXPECT_TRUE(response.resume_token.empty());
}

TEST(ServerFrontier, ResumedRetriesReassembleBitIdenticallyWithoutReStreaming) {
    RobustnessServer server;
    // Unbudgeted reference run (frontiers are uncached, so one server is
    // fine).
    const FrontierResponse full = server.frontier(frontier_request(2, 2));
    ASSERT_EQ(full.status, QueryStatus::kResolved);
    const std::uint64_t full_cost = full.cells_charged;
    ASSERT_GT(full_cost, 0u);

    // Budgeted chain: each retry presents the previous token; each
    // column must stream from EXACTLY one run.
    FrontierRequest request = frontier_request(2, 2);
    request.budget_cells = std::max<std::uint64_t>(full_cost / 3, 1);
    std::vector<std::size_t> streamed_ts;
    const auto sink = [&](std::size_t t, std::size_t, const core::RobustnessViolation*) {
        streamed_ts.push_back(t);
    };
    FrontierResponse partial = server.frontier(request, sink);
    core::FrontierVerdict assembled = partial.frontier;
    std::size_t retries = 0;
    while (partial.status == QueryStatus::kDegraded && retries < 64) {
        ASSERT_FALSE(partial.resume_token.empty());
        request.resume_token = partial.resume_token;
        partial = server.frontier(request, sink);
        core::merge_frontier(assembled, partial.frontier);
        ++retries;
    }
    ASSERT_EQ(partial.status, QueryStatus::kResolved);
    EXPECT_GE(retries, 1u);
    // Reassembled grid == the unbudgeted grid, witnesses included.
    EXPECT_EQ(assembled, full.frontier);
    // No column streamed twice, and all columns streamed once overall.
    std::set<std::size_t> unique_ts(streamed_ts.begin(), streamed_ts.end());
    EXPECT_EQ(unique_ts.size(), streamed_ts.size());
    EXPECT_EQ(unique_ts, (std::set<std::size_t>{0, 1, 2}));
}

TEST(ServerFrontier, WrongKindTokenIsRejected) {
    RobustnessServer server;
    // Mint a CELL token, present it to the frontier path (and vice versa).
    QueryRequest cell = attack_request();
    cell.budget_cells = 8;
    const QueryResponse degraded_cell = server.query(cell);
    ASSERT_EQ(degraded_cell.status, QueryStatus::kDegraded);

    FrontierRequest grid = frontier_request(2, 1);
    grid.resume_token = degraded_cell.resume_token;
    const FrontierResponse rejected = server.frontier(grid);
    EXPECT_EQ(rejected.status, QueryStatus::kError);

    grid.resume_token.clear();
    grid.budget_cells = 8;
    const FrontierResponse degraded_grid = server.frontier(grid);
    ASSERT_EQ(degraded_grid.status, QueryStatus::kDegraded);
    QueryRequest cell_with_grid_token = attack_request();
    cell_with_grid_token.resume_token = degraded_grid.resume_token;
    EXPECT_EQ(server.query(cell_with_grid_token).status, QueryStatus::kError);
}

// ------------------------------------------------------------- text front

TEST(TextFront, ServesTheLineProtocol) {
    RobustnessServer server;
    std::istringstream in(
        "# prisoners dilemma\n"
        "game 2 2 2\n"
        "payoffs 3 3 -5 5 5 -5 -3 -3\n"
        "profile 1 1\n"
        "ask 1 0\n"
        "profile 0 0\n"
        "ask 1 0\n"
        "mixed 0 1/2 1/2\n"
        "bogus command\n"
        "ask 1 0 999999\n"
        "stats\n"
        "quit\n"
        "ask 1 0\n");
    std::ostringstream out;
    const std::size_t asks = run_text_front(in, out, server);
    EXPECT_EQ(asks, 3u);  // the post-quit ask is never read
    const std::string text = out.str();
    EXPECT_NE(text.find("verdict=robust status=resolved"), std::string::npos);
    EXPECT_NE(text.find("verdict=broken status=resolved"), std::string::npos);
    EXPECT_NE(text.find("error: unknown command 'bogus'"), std::string::npos);
    EXPECT_NE(text.find("accepted=3"), std::string::npos);
}

TEST(TextFront, ReportsParseErrorsAndContinues) {
    RobustnessServer server;
    std::istringstream in(
        "ask 1 0\n"
        "game 2 2\n"
        "game 2 2 2\n"
        "payoffs 1 2 3\n"
        "profile 9 9\n"
        "profile 1 1\n"
        "ask 1 0\n");
    std::ostringstream out;
    const std::size_t asks = run_text_front(in, out, server);
    EXPECT_EQ(asks, 1u);
    const std::string text = out.str();
    EXPECT_NE(text.find("error: no game declared"), std::string::npos);
    EXPECT_NE(text.find("error: game: expected 2 action counts"), std::string::npos);
    EXPECT_NE(text.find("error: payoffs: expected 8 values"), std::string::npos);
    EXPECT_NE(text.find("error: profile: action out of range"), std::string::npos);
    EXPECT_NE(text.find("verdict="), std::string::npos);
}

TEST(TextFront, HardenedAgainstHugeIntegersAndZeroDenominators) {
    RobustnessServer server;
    std::istringstream in(
        "game 2 2 2\n"
        "ask 99999999999999999999999999999999 0\n"
        "payoffs 1/0 0 0 0 0 0 0 0\n"
        "game 184467440737095516151844674407370955161 2\n"
        "profile 1 1\n"
        "ask 1 0\n");
    std::ostringstream out;
    const std::size_t asks = run_text_front(in, out, server);
    // The session survived every malformed line and served the final ask.
    EXPECT_EQ(asks, 1u);
    const std::string text = out.str();
    EXPECT_NE(text.find("error: integer out of range: "
                        "'99999999999999999999999999999999'"),
              std::string::npos);
    EXPECT_NE(text.find("error: rational '1/0': zero denominator"), std::string::npos);
    EXPECT_NE(text.find("error: integer out of range"), std::string::npos);
    EXPECT_NE(text.find("verdict=robust"), std::string::npos);
}

TEST(TextFront, ResumeCommandChainsDegradedAsks) {
    RobustnessServer server;
    // Degrade once under a tiny budget, then resume with full budget.
    std::istringstream setup(
        "game 2 2 2\n"
        "payoffs 3 3 -5 5 5 -5 -3 -3\n"
        "profile 1 1\n"
        "mode serial\n"
        "ask 2 1 4\n");
    std::ostringstream out;
    run_text_front(setup, out, server);
    const std::string first = out.str();
    const std::size_t token_at = first.find("token=");
    ASSERT_NE(token_at, std::string::npos) << first;
    std::string token = first.substr(token_at + 6);
    token = token.substr(0, token.find_first_of(" \n"));

    std::istringstream retry(
        "game 2 2 2\n"
        "payoffs 3 3 -5 5 5 -5 -3 -3\n"
        "profile 1 1\n"
        "mode serial\n"
        "resume " + token + "\n"
        "ask 2 1\n");
    std::ostringstream out2;
    run_text_front(retry, out2, server);
    EXPECT_NE(out2.str().find("status=resolved"), std::string::npos) << out2.str();
}

TEST(TextFront, FrontierStreamsColumnsAndTerminates) {
    RobustnessServer server;
    std::istringstream in(
        "game 2 2 2\n"
        "payoffs 3 3 -5 5 5 -5 -3 -3\n"
        "profile 1 1\n"
        "mode serial\n"
        "frontier 1 1\n");
    std::ostringstream out;
    run_text_front(in, out, server);
    const std::string text = out.str();
    EXPECT_NE(text.find("col 0 "), std::string::npos) << text;
    EXPECT_NE(text.find("col 1 "), std::string::npos) << text;
    EXPECT_NE(text.find("done cells="), std::string::npos) << text;
    EXPECT_NE(text.find("cols=2"), std::string::npos) << text;
}

// ------------------------------------------------------------ socket front

// Runs the TCP front on a background thread; joins (and surfaces the
// front's stats) on stop().
class SocketHarness final {
public:
    explicit SocketHarness(RobustnessServer& server, SocketFrontOptions options = {}) {
        std::promise<std::uint16_t> port_promise;
        options.on_listen = [&port_promise](std::uint16_t port) {
            port_promise.set_value(port);
        };
        thread_ = std::thread([this, &server, options] {
            stats_ = run_socket_front(server, options, stop_);
        });
        port_ = port_promise.get_future().get();
    }
    ~SocketHarness() { stop(); }

    void stop() {
        if (thread_.joinable()) {
            stop_.store(true);
            thread_.join();
        }
    }
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    // Valid after stop().
    [[nodiscard]] const SocketFrontStats& stats() const noexcept { return stats_; }

private:
    std::atomic<bool> stop_{false};
    std::uint16_t port_ = 0;
    SocketFrontStats stats_;
    std::thread thread_;
};

class TestClient final {
public:
    explicit TestClient(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
    }
    ~TestClient() {
        if (fd_ >= 0) ::close(fd_);
    }
    TestClient(const TestClient&) = delete;
    TestClient& operator=(const TestClient&) = delete;

    [[nodiscard]] bool connected() const noexcept { return connected_; }

    bool send_raw(const std::string& data) {
        std::size_t sent = 0;
        while (sent < data.size()) {
            const ssize_t wrote =
                ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
            if (wrote < 0) return false;
            sent += static_cast<std::size_t>(wrote);
        }
        return true;
    }
    bool send_line(const std::string& line) { return send_raw(line + "\n"); }

    // One reply line, or nullopt on EOF / timeout.
    std::optional<std::string> read_line(
        std::chrono::milliseconds timeout = std::chrono::seconds(20)) {
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        while (true) {
            const std::size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string line = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return line;
            }
            const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            if (remaining.count() <= 0) return std::nullopt;
            pollfd poll_fd{fd_, POLLIN, 0};
            const int ready = ::poll(&poll_fd, 1, static_cast<int>(remaining.count()));
            if (ready <= 0) {
                if (ready < 0 && errno == EINTR) continue;
                return std::nullopt;
            }
            char chunk[4096];
            const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
            if (got <= 0) return std::nullopt;  // EOF
            buffer_.append(chunk, static_cast<std::size_t>(got));
        }
    }

private:
    int fd_ = -1;
    bool connected_ = false;
    std::string buffer_;
};

const char* kPdSetup[] = {"game 2 2 2", "payoffs 3 3 -5 5 5 -5 -3 -3", "profile 1 1",
                          "mode serial"};

void setup_pd(TestClient& client) {
    for (const char* line : kPdSetup) {
        ASSERT_TRUE(client.send_line(line));
        const auto reply = client.read_line();
        ASSERT_TRUE(reply.has_value());
        ASSERT_EQ(*reply, "ok");
    }
}

TEST(SocketFront, ServesAsksAndStreamsFrontiers) {
    RobustnessServer server;
    SocketHarness harness(server);
    {
        TestClient client(harness.port());
        ASSERT_TRUE(client.connected());
        setup_pd(client);

        ASSERT_TRUE(client.send_line("ask 1 0"));
        const auto verdict = client.read_line();
        ASSERT_TRUE(verdict.has_value());
        EXPECT_NE(verdict->find("verdict=robust status=resolved"), std::string::npos);

        ASSERT_TRUE(client.send_line("frontier 1 1"));
        std::vector<std::string> lines;
        for (int i = 0; i < 3; ++i) {
            const auto line = client.read_line();
            ASSERT_TRUE(line.has_value());
            lines.push_back(*line);
        }
        EXPECT_EQ(lines[0].rfind("col 0 ", 0), 0u) << lines[0];
        EXPECT_EQ(lines[1].rfind("col 1 ", 0), 0u) << lines[1];
        EXPECT_EQ(lines[2].rfind("done cells=", 0), 0u) << lines[2];

        ASSERT_TRUE(client.send_line("quit"));
        EXPECT_FALSE(client.read_line(std::chrono::seconds(5)).has_value());  // closed
    }
    harness.stop();
    EXPECT_EQ(harness.stats().connections, 1u);
    EXPECT_GT(harness.stats().lines, 0u);
}

TEST(SocketFront, ParserHardeningKeepsTheSessionAlive) {
    RobustnessServer server;
    SocketHarness harness(server);
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    setup_pd(client);

    ASSERT_TRUE(client.send_line("ask 99999999999999999999999999999999 0"));
    auto reply = client.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("error: integer out of range"), std::string::npos) << *reply;

    ASSERT_TRUE(client.send_line("payoffs 1/0 0 0 0 0 0 0 0"));
    reply = client.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("error: rational '1/0': zero denominator"), std::string::npos)
        << *reply;

    // The connection survived both malformed commands.
    ASSERT_TRUE(client.send_line("ask 1 0"));
    reply = client.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("verdict=robust"), std::string::npos) << *reply;
}

TEST(SocketFront, PipelineOverflowCloses) {
    RobustnessServer server;
    SocketFrontOptions options;
    options.max_pipeline = 4;
    SocketHarness harness(server);  // defaults for the control client
    SocketHarness bounded(server, options);
    TestClient client(bounded.port());
    ASSERT_TRUE(client.connected());
    // 50 commands in one write, none of their replies read: far past the
    // pipelining bound.
    std::string blast;
    for (int i = 0; i < 50; ++i) blast += "stats\n";
    ASSERT_TRUE(client.send_raw(blast));
    // Eventually the error line arrives, then EOF.
    std::optional<std::string> line;
    bool saw_overflow = false;
    while ((line = client.read_line(std::chrono::seconds(5))).has_value()) {
        if (line->find("error: pipeline overflow") != std::string::npos) saw_overflow = true;
    }
    EXPECT_TRUE(saw_overflow);
    bounded.stop();
    EXPECT_EQ(bounded.stats().pipeline_closes, 1u);
}

TEST(SocketFront, ReadDeadlineReapsSilentConnections) {
    RobustnessServer server;
    SocketFrontOptions options;
    options.read_deadline = std::chrono::milliseconds(100);
    SocketHarness harness(server, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    // A partial command with no newline: the slowloris case.
    ASSERT_TRUE(client.send_raw("gam"));
    const auto reply = client.read_line(std::chrono::seconds(10));
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("error: read deadline exceeded"), std::string::npos);
    EXPECT_FALSE(client.read_line(std::chrono::seconds(5)).has_value());  // EOF
    harness.stop();
    EXPECT_EQ(harness.stats().deadline_closes, 1u);
}

TEST(SocketFront, ScheduledStreamDropSeversMidFrontier) {
    RobustnessServer server;
    FaultSchedule faults;
    faults.drop_stream_after(0, 1);  // first connection: one column, then cut
    SocketFrontOptions options;
    options.faults = &faults;
    SocketHarness harness(server, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    setup_pd(client);

    ASSERT_TRUE(client.send_line("frontier 1 1"));
    const auto first = client.read_line();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->rfind("col 0 ", 0), 0u) << *first;
    // The second column never arrives: the connection died mid-stream.
    EXPECT_FALSE(client.read_line(std::chrono::seconds(10)).has_value());
    harness.stop();
    EXPECT_EQ(harness.stats().stream_drops, 1u);
}

TEST(SocketFront, OverCapacityConnectionsAreTurnedAway) {
    RobustnessServer server;
    SocketFrontOptions options;
    options.max_connections = 1;
    SocketHarness harness(server, options);
    TestClient first(harness.port());
    ASSERT_TRUE(first.connected());
    ASSERT_TRUE(first.send_line("stats"));
    ASSERT_TRUE(first.read_line().has_value());  // the slot is provably taken
    TestClient second(harness.port());
    ASSERT_TRUE(second.connected());
    const auto reply = second.read_line(std::chrono::seconds(10));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, "error: too many connections");
    EXPECT_FALSE(second.read_line(std::chrono::seconds(5)).has_value());
    harness.stop();
    EXPECT_EQ(harness.stats().rejected, 1u);
}

}  // namespace
}  // namespace bnash::serve
