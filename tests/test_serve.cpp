// The serving layer: canonical signatures (permutation + affine
// invariance, overflow fallback), the sharded single-flight verdict
// cache, and the RobustnessServer's degradation ladder under fault
// injection — slow tasks against deadlines, poisoned (throwing) tasks,
// cancellation in flight, queue overflow shedding, cache stampedes, and
// rejected-on-shutdown draining.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/robust/robustness.h"
#include "game/catalog.h"
#include "game/normal_form.h"
#include "serve/canonical.h"
#include "serve/server.h"
#include "serve/text_front.h"
#include "util/rng.h"
#include "util/work_counters.h"

namespace bnash::serve {
namespace {

using core::CellVerdict;
using game::NormalFormGame;
using game::PureProfile;
using util::Rational;

NormalFormGame asymmetric_game() {
    NormalFormGame game({2, 3});
    util::Rng rng(99);
    for (std::uint64_t rank = 0; rank < game.num_profiles(); ++rank) {
        const PureProfile cell = game.profile_unrank(rank);
        for (std::size_t player = 0; player < 2; ++player) {
            game.set_payoff(cell, player, Rational(rng.next_int(-9, 9)));
        }
    }
    return game;
}

game::ExactMixedProfile pure(const NormalFormGame& game, const PureProfile& actions) {
    return core::as_exact_profile(game, actions);
}

// -------------------------------------------------------- canonicalization

TEST(Canonical, PlayerPermutationInvariant) {
    const NormalFormGame a = asymmetric_game();
    // The same game with the two players swapped (tensor, counts, and the
    // candidate profile carried along).
    NormalFormGame b({3, 2});
    for (std::size_t x = 0; x < 2; ++x) {
        for (std::size_t y = 0; y < 3; ++y) {
            b.set_payoff({y, x}, 0, a.payoff({x, y}, 1));
            b.set_payoff({y, x}, 1, a.payoff({x, y}, 0));
        }
    }
    const auto profile_a = pure(a, {1, 2});
    const auto profile_b = pure(b, {2, 1});
    const CanonicalSignature sig_a = canonical_signature(a, profile_a);
    const CanonicalSignature sig_b = canonical_signature(b, profile_b);
    EXPECT_TRUE(sig_a.normalized);
    EXPECT_EQ(sig_a.bytes, sig_b.bytes);
}

TEST(Canonical, AffineRescaleInvariant) {
    const NormalFormGame a = asymmetric_game();
    NormalFormGame b = a;
    for (std::uint64_t rank = 0; rank < a.num_profiles(); ++rank) {
        const PureProfile cell = a.profile_unrank(rank);
        b.set_payoff(cell, 0, a.payoff_at(rank, 0) * 3 + 5);
        b.set_payoff(cell, 1, a.payoff_at(rank, 1) * Rational(1, 2) - 7);
    }
    const auto profile = pure(a, {0, 1});
    EXPECT_EQ(canonical_signature(a, profile).bytes, canonical_signature(b, profile).bytes);
}

TEST(Canonical, PayoffAndProfileChangesChangeTheKey) {
    const NormalFormGame a = asymmetric_game();
    NormalFormGame b = a;
    b.set_payoff({0, 0}, 0, a.payoff({0, 0}, 0) + 1);
    const auto profile = pure(a, {0, 0});
    EXPECT_NE(canonical_signature(a, profile).bytes, canonical_signature(b, profile).bytes);
    EXPECT_NE(canonical_signature(a, profile).bytes,
              canonical_signature(a, pure(a, {1, 0})).bytes);
}

TEST(Canonical, QueryParametersChangeTheKey) {
    const NormalFormGame a = asymmetric_game();
    const auto profile = pure(a, {0, 0});
    const auto key = [&](std::size_t k, std::size_t t, core::GainCriterion criterion) {
        return canonical_key(a, profile, k, t, criterion);
    };
    EXPECT_NE(key(1, 0, core::GainCriterion::kAnyMemberGains),
              key(2, 0, core::GainCriterion::kAnyMemberGains));
    EXPECT_NE(key(1, 0, core::GainCriterion::kAnyMemberGains),
              key(1, 1, core::GainCriterion::kAnyMemberGains));
    EXPECT_NE(key(1, 0, core::GainCriterion::kAnyMemberGains),
              key(1, 0, core::GainCriterion::kAllMembersGain));
}

TEST(Canonical, OverflowFallsBackToRawTag) {
    // The affine span (2^62)/5 + (2^62)/3 overflows 64-bit rationals, so
    // normalization must fall back to the tagged identity serialization.
    const std::int64_t big = std::int64_t{1} << 62;
    NormalFormGame game({2, 2});
    game.set_payoff({0, 0}, 0, Rational(-big, 3));
    game.set_payoff({1, 1}, 0, Rational(big, 5));
    const auto profile = pure(game, {0, 0});
    const CanonicalSignature sig = canonical_signature(game, profile);
    EXPECT_FALSE(sig.normalized);
    EXPECT_NE(sig.bytes.find("raw"), std::string::npos);
    // Deterministic: the fallback reproduces itself.
    EXPECT_EQ(sig.bytes, canonical_signature(game, profile).bytes);
}

TEST(Canonical, SymmetricGamesFoldToOrbitSizedKeys) {
    // Two symmetry classes: players {0,1} with 2 actions, {2,3} with 3.
    // Payoffs depend only on (own class, own action, sum of all actions),
    // so the game is invariant under within-class relabelings.
    const auto payoff = [](const PureProfile& cell, std::size_t player) {
        const std::int64_t weight = player < 2 ? 3 : 5;
        std::int64_t sum = 0;
        for (const std::size_t action : cell) sum += static_cast<std::int64_t>(action);
        return Rational(static_cast<std::int64_t>(cell[player]) * weight + sum);
    };
    NormalFormGame g({2, 2, 3, 3});
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const PureProfile cell = g.profile_unrank(rank);
        for (std::size_t player = 0; player < 4; ++player) {
            g.set_payoff(cell, player, payoff(cell, player));
        }
    }
    // The same game uploaded with the players reversed.
    NormalFormGame h({3, 3, 2, 2});
    for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
        const PureProfile cell = g.profile_unrank(rank);
        PureProfile reversed(cell.rbegin(), cell.rend());
        for (std::size_t player = 0; player < 4; ++player) {
            h.set_payoff(reversed, player, g.payoff(cell, 3 - player));
        }
    }
    const CanonicalSignature sig_g = canonical_signature(g, pure(g, {1, 1, 2, 2}));
    const CanonicalSignature sig_h = canonical_signature(h, pure(h, {2, 2, 1, 1}));
    // Both uploads fold to the SAME orbit-sized ("sym:"-tagged) key.
    EXPECT_NE(sig_g.bytes.find(":sym:"), std::string::npos);
    EXPECT_EQ(sig_g.bytes, sig_h.bytes);
    // An asymmetric game never takes the symmetry path.
    const NormalFormGame plain = asymmetric_game();
    EXPECT_EQ(canonical_signature(plain, pure(plain, {0, 0})).bytes.find(":sym:"),
              std::string::npos);
}

// ----------------------------------------------------------- verdict cache

TEST(VerdictCacheTest, SingleFlightRoles) {
    VerdictCache cache(4);
    auto first = cache.admit("key");
    ASSERT_EQ(first.role, VerdictCache::Role::kLeader);
    auto second = cache.admit("key");
    ASSERT_EQ(second.role, VerdictCache::Role::kFollower);
    cache.fulfill("key", CellVerdict::kBroken);
    EXPECT_EQ(second.pending.get(), CellVerdict::kBroken);
    auto third = cache.admit("key");
    EXPECT_EQ(third.role, VerdictCache::Role::kHit);
    EXPECT_EQ(third.verdict, CellVerdict::kBroken);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.waits, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(VerdictCacheTest, DegradedResultsAreNotMemoized) {
    VerdictCache cache(1);
    auto leader = cache.admit("key");
    ASSERT_EQ(leader.role, VerdictCache::Role::kLeader);
    auto follower = cache.admit("key");
    cache.fulfill("key", CellVerdict::kUnknown);
    // The stampede still resolves (degradation is shared)...
    EXPECT_EQ(follower.pending.get(), CellVerdict::kUnknown);
    // ...but a later request recomputes instead of inheriting kUnknown.
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
}

TEST(VerdictCacheTest, FailurePropagatesAndDropsTheEntry) {
    VerdictCache cache(1);
    ASSERT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
    auto follower = cache.admit("key");
    cache.fail("key", std::make_exception_ptr(std::runtime_error("poisoned")));
    EXPECT_THROW(follower.pending.get(), std::runtime_error);
    EXPECT_EQ(cache.admit("key").role, VerdictCache::Role::kLeader);
}

TEST(VerdictCacheTest, ClearKeepsInFlightEntries) {
    VerdictCache cache(2);
    ASSERT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
    ASSERT_EQ(cache.admit("flying").role, VerdictCache::Role::kLeader);
    cache.clear();
    EXPECT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);     // dropped
    EXPECT_EQ(cache.admit("flying").role, VerdictCache::Role::kFollower);  // kept
    cache.fulfill("flying", CellVerdict::kRobust);
}

TEST(VerdictCacheTest, CapacityEvictsLeastRecentlyUsed) {
    VerdictCache cache(1, 2);  // one shard so the whole cap is one slice
    EXPECT_EQ(cache.capacity(), 2u);
    ASSERT_EQ(cache.admit("a").role, VerdictCache::Role::kLeader);
    cache.fulfill("a", CellVerdict::kRobust);
    ASSERT_EQ(cache.admit("b").role, VerdictCache::Role::kLeader);
    cache.fulfill("b", CellVerdict::kBroken);
    // Touch "a" so "b" becomes the least recently used entry.
    EXPECT_EQ(cache.admit("a").role, VerdictCache::Role::kHit);
    ASSERT_EQ(cache.admit("c").role, VerdictCache::Role::kLeader);
    cache.fulfill("c", CellVerdict::kRobust);  // over capacity: "b" goes
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.admit("a").role, VerdictCache::Role::kHit);
    EXPECT_EQ(cache.admit("c").role, VerdictCache::Role::kHit);
    EXPECT_EQ(cache.admit("b").role, VerdictCache::Role::kLeader);  // evicted
    cache.fulfill("b", CellVerdict::kBroken);
}

TEST(VerdictCacheTest, InFlightEntriesAreNeverEvicted) {
    VerdictCache cache(1, 1);
    ASSERT_EQ(cache.admit("flying").role, VerdictCache::Role::kLeader);
    ASSERT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
    // In-flight entries don't count against the cap and can't be victims:
    // the stampede on "flying" stays single-flight.
    EXPECT_EQ(cache.stats().evictions, 0u);
    auto follower = cache.admit("flying");
    ASSERT_EQ(follower.role, VerdictCache::Role::kFollower);
    cache.fulfill("flying", CellVerdict::kBroken);
    EXPECT_EQ(follower.pending.get(), CellVerdict::kBroken);
    // Memoizing "flying" pushed the shard over its slice: "done" (the
    // older complete entry) is the victim.
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.admit("flying").role, VerdictCache::Role::kHit);
    EXPECT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
}

TEST(VerdictCacheTest, DegradedResultsDoNotConsumeCapacity) {
    VerdictCache cache(1, 1);
    ASSERT_EQ(cache.admit("done").role, VerdictCache::Role::kLeader);
    cache.fulfill("done", CellVerdict::kRobust);
    ASSERT_EQ(cache.admit("vague").role, VerdictCache::Role::kLeader);
    cache.fulfill("vague", CellVerdict::kUnknown);  // never memoized
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.admit("done").role, VerdictCache::Role::kHit);
}

// ----------------------------------------------------------------- server

QueryRequest pd_request(std::size_t action, std::size_t k = 1, std::size_t t = 0) {
    QueryRequest request;
    request.game = game::catalog::prisoners_dilemma();
    request.profile = pure(request.game, PureProfile(2, action));
    request.k = k;
    request.t = t;
    return request;
}

TEST(Server, ResolvesExactVerdicts) {
    RobustnessServer server;
    // (D, D) is the PD's Nash equilibrium: (1,0)-robust.
    const QueryResponse robust = server.query(pd_request(1));
    EXPECT_EQ(robust.status, QueryStatus::kResolved);
    EXPECT_EQ(robust.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(robust.cache_hit);
    // (C, C) is not: either player gains by defecting.
    const QueryResponse broken = server.query(pd_request(0));
    EXPECT_EQ(broken.status, QueryStatus::kResolved);
    EXPECT_EQ(broken.verdict, CellVerdict::kBroken);
    const auto stats = server.stats();
    EXPECT_EQ(stats.resolved, 2u);
    EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(Server, BudgetDegradesThenRetryResolvesThenMemoizes) {
    RobustnessServer server;
    QueryRequest request;
    request.game = game::catalog::attack_coordination_game(5);
    request.profile = pure(request.game, PureProfile(5, 1));
    request.k = 2;
    request.t = 1;

    request.budget_cells = 4;
    const QueryResponse degraded = server.query(request);
    EXPECT_EQ(degraded.status, QueryStatus::kDegraded);
    EXPECT_EQ(degraded.verdict, CellVerdict::kUnknown);
    EXPECT_GT(degraded.cells_charged, 0u);

    request.budget_cells = util::ExecutionGrant::kUnlimited;
    const QueryResponse resolved = server.query(request);
    EXPECT_EQ(resolved.status, QueryStatus::kResolved);
    EXPECT_EQ(resolved.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(resolved.cache_hit);  // the degraded answer was not cached

    const util::WorkCounters before = util::work_counters_snapshot();
    const QueryResponse hit = server.query(request);
    const util::WorkCounters after = util::work_counters_snapshot();
    EXPECT_EQ(hit.status, QueryStatus::kResolved);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.cells_charged, 0u);
    // Counter-verified: a cache hit performs no sweep work at all.
    EXPECT_EQ(before.cells_visited, after.cells_visited);
    EXPECT_EQ(before.offsets_advanced, after.offsets_advanced);

    const auto stats = server.stats();
    EXPECT_EQ(stats.degraded, 1u);
    EXPECT_EQ(stats.resolved, 2u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 2u);  // degraded miss + resolving miss
}

TEST(Server, RescaledUploadHitsTheSameEntry) {
    RobustnessServer server;
    const QueryResponse first = server.query(pd_request(1));
    ASSERT_EQ(first.status, QueryStatus::kResolved);
    QueryRequest rescaled = pd_request(1);
    for (std::uint64_t rank = 0; rank < rescaled.game.num_profiles(); ++rank) {
        const PureProfile cell = rescaled.game.profile_unrank(rank);
        for (std::size_t player = 0; player < 2; ++player) {
            rescaled.game.set_payoff(cell, player,
                                     rescaled.game.payoff_at(rank, player) * 2 + 7);
        }
    }
    const QueryResponse second = server.query(rescaled);
    EXPECT_EQ(second.verdict, first.verdict);
    EXPECT_TRUE(second.cache_hit);
}

TEST(Server, BoundedCacheEvictsAndReports) {
    RobustnessServer::Options options;
    options.cache_shards = 1;
    options.cache_capacity = 1;
    RobustnessServer server(options);
    ASSERT_EQ(server.query(pd_request(1)).status, QueryStatus::kResolved);
    ASSERT_EQ(server.query(pd_request(0)).status, QueryStatus::kResolved);
    EXPECT_EQ(server.stats().cache_evictions, 1u);
    // The evicted entry recomputes: correctness survives bounding, only
    // the repeat-query latency changes.
    const QueryResponse repeat = server.query(pd_request(1));
    EXPECT_EQ(repeat.status, QueryStatus::kResolved);
    EXPECT_EQ(repeat.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(repeat.cache_hit);
}

TEST(Server, SlowTaskAgainstDeadlineDegrades) {
    RobustnessServer server;
    server.set_fault_hook([](const QueryRequest&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    QueryRequest request = pd_request(1);
    request.deadline = std::chrono::milliseconds(1);
    const QueryResponse response = server.query(request);
    EXPECT_EQ(response.status, QueryStatus::kDegraded);
    EXPECT_EQ(response.verdict, CellVerdict::kUnknown);
}

TEST(Server, PoisonedTaskErrorsAndRetrySucceeds) {
    RobustnessServer server;
    server.set_fault_hook(
        [](const QueryRequest&) { throw std::runtime_error("injected fault"); });
    const QueryResponse poisoned = server.query(pd_request(1));
    EXPECT_EQ(poisoned.status, QueryStatus::kError);
    EXPECT_NE(poisoned.error.find("injected fault"), std::string::npos);
    // The failure dropped the in-flight cache entry: a clean retry works.
    server.set_fault_hook(nullptr);
    const QueryResponse retry = server.query(pd_request(1));
    EXPECT_EQ(retry.status, QueryStatus::kResolved);
    EXPECT_EQ(retry.verdict, CellVerdict::kRobust);
    EXPECT_FALSE(retry.cache_hit);
    EXPECT_EQ(server.stats().errors, 1u);
}

TEST(Server, CancelInFlightDegradesInsteadOfBlocking) {
    RobustnessServer::Options options;
    options.num_workers = 1;
    RobustnessServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    server.set_fault_hook([&](const QueryRequest&) {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    RobustnessServer::Submission submission = server.submit(pd_request(1));
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return started; });
    }
    submission.grant->cancel();  // the request is mid-flight on the worker
    {
        std::unique_lock<std::mutex> lock(mutex);
        release = true;
        cv.notify_all();
    }
    const QueryResponse response = submission.result.get();
    EXPECT_EQ(response.status, QueryStatus::kDegraded);
    EXPECT_EQ(response.verdict, CellVerdict::kUnknown);
    EXPECT_EQ(server.stats().degraded, 1u);
}

TEST(Server, FullQueueShedsWithRetryAfter) {
    RobustnessServer::Options options;
    options.num_workers = 1;
    options.queue_capacity = 1;
    options.retry_after_ms = 25;
    RobustnessServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    server.set_fault_hook([&](const QueryRequest&) {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    // First request occupies the worker...
    RobustnessServer::Submission first = server.submit(pd_request(1));
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return started; });
    }
    // ...second fills the queue, third is shed at admission.
    RobustnessServer::Submission second = server.submit(pd_request(0));
    RobustnessServer::Submission third = server.submit(pd_request(1, 2, 0));
    const QueryResponse shed = third.result.get();
    EXPECT_EQ(shed.status, QueryStatus::kRejected);
    EXPECT_GE(shed.retry_after_ms, 25u);
    {
        std::unique_lock<std::mutex> lock(mutex);
        release = true;
        cv.notify_all();
    }
    EXPECT_EQ(first.result.get().status, QueryStatus::kResolved);
    EXPECT_EQ(second.result.get().status, QueryStatus::kResolved);
    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.rejected, 1u);
}

TEST(Server, CacheStampedeIsSingleFlight) {
    RobustnessServer::Options options;
    options.num_workers = 3;
    RobustnessServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> leaders{0};
    server.set_fault_hook([&](const QueryRequest&) {
        leaders.fetch_add(1);  // only cache leaders reach the hook
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
    });
    RobustnessServer::Submission a = server.submit(pd_request(1));
    RobustnessServer::Submission b = server.submit(pd_request(1));
    RobustnessServer::Submission c = server.submit(pd_request(1));
    // Wait until both non-leaders are parked on the leader's future.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().stampede_waits < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(server.stats().stampede_waits, 2u);
    {
        std::unique_lock<std::mutex> lock(mutex);
        release = true;
        cv.notify_all();
    }
    for (auto* submission : {&a, &b, &c}) {
        const QueryResponse response = submission->result.get();
        EXPECT_EQ(response.status, QueryStatus::kResolved);
        EXPECT_EQ(response.verdict, CellVerdict::kRobust);
    }
    EXPECT_EQ(leaders.load(), 1);  // one sweep served the whole burst
    EXPECT_EQ(server.stats().cache_misses, 1u);
}

TEST(Server, ShutdownRejectsQueuedRequests) {
    std::future<QueryResponse> queued_1;
    std::future<QueryResponse> queued_2;
    std::future<QueryResponse> in_flight;
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    bool release = false;
    std::thread releaser;
    {
        RobustnessServer::Options options;
        options.num_workers = 1;
        options.queue_capacity = 8;
        RobustnessServer server(options);
        server.set_fault_hook([&](const QueryRequest&) {
            std::unique_lock<std::mutex> lock(mutex);
            started = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        });
        in_flight = server.submit(pd_request(1)).result;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return started; });
        }
        queued_1 = server.submit(pd_request(0)).result;
        queued_2 = server.submit(pd_request(1, 2, 0)).result;
        // Unblock the worker well after ~RobustnessServer() has latched
        // stopping; the in-flight request finishes, the queued ones drain
        // as rejected.
        releaser = std::thread([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            std::unique_lock<std::mutex> lock(mutex);
            release = true;
            cv.notify_all();
        });
    }
    releaser.join();
    EXPECT_EQ(in_flight.get().status, QueryStatus::kResolved);
    EXPECT_EQ(queued_1.get().status, QueryStatus::kRejected);
    EXPECT_EQ(queued_2.get().status, QueryStatus::kRejected);
}

// ------------------------------------------------------------- text front

TEST(TextFront, ServesTheLineProtocol) {
    RobustnessServer server;
    std::istringstream in(
        "# prisoners dilemma\n"
        "game 2 2 2\n"
        "payoffs 3 3 -5 5 5 -5 -3 -3\n"
        "profile 1 1\n"
        "ask 1 0\n"
        "profile 0 0\n"
        "ask 1 0\n"
        "mixed 0 1/2 1/2\n"
        "bogus command\n"
        "ask 1 0 999999\n"
        "stats\n"
        "quit\n"
        "ask 1 0\n");
    std::ostringstream out;
    const std::size_t asks = run_text_front(in, out, server);
    EXPECT_EQ(asks, 3u);  // the post-quit ask is never read
    const std::string text = out.str();
    EXPECT_NE(text.find("verdict=robust status=resolved"), std::string::npos);
    EXPECT_NE(text.find("verdict=broken status=resolved"), std::string::npos);
    EXPECT_NE(text.find("error: unknown command 'bogus'"), std::string::npos);
    EXPECT_NE(text.find("accepted=3"), std::string::npos);
}

TEST(TextFront, ReportsParseErrorsAndContinues) {
    RobustnessServer server;
    std::istringstream in(
        "ask 1 0\n"
        "game 2 2\n"
        "game 2 2 2\n"
        "payoffs 1 2 3\n"
        "profile 9 9\n"
        "profile 1 1\n"
        "ask 1 0\n");
    std::ostringstream out;
    const std::size_t asks = run_text_front(in, out, server);
    EXPECT_EQ(asks, 1u);
    const std::string text = out.str();
    EXPECT_NE(text.find("error: no game declared"), std::string::npos);
    EXPECT_NE(text.find("error: game: expected 2 action counts"), std::string::npos);
    EXPECT_NE(text.find("error: payoffs: expected 8 values"), std::string::npos);
    EXPECT_NE(text.find("error: profile: action out of range"), std::string::npos);
    EXPECT_NE(text.find("verdict="), std::string::npos);
}

}  // namespace
}  // namespace bnash::serve
