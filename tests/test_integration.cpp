// Cross-module integration tests: the full pipelines a downstream user
// would run, wired end-to-end. Mediator -> cheap talk -> underlying game
// utilities; game-theoretic security across utility rescalings; repeated
// meta-games vs the machine-game analysis; extensive-form backward
// induction vs generalized Nash equilibrium.
#include <gtest/gtest.h>

#include "core/awareness/awareness_game.h"
#include "core/machine/frpd.h"
#include "core/robust/cheap_talk.h"
#include "core/robust/mediator.h"
#include "core/robust/robustness.h"
#include "game/catalog.h"
#include "repeated/repeated_game.h"
#include "solver/correlated.h"
#include "solver/support_enumeration.h"
#include "solver/verification.h"
#include "util/combinatorics.h"

namespace bnash {
namespace {

using util::Rational;

// ------------------------------------------------- mediator -> utilities

TEST(Integration, CheapTalkDeliversTheMediatedUtility) {
    // The whole point of Section 2: players who replace the mediator by
    // cheap talk end up with the SAME utilities. Run the protocol for each
    // general type, play the resulting actions in the Bayesian game, and
    // average with the prior: must equal the mediated truthful value.
    constexpr std::size_t kN = 7;
    const auto g = game::catalog::byzantine_agreement_game(kN);
    const auto policy = core::MediatorPolicy::byzantine_consensus(g);
    core::CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    const std::vector<core::CheapTalkBehavior> honest(kN, core::CheapTalkBehavior::kHonest);

    Rational total{0};
    for (const std::size_t pref : {0u, 1u}) {
        game::TypeProfile types(kN, 0);
        types[0] = pref;
        const auto outcome = core::run_cheap_talk(policy, types, honest, params);
        total += g.prior(types) * g.payoff(types, outcome.actions, 1);
    }
    EXPECT_EQ(total, policy.truthful_value(1));
}

TEST(Integration, GameTheoreticSecurityAcrossUtilityRescalings) {
    // Section 3's security definition quantifies over utility functions:
    // "for all choices of the utility function, if it is a Nash
    // equilibrium to play with the mediator ... it is also a Nash
    // equilibrium to use Pi". Our protocol induces the mediator's exact
    // action distribution independently of utilities, so the implication
    // holds for every rescaling; spot-check three.
    constexpr std::size_t kN = 7;
    for (const std::int64_t scale : {1, 3, 10}) {
        game::BayesianGame g({2, 1, 1, 1, 1, 1, 1}, std::vector<std::size_t>(kN, 2));
        game::TypeProfile types(kN, 0);
        for (const std::size_t pref : {0u, 1u}) {
            types[0] = pref;
            g.set_prior(types, Rational{1, 2});
            util::product_for_each(g.action_counts(), [&](const game::PureProfile& actions) {
                bool agree = true;
                for (const auto a : actions) agree &= (a == actions[0]);
                const Rational value =
                    agree ? Rational{scale * (actions[0] == pref ? 2 : 1)} : Rational{0};
                for (std::size_t player = 0; player < kN; ++player) {
                    g.set_payoff(types, actions, player, value);
                }
                return true;
            });
        }
        const auto policy = core::MediatorPolicy::byzantine_consensus(g);
        EXPECT_TRUE(policy.is_truthful_equilibrium()) << "scale " << scale;
        core::CheapTalkParams params;
        params.k = 1;
        params.t = 1;
        const std::vector<core::CheapTalkBehavior> honest(kN,
                                                          core::CheapTalkBehavior::kHonest);
        types[0] = 1;
        const auto outcome = core::run_cheap_talk(policy, types, honest, params);
        const auto expected = policy.induced_action_distribution(types);
        EXPECT_EQ(expected[util::product_rank(g.action_counts(), outcome.actions)],
                  Rational{1})
            << "scale " << scale;
    }
}

TEST(Integration, CheapTalkDegradesGracefullyBeyondCrashBudget) {
    // Silence half the players: the active set drops below 2(k+t)+1, the
    // evaluation aborts, and every honest player consistently falls back
    // to the default action instead of disagreeing.
    constexpr std::size_t kN = 7;
    const auto g = game::catalog::byzantine_agreement_game(kN);
    const auto policy = core::MediatorPolicy::byzantine_consensus(g);
    core::CheapTalkParams params;
    params.k = 1;
    params.t = 1;
    std::vector<core::CheapTalkBehavior> behaviors(kN, core::CheapTalkBehavior::kHonest);
    for (std::size_t i = 3; i < kN; ++i) behaviors[i] = core::CheapTalkBehavior::kSilent;
    game::TypeProfile types(kN, 0);
    types[0] = 1;
    const auto outcome = core::run_cheap_talk(policy, types, behaviors, params);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_FALSE(outcome.recommendations[i].has_value());
        EXPECT_EQ(outcome.actions[i], 0u);  // common default, no split decisions
    }
}

// -------------------------------------------- robustness <-> Nash oracles

TEST(Integration, RobustnessAndNashOraclesAgreeAcrossCatalog) {
    const game::NormalFormGame games[] = {
        game::catalog::prisoners_dilemma(), game::catalog::matching_pennies(),
        game::catalog::chicken(), game::catalog::stag_hunt(),
        game::catalog::attack_coordination_game(3)};
    for (const auto& g : games) {
        util::product_for_each(g.action_counts(), [&](const game::PureProfile& profile) {
            EXPECT_EQ(solver::is_pure_nash(g, profile),
                      core::is_kt_robust(g, core::as_exact_profile(g, profile), 1, 0));
            return true;
        });
    }
}

// --------------------------------------- repeated games <-> machine games

TEST(Integration, MetaGameAndMachineAnalysisAgreeOnTft) {
    // The repeated-game meta-game (no charges) and the machine-game
    // analysis (with charges) must tell one coherent story: without
    // memory prices the defect-last machine breaks (TfT, TfT); with a
    // sufficient price it does not.
    const std::size_t rounds = 50;
    repeated::RepeatedGame frpd(game::catalog::prisoners_dilemma(), rounds);
    auto set = core::frpd_machine_set(rounds);
    std::size_t tft_index = set.size();
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i]->name() == "TitForTat") tft_index = i;
    }
    ASSERT_LT(tft_index, set.size());
    const auto meta = frpd.meta_game(set);
    EXPECT_FALSE(solver::is_pure_nash(meta, {tft_index, tft_index}));

    core::FrpdParams params;
    params.rounds = rounds;
    params.delta = 0.9;
    params.memory_price = 0.0;
    EXPECT_FALSE(core::analyze_tft_equilibrium(params).tft_pair_is_equilibrium);
    params.memory_price = 0.5;
    EXPECT_TRUE(core::analyze_tft_equilibrium(params).tft_pair_is_equilibrium);
}

// ------------------------------------- extensive form <-> awareness games

TEST(Integration, BackwardInductionProfileIsGeneralizedNash) {
    const auto tree = game::catalog::figure1_game();
    const auto spe = tree.backward_induction();
    const auto aware = core::AwarenessGame::canonical(tree);
    core::AwarenessGame::Profile profile(1);
    for (std::size_t is = 0; is < tree.num_info_sets(); ++is) {
        profile[0].push_back(
            game::pure_as_mixed(spe.strategy[is], tree.info_set(is).num_actions()));
    }
    EXPECT_TRUE(aware.is_generalized_nash(profile));
}

// ------------------------------------------- correlated <-> Nash <-> LP

TEST(Integration, CorrelatedPolytopeContainsAllSolverOutputs) {
    // Every equilibrium produced by any Nash solver embeds into the CE
    // polytope of the same game.
    const auto g = game::catalog::battle_of_the_sexes();
    for (const auto& eq : solver::support_enumeration(g)) {
        const auto mu = solver::product_distribution(g, game::to_double(eq.profile));
        EXPECT_TRUE(solver::is_correlated_equilibrium(g, mu, 1e-6));
    }
    const auto ce =
        solver::solve_correlated_equilibrium(g, solver::CeObjective::kSocialWelfare);
    ASSERT_TRUE(ce.has_value());
    // And the welfare-optimal CE weakly dominates each of them.
    for (const auto& eq : solver::support_enumeration(g)) {
        EXPECT_GE(ce->objective_value + 1e-6, (eq.payoffs[0] + eq.payoffs[1]).to_double());
    }
}

}  // namespace
}  // namespace bnash
