// Symmetry layer: OrbitWalker combinatorics, SymmetryGroup detection /
// declaration / refinement, orbit-native payoff entry points, and the
// OrbitSweep robustness engine cross-validated against the dense
// CoalitionSweep on ~100 seeded symmetric games — verdict grids and
// max_kt boundary structs must MATCH the dense engine's, and every
// orbit witness must re-verify on the expanded tensor. Degenerate
// (all-singleton) groups must route to the dense sweep observationally
// unchanged, witnesses included. Large-n declared groups (the anonymous
// games' single class) run frontiers no tensor could hold, checked
// against the anonymous closed-form boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/robust/anonymous.h"
#include "core/robust/coalition_sweep.h"
#include "core/robust/orbit_sweep.h"
#include "core/robust/robustness.h"
#include "game/game_view.h"
#include "game/normal_form.h"
#include "game/payoff_engine.h"
#include "game/strategy.h"
#include "game/symmetry.h"
#include "util/orbit_walker.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bnash::core {
namespace {

using game::ExactMixedProfile;
using game::GameView;
using game::NormalFormGame;
using game::PureProfile;
using game::QuotientGame;
using game::SweepMode;
using game::SymmetryGroup;
using util::OrbitWalker;
using util::Rational;

// ----------------------------------------------------- OrbitWalker units

TEST(OrbitWalkerTest, CompositionRankUnrankRoundTrip) {
    const std::size_t total = 4, parts = 3;
    const std::uint64_t count = util::composition_count(total, parts);
    EXPECT_EQ(count, 15u);  // C(6, 2)
    std::vector<std::size_t> counts;
    std::vector<std::size_t> prev;
    for (std::uint64_t rank = 0; rank < count; ++rank) {
        util::composition_unrank(total, parts, rank, counts);
        EXPECT_EQ(util::composition_rank(total, counts), rank);
        std::size_t sum = 0;
        for (const std::size_t c : counts) sum += c;
        EXPECT_EQ(sum, total);
        if (rank == 0) {
            EXPECT_EQ(counts, (std::vector<std::size_t>{4, 0, 0}));
        } else {
            EXPECT_TRUE(counts < prev);  // descending lex
        }
        prev = counts;
    }
}

TEST(OrbitWalkerTest, MultiplicitiesAreMultinomials) {
    EXPECT_EQ(util::orbit_multiplicity({2, 1, 1}), 12u);
    EXPECT_EQ(util::orbit_multiplicity({4, 0, 0}), 1u);
    EXPECT_EQ(util::orbit_multiplicity({2, 2}), 6u);
}

TEST(OrbitWalkerTest, AdvanceCoversAllOrbitsAndSeekAgrees) {
    OrbitWalker walker;
    walker.add_class(2, 2);  // 3 compositions
    walker.add_class(3, 2);  // 4 compositions
    ASSERT_EQ(walker.num_orbits(), 12u);

    // Record the advance() trajectory and the summed multiplicities.
    std::vector<std::vector<std::size_t>> first_digit, second_digit;
    std::uint64_t total_tuples = 0;
    walker.reset();
    std::uint64_t rank = 0;
    do {
        EXPECT_EQ(walker.rank(), rank);
        first_digit.push_back(walker.counts(0));
        second_digit.push_back(walker.counts(1));
        total_tuples += walker.orbit_size();
        ++rank;
    } while (walker.advance());
    ASSERT_EQ(rank, 12u);
    // Orbit multiplicities partition the raw tuple space 2^2 * 2^3.
    EXPECT_EQ(total_tuples, 32u);

    // seek(r) lands on the same compositions advance() reaches.
    for (std::uint64_t r = 0; r < 12; ++r) {
        OrbitWalker fresh;
        fresh.add_class(2, 2);
        fresh.add_class(3, 2);
        fresh.seek(r);
        EXPECT_EQ(fresh.rank(), r);
        EXPECT_EQ(fresh.counts(0), first_digit[r]) << "rank " << r;
        EXPECT_EQ(fresh.counts(1), second_digit[r]) << "rank " << r;
    }
}

TEST(OrbitWalkerTest, PinnedDigitsNeverAdvance) {
    OrbitWalker walker;
    walker.add_pinned_class(2, 2, {1, 1});
    walker.add_class(2, 2);
    EXPECT_EQ(walker.num_orbits(), 3u);
    walker.reset();
    std::uint64_t seen = 0;
    do {
        EXPECT_EQ(walker.counts(0), (std::vector<std::size_t>{1, 1}));
        // Pinned multiplicity (2 over {1,1}) scales every orbit.
        EXPECT_EQ(walker.orbit_size() % 2, 0u);
        ++seen;
    } while (walker.advance());
    EXPECT_EQ(seen, 3u);
    EXPECT_GT(walker.digit_moves(), 0u);
}

// ------------------------------------------------ symmetric-game helpers

// Expand a quotient + group into the concrete payoff tensor: player i in
// class c gets quotient.at(c, a_i, rank of the OTHER players' per-class
// histograms). This is the inverse of build_quotient by construction.
NormalFormGame expand_quotient(const QuotientGame& quotient, const SymmetryGroup& group) {
    const std::size_t n = group.num_players();
    const std::size_t m = quotient.num_classes();
    std::vector<std::size_t> counts(n);
    for (std::size_t i = 0; i < n; ++i) counts[i] = quotient.class_actions[group.class_of(i)];
    NormalFormGame out(counts);
    std::vector<std::vector<std::size_t>> others(m);
    for (std::uint64_t rank = 0; rank < out.num_profiles(); ++rank) {
        const PureProfile profile = out.profile_unrank(rank);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t cls = group.class_of(i);
            for (std::size_t d = 0; d < m; ++d) {
                others[d].assign(quotient.class_actions[d], 0);
            }
            for (std::size_t j = 0; j < n; ++j) {
                if (j != i) ++others[group.class_of(j)][profile[j]];
            }
            out.set_payoff(profile, i,
                           quotient.at(cls, profile[i], quotient.rank_others(cls, others)));
        }
    }
    return out;
}

QuotientGame random_quotient(util::Rng& rng, std::vector<std::size_t> class_sizes,
                             std::vector<std::size_t> class_actions) {
    QuotientGame quotient;
    quotient.class_sizes = std::move(class_sizes);
    quotient.class_actions = std::move(class_actions);
    quotient.finalize();
    quotient.payoff.resize(quotient.num_classes());
    for (std::size_t c = 0; c < quotient.num_classes(); ++c) {
        const std::size_t entries = quotient.class_actions[c] * quotient.others_orbits(c);
        quotient.payoff[c].reserve(entries);
        for (std::size_t e = 0; e < entries; ++e) {
            quotient.payoff[c].push_back(Rational{rng.next_int(-5, 5), rng.next_int(1, 2)});
        }
    }
    return quotient;
}

// Random partition of 0..n-1 into 1..3 classes with shuffled membership
// (classes are NOT index blocks, so class_of indirection is exercised).
SymmetryGroup random_group(util::Rng& rng, std::size_t n, std::vector<std::size_t>& sizes_out) {
    std::vector<std::size_t> players(n);
    for (std::size_t i = 0; i < n; ++i) players[i] = i;
    for (std::size_t i = n; i-- > 1;) {
        std::swap(players[i],
                  players[static_cast<std::size_t>(rng.next_int(0, static_cast<std::int64_t>(i)))]);
    }
    sizes_out.clear();
    std::size_t remaining = n;
    while (remaining > 0 && sizes_out.size() < 2) {
        const std::size_t s =
            static_cast<std::size_t>(rng.next_int(1, static_cast<std::int64_t>(remaining)));
        sizes_out.push_back(s);
        remaining -= s;
    }
    if (remaining > 0) sizes_out.push_back(remaining);
    std::vector<std::vector<std::size_t>> classes(sizes_out.size());
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < sizes_out.size(); ++c) {
        for (std::size_t j = 0; j < sizes_out[c]; ++j) classes[c].push_back(players[cursor++]);
    }
    SymmetryGroup group = SymmetryGroup::declared(std::move(classes), n);
    // declared() reorders classes by smallest member — report sizes in
    // the GROUP's class order, which is what quotient indexing follows.
    sizes_out.clear();
    for (const auto& members : group.classes()) sizes_out.push_back(members.size());
    return group;
}

// Dense re-evaluation of an orbit witness on the expanded tensor: the
// reported violation must be genuine as stated, whatever orbit member it
// names.
void validate_witness(const NormalFormGame& g, const PureProfile& base,
                      const RobustnessViolation& v, std::size_t k, std::size_t t,
                      GainCriterion criterion, const std::string& label) {
    ASSERT_LE(v.coalition.size(), k) << label;
    ASSERT_LE(v.faulty.size(), t) << label;
    ASSERT_EQ(v.coalition.size(), v.coalition_deviation.size()) << label;
    ASSERT_EQ(v.faulty.size(), v.faulty_deviation.size()) << label;
    PureProfile after = base;
    for (std::size_t i = 0; i < v.coalition.size(); ++i) {
        after[v.coalition[i]] = v.coalition_deviation[i];
    }
    for (std::size_t i = 0; i < v.faulty.size(); ++i) {
        after[v.faulty[i]] = v.faulty_deviation[i];
    }
    for (const std::size_t member : v.coalition) {
        EXPECT_TRUE(std::find(v.faulty.begin(), v.faulty.end(), member) == v.faulty.end())
            << label << ": coalition and faulty overlap";
    }
    const Rational post = g.payoff(after, v.witness_player);
    EXPECT_EQ(v.payoff_after, post.to_double()) << label;
    if (v.coalition.empty()) {
        // Immunity violation: an OUTSIDER is hurt relative to the full
        // candidate profile.
        EXPECT_TRUE(std::find(v.faulty.begin(), v.faulty.end(), v.witness_player) ==
                    v.faulty.end())
            << label;
        const Rational before = g.payoff(base, v.witness_player);
        EXPECT_EQ(v.payoff_before, before.to_double()) << label;
        EXPECT_LT(post, before) << label;
    } else {
        // Resilience violation: the reference is the coalition playing
        // the CANDIDATE against the same faulty deviation.
        PureProfile reference = base;
        for (std::size_t i = 0; i < v.faulty.size(); ++i) {
            reference[v.faulty[i]] = v.faulty_deviation[i];
        }
        EXPECT_TRUE(std::find(v.coalition.begin(), v.coalition.end(), v.witness_player) !=
                    v.coalition.end())
            << label;
        const Rational before = g.payoff(reference, v.witness_player);
        EXPECT_EQ(v.payoff_before, before.to_double()) << label;
        EXPECT_GT(post, before) << label;
        if (criterion == GainCriterion::kAllMembersGain) {
            for (const std::size_t member : v.coalition) {
                EXPECT_GT(g.payoff(after, member), g.payoff(reference, member)) << label;
            }
        }
    }
}

void expect_same_verdict_grid(const FrontierVerdict& a, const FrontierVerdict& b,
                              const std::string& label) {
    ASSERT_EQ(a.max_k, b.max_k) << label;
    ASSERT_EQ(a.max_t, b.max_t) << label;
    for (std::size_t k = 0; k <= a.max_k; ++k) {
        for (std::size_t t = 0; t <= a.max_t; ++t) {
            EXPECT_EQ(a.verdict(k, t), b.verdict(k, t))
                << label << " cell (" << k << "," << t << ")";
        }
    }
}

// ------------------------------------------------- SymmetryGroup basics

TEST(SymmetryGroupTest, DeclaredValidatesPartitions) {
    EXPECT_THROW((void)SymmetryGroup::declared({{0, 1}, {1, 2}}, 3), std::invalid_argument);
    EXPECT_THROW((void)SymmetryGroup::declared({{0, 1}}, 3), std::invalid_argument);
    const SymmetryGroup group = SymmetryGroup::declared({{2, 0}, {1}}, 3);
    EXPECT_EQ(group.num_classes(), 2u);
    EXPECT_EQ(group.class_of(0), group.class_of(2));
    EXPECT_NE(group.class_of(0), group.class_of(1));
    EXPECT_FALSE(group.is_trivial());
    EXPECT_TRUE(SymmetryGroup::trivial(3).is_trivial());
}

TEST(SymmetryGroupTest, DetectFindsDeclaredStructureAndVerifies) {
    util::Rng rng{7101};
    std::vector<std::size_t> sizes;
    const SymmetryGroup declared = random_group(rng, 5, sizes);
    std::vector<std::size_t> actions(sizes.size());
    for (auto& a : actions) a = 2;
    const QuotientGame quotient = random_quotient(rng, sizes, actions);
    const NormalFormGame g = expand_quotient(quotient, declared);
    const GameView view = GameView::full(g);

    EXPECT_TRUE(declared.verify(view));
    const SymmetryGroup detected = SymmetryGroup::detect(view);
    EXPECT_TRUE(detected.verify(view));
    // Detection recovers at least the declared exchangeability: players
    // sharing a declared class are detected together.
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = i + 1; j < 5; ++j) {
            if (declared.class_of(i) == declared.class_of(j)) {
                EXPECT_EQ(detected.class_of(i), detected.class_of(j));
            }
        }
    }
}

TEST(SymmetryGroupTest, RefinedBySplitsOnStrategies) {
    const SymmetryGroup group = SymmetryGroup::single_class(4);
    ExactMixedProfile profile(4);
    for (std::size_t i = 0; i < 4; ++i) {
        profile[i] = game::ExactMixedStrategy{Rational{i < 2 ? 1 : 0}, Rational{i < 2 ? 0 : 1}};
    }
    EXPECT_FALSE(group.class_constant(profile));
    const SymmetryGroup refined = group.refined_by(profile);
    EXPECT_EQ(refined.num_classes(), 2u);
    EXPECT_TRUE(refined.class_constant(profile));
    EXPECT_EQ(refined.class_of(0), refined.class_of(1));
    EXPECT_EQ(refined.class_of(2), refined.class_of(3));
    EXPECT_NE(refined.class_of(0), refined.class_of(2));
}

// -------------------------------------------- orbit payoff entry points

TEST(SymmetryPayoffs, OrbitEntryPointsMatchDenseExact) {
    util::Rng rng{41200};
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 4 + static_cast<std::size_t>(trial % 2);
        std::vector<std::size_t> sizes;
        const SymmetryGroup group = random_group(rng, n, sizes);
        std::vector<std::size_t> actions(sizes.size());
        for (auto& a : actions) a = 2 + static_cast<std::size_t>(rng.next_int(0, 1));
        const QuotientGame quotient = random_quotient(rng, sizes, actions);
        const NormalFormGame g = expand_quotient(quotient, group);
        const GameView view = GameView::full(g);
        ASSERT_TRUE(group.verify(view));

        // Class-constant mixed candidate.
        ExactMixedProfile profile(n);
        std::vector<game::ExactMixedStrategy> sigma(sizes.size());
        for (std::size_t c = 0; c < sizes.size(); ++c) {
            game::ExactMixedStrategy s(actions[c], Rational{0});
            std::int64_t total = 0;
            std::vector<std::int64_t> w(actions[c]);
            for (auto& x : w) {
                x = rng.next_int(0, 3);
                total += x;
            }
            if (total == 0) {
                w[0] = 1;
                total = 1;
            }
            for (std::size_t a = 0; a < actions[c]; ++a) s[a] = Rational{w[a], total};
            sigma[c] = s;
        }
        for (std::size_t i = 0; i < n; ++i) profile[i] = sigma[group.class_of(i)];

        const auto dense = game::expected_payoffs_exact(view, profile);
        const auto orbit = game::expected_payoffs_exact_orbit(view, group, profile);
        ASSERT_EQ(dense.size(), orbit.size());
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(dense[i], orbit[i]) << "trial " << trial << " player " << i;
        }
        const auto dense_dev = game::deviation_payoffs_all_exact(view, profile);
        const auto orbit_dev = game::deviation_payoffs_all_exact_orbit(view, group, profile);
        EXPECT_EQ(dense_dev, orbit_dev) << "trial " << trial;
    }
}

// ------------------------------------- orbit-vs-dense robustness fuzzing

TEST(OrbitSweepFuzz, VerdictsMatchDenseOnSeededSymmetricGames) {
    util::Rng rng{20260808};
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 4 + static_cast<std::size_t>(trial % 3);
        std::vector<std::size_t> sizes;
        const SymmetryGroup group = random_group(rng, n, sizes);
        std::vector<std::size_t> actions(sizes.size());
        for (auto& a : actions) a = 2 + static_cast<std::size_t>(rng.next_int(0, 1));
        const QuotientGame quotient = random_quotient(rng, sizes, actions);
        const NormalFormGame g = expand_quotient(quotient, group);
        const GameView view = GameView::full(g);
        ASSERT_TRUE(group.verify(view)) << "trial " << trial;

        // Class-constant pure candidate (the orbit-applicable shape);
        // every 7th trial breaks class-constancy to pin the dense
        // fallback's exactness.
        PureProfile base(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t cls = group.class_of(i);
            base[i] = static_cast<std::size_t>(rng.next_int(0, 0)) +
                      (static_cast<std::size_t>(trial + static_cast<int>(cls)) % actions[cls]);
        }
        const bool breaking = trial % 7 == 3 && sizes.size() < n;
        if (breaking) {
            // Flip one member of the first non-singleton class.
            for (std::size_t c = 0; c < sizes.size(); ++c) {
                if (sizes[c] < 2) continue;
                std::size_t member = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    if (group.class_of(i) == c) {
                        member = i;
                        break;
                    }
                }
                base[member] = (base[member] + 1) % actions[c];
                break;
            }
        }
        const ExactMixedProfile profile = as_exact_profile(g, base);
        const auto criterion = (trial % 3 == 0) ? GainCriterion::kAllMembersGain
                                                : GainCriterion::kAnyMemberGains;
        const std::size_t max_k = 1 + static_cast<std::size_t>(trial % static_cast<int>(n));
        const std::size_t max_t = static_cast<std::size_t>(trial % 3);
        const RobustnessOptions options{criterion, SweepMode::kAuto};
        const std::string label = "trial " + std::to_string(trial) + " n=" + std::to_string(n) +
                                  " k=" + std::to_string(max_k) + " t=" + std::to_string(max_t) +
                                  (breaking ? " (fallback)" : "");

        EXPECT_EQ(orbit_applicable(group, profile), !breaking && !group.is_trivial()) << label;

        const FrontierVerdict dense =
            batch_robustness_frontier(view, profile, max_k, max_t, options);
        const FrontierVerdict routed =
            batch_robustness_frontier(view, group, profile, max_k, max_t, options);
        if (breaking || group.is_trivial()) {
            // Dense fallback must be observationally identical, witnesses
            // included.
            EXPECT_TRUE(dense == routed) << label;
        } else {
            expect_same_verdict_grid(dense, routed, label);
            for (std::size_t k = 0; k <= max_k; ++k) {
                for (std::size_t t = 0; t <= max_t; ++t) {
                    const auto& violation = routed.violation(k, t);
                    ASSERT_EQ(violation.has_value(), dense.violation(k, t).has_value())
                        << label << " cell (" << k << "," << t << ")";
                    if (violation) {
                        validate_witness(g, base, *violation, k, t, criterion,
                                         label + " cell (" + std::to_string(k) + "," +
                                             std::to_string(t) + ")");
                    }
                }
            }
        }

        const MaxKtResult dense_walk = max_kt(view, profile, max_k, max_t, options);
        const MaxKtResult routed_walk = max_kt(view, group, profile, max_k, max_t, options);
        EXPECT_TRUE(dense_walk == routed_walk) << label;

        const auto dense_find =
            core::find_robustness_violation(view, profile, max_k, max_t, options);
        const auto routed_find =
            core::find_robustness_violation(view, group, profile, max_k, max_t, options);
        ASSERT_EQ(dense_find.has_value(), routed_find.has_value()) << label;
        EXPECT_EQ(is_kt_robust(view, group, profile, max_k, max_t, options),
                  !dense_find.has_value())
            << label;
        if (routed_find && !breaking && !group.is_trivial()) {
            validate_witness(g, base, *routed_find, max_k, max_t, criterion, label + " find");
        } else if (routed_find) {
            EXPECT_TRUE(*dense_find == *routed_find) << label;
        }
    }
}

TEST(OrbitSweepTest, DegenerateGroupRoutesToDenseUnchanged) {
    util::Rng rng{5511};
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 3;
        std::vector<std::size_t> counts(n, 2);
        NormalFormGame g(counts);
        for (std::uint64_t rank = 0; rank < g.num_profiles(); ++rank) {
            const PureProfile cell = g.profile_unrank(rank);
            for (std::size_t p = 0; p < n; ++p) {
                g.set_payoff(cell, p, Rational{rng.next_int(-6, 6), rng.next_int(1, 3)});
            }
        }
        const GameView view = GameView::full(g);
        const SymmetryGroup trivial = SymmetryGroup::trivial(n);
        PureProfile base(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            base[i] = static_cast<std::size_t>(rng.next_int(0, 1));
        }
        const ExactMixedProfile profile = as_exact_profile(g, base);
        const RobustnessOptions options{GainCriterion::kAnyMemberGains, SweepMode::kAuto};

        EXPECT_FALSE(orbit_applicable(trivial, profile));
        EXPECT_TRUE(batch_robustness_frontier(view, profile, n, 1, options) ==
                    batch_robustness_frontier(view, trivial, profile, n, 1, options))
            << "trial " << trial;
        EXPECT_TRUE(max_kt(view, profile, n, 1, options) ==
                    max_kt(view, trivial, profile, n, 1, options))
            << "trial " << trial;
        const auto dense_find = core::find_robustness_violation(view, profile, 2, 1, options);
        const auto routed_find =
            core::find_robustness_violation(view, trivial, profile, 2, 1, options);
        ASSERT_EQ(dense_find.has_value(), routed_find.has_value());
        if (dense_find) EXPECT_TRUE(*dense_find == *routed_find);
    }
}

// ------------------------------------------------ anonymous large-n path

TEST(OrbitSweepTest, SmallAnonymousQuotientMatchesDenseTensor) {
    const auto abg = AnonymousBinaryGame::attack(6);
    const NormalFormGame g = abg.to_normal_form();
    const GameView view = GameView::full(g);
    const SymmetryGroup group = SymmetryGroup::single_class(6);
    ASSERT_TRUE(group.verify(view));
    const PureProfile base(6, 0);
    const ExactMixedProfile profile = as_exact_profile(g, base);
    const RobustnessOptions options{};

    const OrbitSweep sweep(abg.quotient(), group, {0});
    const FrontierVerdict dense = batch_robustness_frontier(view, profile, 4, 2, options);
    const FrontierVerdict orbit = sweep.batch_robustness_frontier(4, 2);
    expect_same_verdict_grid(dense, orbit, "attack(6)");
    EXPECT_TRUE(max_kt(view, profile, 4, 2, options) == sweep.max_kt(4, 2)) << "attack(6)";
    for (std::size_t k = 0; k <= 4; ++k) {
        for (std::size_t t = 0; t <= 2; ++t) {
            const auto& violation = orbit.violation(k, t);
            if (violation) {
                validate_witness(g, base, *violation, k, t, GainCriterion::kAnyMemberGains,
                                 "attack(6) cell");
            }
        }
    }
}

TEST(OrbitSweepTest, LargeAnonymousFrontierMatchesClosedForms) {
    for (const bool attack : {true, false}) {
        const auto abg = attack ? AnonymousBinaryGame::attack(60)
                                : AnonymousBinaryGame::bargaining(60);
        const OrbitSweep sweep(abg.quotient(), SymmetryGroup::single_class(60), {0});
        const std::size_t max_k = 4, max_t = 2;
        const FrontierVerdict frontier = sweep.batch_robustness_frontier(max_k, max_t);
        EXPECT_TRUE(frontier.complete());

        const std::size_t breaking = abg.min_breaking_coalition(0, max_k);
        const std::size_t immunity = abg.max_immunity(0, max_t);
        ASSERT_EQ(immunity, 0u);  // both Section 2 games break 1-immunity
        for (std::size_t k = 0; k <= max_k; ++k) {
            for (std::size_t t = 0; t <= max_t; ++t) {
                const bool expect_robust = t == 0 && (breaking == 0 || k < breaking);
                EXPECT_EQ(frontier.robust(k, t), expect_robust)
                    << (attack ? "attack" : "bargaining") << " cell (" << k << "," << t << ")";
            }
        }
        // The boundary walk agrees with the grid cell for cell.
        const MaxKtResult walk = sweep.max_kt(max_k, max_t);
        for (std::size_t k = 0; k <= max_k; ++k) {
            for (std::size_t t = 0; t <= max_t; ++t) {
                EXPECT_EQ(walk.robust(k, t), frontier.robust(k, t));
            }
        }
    }
}

// ------------------------------------------- forced ranged-block split

TEST(OrbitSweepTest, ForcedSplitIsBitIdenticalToSerial) {
    const auto abg = AnonymousBinaryGame::attack(12);
    const OrbitSweep sweep(abg.quotient(), SymmetryGroup::single_class(12), {0});
    const FrontierVerdict serial = sweep.batch_robustness_frontier(
        6, 3, GainCriterion::kAnyMemberGains, SweepMode::kSerial);
    const MaxKtResult serial_walk =
        sweep.max_kt(6, 3, GainCriterion::kAnyMemberGains, SweepMode::kSerial);

    CoalitionSweep::set_intra_split_cells(4);
    CoalitionSweep::set_intra_block_cells(2);
    CoalitionSweep::set_intra_split_force(true);
    const FrontierVerdict split = sweep.batch_robustness_frontier(
        6, 3, GainCriterion::kAnyMemberGains, SweepMode::kAuto);
    const MaxKtResult split_walk =
        sweep.max_kt(6, 3, GainCriterion::kAnyMemberGains, SweepMode::kAuto);
    CoalitionSweep::set_intra_split_force(false);
    CoalitionSweep::set_intra_block_cells(CoalitionSweep::kIntraBlock);
    CoalitionSweep::set_intra_split_adaptive();

    EXPECT_TRUE(serial == split);
    EXPECT_TRUE(serial_walk == split_walk);
}

// --------------------------------------------- adaptive split threshold

TEST(IntraSplitTest, AdaptiveThresholdPolicy) {
    CoalitionSweep::set_intra_split_adaptive();
    EXPECT_FALSE(CoalitionSweep::intra_split_pinned());
    const std::uint64_t def = CoalitionSweep::kDefaultIntraSplitCells;
    const std::uint64_t floor_cells = 2 * CoalitionSweep::intra_block_cells();
    const std::size_t workers = std::max<std::size_t>(1, util::global_pool().size());

    // Saturated sweeps keep the default threshold.
    EXPECT_EQ(CoalitionSweep::sweep_intra_split_cells(2 * workers, std::uint64_t{1} << 30), def);
    // Tiny per-task scans never split regardless of task count.
    EXPECT_EQ(CoalitionSweep::sweep_intra_split_cells(1, floor_cells - 1), def);
    // Task-starved sweeps scale the threshold down, never below two
    // blocks and never above the default.
    const std::uint64_t starved =
        CoalitionSweep::sweep_intra_split_cells(1, std::uint64_t{1} << 30);
    EXPECT_LE(starved, def);
    EXPECT_GE(starved, floor_cells);

    // Pinning restores the legacy fixed threshold everywhere.
    CoalitionSweep::set_intra_split_cells(192);
    EXPECT_TRUE(CoalitionSweep::intra_split_pinned());
    EXPECT_EQ(CoalitionSweep::sweep_intra_split_cells(2 * workers, std::uint64_t{1} << 30), 192u);
    EXPECT_EQ(CoalitionSweep::sweep_intra_split_cells(1, 8), 192u);
    CoalitionSweep::set_intra_split_adaptive();
    EXPECT_FALSE(CoalitionSweep::intra_split_pinned());
    EXPECT_EQ(CoalitionSweep::intra_split_cells(), def);
}

}  // namespace
}  // namespace bnash::core
