// Tests for the scrip-system simulator (Section 5, E12): conservation,
// threshold dynamics, the welfare/money-supply curve with its crash, and
// the hoarder/altruist irrational types.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "scrip/scrip_system.h"

namespace bnash::scrip {
namespace {

ScripParams small_params() {
    ScripParams params;
    params.num_agents = 50;
    params.money_per_capita = 2.0;
    params.rounds = 40'000;
    params.alpha = 1.0;
    params.gamma = 3.0;
    params.seed = 7;
    return params;
}

TEST(Scrip, MoneyIsConservedWithoutAltruists) {
    const auto params = small_params();
    const auto result = simulate_uniform(params, 4);
    EXPECT_EQ(result.total_money, 100u);  // 50 agents * 2.0 per capita
}

TEST(Scrip, WelfareIsPositiveInAHealthyEconomy) {
    const auto result = simulate_uniform(small_params(), 4);
    EXPECT_GT(result.social_welfare_per_round, 0.0);
    EXPECT_GT(result.satisfied_fraction, 0.5);
}

TEST(Scrip, DeterministicUnderSeed) {
    const auto a = simulate_uniform(small_params(), 4);
    const auto b = simulate_uniform(small_params(), 4);
    EXPECT_EQ(a.utility, b.utility);
    EXPECT_EQ(a.final_scrip, b.final_scrip);
}

TEST(Scrip, TooMuchMoneyCrashesTheEconomy) {
    // Once every agent holds >= threshold scrip, nobody volunteers: the
    // paper's monetary crash.
    auto params = small_params();
    params.money_per_capita = 10.0;  // far above threshold 4
    const auto flush = simulate_uniform(params, 4);
    EXPECT_LT(flush.satisfied_fraction, 0.35);

    params.money_per_capita = 2.0;
    const auto healthy = simulate_uniform(params, 4);
    EXPECT_GT(healthy.satisfied_fraction, flush.satisfied_fraction);
}

TEST(Scrip, NoMoneyNoTrade) {
    auto params = small_params();
    params.money_per_capita = 0.0;
    const auto result = simulate_uniform(params, 4);
    EXPECT_DOUBLE_EQ(result.satisfied_fraction, 0.0);
}

TEST(Scrip, WelfareCurvePeaksInTheInterior) {
    // Sweep money per capita: welfare should rise from 0, peak, then fall
    // to (near) zero -- the shape of the Kash-Friedman-Halpern figure.
    auto params = small_params();
    std::vector<double> welfare;
    for (const double m : {0.0, 1.0, 2.0, 3.0, 6.0, 10.0}) {
        params.money_per_capita = m;
        welfare.push_back(simulate_uniform(params, 4).satisfied_fraction);
    }
    const auto peak = std::max_element(welfare.begin(), welfare.end());
    EXPECT_NE(peak, welfare.begin());        // not at zero money
    EXPECT_NE(peak, welfare.end() - 1);      // not at saturation
    EXPECT_GT(*peak, welfare.front() + 0.3);
    EXPECT_GT(*peak, welfare.back() + 0.3);
}

TEST(Scrip, HoardersDrainLiquidity) {
    // Hoarders volunteer but never spend: scrip accumulates on them and
    // the rest of the economy starves.
    auto params = small_params();
    std::vector<AgentSpec> specs(params.num_agents, AgentSpec{BehaviorKind::kThreshold, 4});
    for (std::size_t i = 0; i < 15; ++i) specs[i] = AgentSpec{BehaviorKind::kHoarder, 0};
    const auto with_hoarders = simulate(params, specs);
    const auto baseline = simulate_uniform(params, 4);
    EXPECT_LT(with_hoarders.satisfied_fraction + 0.05, baseline.satisfied_fraction);
    // The hoarders end up holding most of the money.
    double hoarder_scrip = 0;
    for (std::size_t i = 0; i < 15; ++i) {
        hoarder_scrip += static_cast<double>(with_hoarders.final_scrip[i]);
    }
    EXPECT_GT(hoarder_scrip / static_cast<double>(with_hoarders.total_money), 0.7);
}

TEST(Scrip, AltruistsKeepABrokeEconomyAlive) {
    // With zero money, only altruists can serve (they charge nothing).
    auto params = small_params();
    params.money_per_capita = 0.0;
    std::vector<AgentSpec> specs(params.num_agents, AgentSpec{BehaviorKind::kThreshold, 4});
    for (std::size_t i = 0; i < 5; ++i) specs[i] = AgentSpec{BehaviorKind::kAltruist, 0};
    const auto result = simulate(params, specs);
    EXPECT_GT(result.satisfied_fraction, 0.9);  // altruists always volunteer
    EXPECT_EQ(result.total_money, 0u);
}

TEST(Scrip, GiniGrowsWithHoarders) {
    auto params = small_params();
    std::vector<AgentSpec> specs(params.num_agents, AgentSpec{BehaviorKind::kThreshold, 4});
    const auto baseline = simulate(params, specs);
    for (std::size_t i = 0; i < 10; ++i) specs[i] = AgentSpec{BehaviorKind::kHoarder, 0};
    const auto skewed = simulate(params, specs);
    EXPECT_GT(skewed.scrip_gini, baseline.scrip_gini);
}

TEST(Scrip, BestResponseCurveIsComputable) {
    auto params = small_params();
    params.rounds = 20'000;
    const auto curve = threshold_best_response_curve(params, 4, 8);
    ASSERT_EQ(curve.size(), 9u);
    // Playing threshold 0 (never volunteer, so never earn, so rarely
    // consume) must be worse than some positive threshold.
    const double best = *std::max_element(curve.begin(), curve.end());
    EXPECT_GT(best, curve[0]);
}

TEST(Scrip, ParameterValidation) {
    ScripParams params;
    params.num_agents = 1;
    EXPECT_THROW((void)simulate_uniform(params, 2), std::invalid_argument);
    params = ScripParams{};
    params.gamma = 0.5;  // below alpha
    EXPECT_THROW((void)simulate_uniform(params, 2), std::invalid_argument);
}

TEST(Scrip, ZeroRoundsIsRejected) {
    // Regression: satisfied_fraction and social_welfare_per_round divide
    // by rounds; rounds == 0 used to return NaNs instead of throwing.
    auto params = small_params();
    params.rounds = 0;
    EXPECT_THROW((void)simulate_uniform(params, 4), std::invalid_argument);
}

TEST(Scrip, NegativeMoneyPerCapitaIsRejected) {
    // Regression: the initial coin count is a size_t; a negative
    // money_per_capita used to wrap it to ~2^64 coins.
    auto params = small_params();
    params.money_per_capita = -2.0;
    EXPECT_THROW((void)simulate_uniform(params, 4), std::invalid_argument);
    params.money_per_capita = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW((void)simulate_uniform(params, 4), std::invalid_argument);
}

TEST(Scrip, BestResponseCurveMatchesSerialSimulations) {
    // The pooled curve must equal candidate-by-candidate simulate() calls
    // bit for bit: common random numbers come from reseeding on
    // params.seed inside simulate(), not from shared Rng state.
    auto params = small_params();
    params.rounds = 10'000;
    const auto curve = threshold_best_response_curve(params, 4, 10);
    ASSERT_EQ(curve.size(), 11u);
    for (std::size_t candidate = 0; candidate <= 10; ++candidate) {
        std::vector<AgentSpec> specs(params.num_agents,
                                     AgentSpec{BehaviorKind::kThreshold, 4});
        specs[0] = AgentSpec{BehaviorKind::kThreshold, candidate};
        EXPECT_EQ(curve[candidate], simulate(params, specs).utility[0])
            << "candidate " << candidate;
    }
}

}  // namespace
}  // namespace bnash::scrip
