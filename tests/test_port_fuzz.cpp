// Randomized cross-validation for the PR-8 sweep ports.
//
// The mediator coalition sweep and the machine-game SupportPlan utility
// replaced exhaustive naive loops whose bodies now live on as archived
// reference implementations. On seeded random Bayesian games:
//   - MediatorPolicy::is_truthful_resilient_independent (serial AND
//     pooled) must return the exact verdict of
//     reference::is_truthful_resilient_independent, under BOTH gain
//     criteria;
//   - MachineGame::utility must equal utility_reference bit for bit
//     (same cells, same order, same product association);
//   - machine_equilibria must be identical serial vs pooled.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine/machine_game.h"
#include "core/robust/mediator.h"
#include "core/robust/robustness.h"
#include "game/bayesian.h"
#include "util/combinatorics.h"
#include "util/rng.h"

namespace bnash::core {
namespace {

using game::BayesianGame;
using game::PureProfile;
using game::SweepMode;
using game::TypeProfile;
using util::Rational;

// Random small Bayesian game: n in {2, 3}, per-player (types, actions)
// drawn from {(1,2), (2,2), (1,3)}, random rational payoffs, random
// normalized prior with occasional zero-probability type profiles.
BayesianGame random_bayesian_game(util::Rng& rng, std::size_t n) {
    std::vector<std::size_t> type_counts(n);
    std::vector<std::size_t> action_counts(n);
    for (std::size_t p = 0; p < n; ++p) {
        switch (rng.next_below(3)) {
            case 0: type_counts[p] = 1; action_counts[p] = 2; break;
            case 1: type_counts[p] = 2; action_counts[p] = 2; break;
            default: type_counts[p] = 1; action_counts[p] = 3; break;
        }
    }
    BayesianGame g(type_counts, action_counts);
    // Prior: random non-negative integer weights (zeros allowed, at least
    // one positive), normalized exactly.
    const std::uint64_t num_type_profiles = util::product_size(type_counts);
    std::vector<std::int64_t> weights(num_type_profiles);
    std::int64_t total = 0;
    for (auto& w : weights) {
        w = rng.next_int(0, 3);
        total += w;
    }
    if (total == 0) {
        weights[0] = 1;
        total = 1;
    }
    std::uint64_t row = 0;
    util::product_for_each(type_counts, [&](const TypeProfile& types) {
        g.set_prior(types, Rational{weights[row], total});
        ++row;
        util::product_for_each(action_counts, [&](const PureProfile& actions) {
            for (std::size_t p = 0; p < n; ++p) {
                g.set_payoff(types, actions, p,
                             Rational{rng.next_int(-6, 6), rng.next_int(1, 3)});
            }
            return true;
        });
        return true;
    });
    return g;
}

// Random policy: each row is a point mass or a 1/2-1/2 mix over two
// distinct action ranks.
MediatorPolicy random_policy(util::Rng& rng, const BayesianGame& g) {
    MediatorPolicy policy(g);
    const std::uint64_t num_ranks = util::product_size(g.action_counts());
    util::product_for_each(g.type_counts(), [&](const TypeProfile& types) {
        const std::uint64_t first = rng.next_below(num_ranks);
        if (rng.next_bool(0.5)) {
            policy.set_recommendation(types, util::product_unrank(g.action_counts(), first),
                                      Rational{1});
        } else {
            const std::uint64_t second = (first + 1 + rng.next_below(num_ranks - 1)) % num_ranks;
            policy.set_recommendation(types, util::product_unrank(g.action_counts(), first),
                                      Rational{1, 2});
            policy.set_recommendation(types, util::product_unrank(g.action_counts(), second),
                                      Rational{1, 2});
        }
        return true;
    });
    policy.validate();
    return policy;
}

TEST(PortFuzz, MediatorSweepMatchesReferenceOnRandomGames) {
    util::Rng rng{20260808};
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 2);
        const auto g = random_bayesian_game(rng, n);
        const auto policy = random_policy(rng, g);
        const std::string label = "trial " + std::to_string(trial) + " n=" + std::to_string(n);
        for (std::size_t k = 1; k <= std::min<std::size_t>(n, 2); ++k) {
            for (const auto criterion :
                 {GainCriterion::kAnyMemberGains, GainCriterion::kAllMembersGain}) {
                const bool expected =
                    reference::is_truthful_resilient_independent(policy, k, criterion);
                EXPECT_EQ(policy.is_truthful_resilient_independent(k, criterion,
                                                                   SweepMode::kSerial),
                          expected)
                    << label << " k=" << k << " serial";
                EXPECT_EQ(policy.is_truthful_resilient_independent(k, criterion,
                                                                   SweepMode::kAuto),
                          expected)
                    << label << " k=" << k << " pooled";
            }
        }
        // k = 1 of the sweep is exactly the single-player equilibrium check.
        EXPECT_EQ(policy.is_truthful_resilient_independent(1), policy.is_truthful_equilibrium())
            << label;
    }
}

// Random machine game over a random Bayesian base: a mix of constant,
// type-echo, uniform-random and random-table machines per player.
MachineGame random_machine_game(util::Rng& rng, const BayesianGame& g) {
    MachineCost cost;
    cost.base = 0.25;
    cost.per_state = 0.125;
    cost.randomized_surcharge = 0.5;
    MachineGame mg(g, cost);
    for (std::size_t p = 0; p < g.num_players(); ++p) {
        const std::size_t count = 2 + rng.next_below(2);
        for (std::size_t m = 0; m < count; ++m) {
            switch (rng.next_below(4)) {
                case 0:
                    mg.add_machine(p, constant_machine(rng.next_below(g.num_actions(p))));
                    break;
                case 1: mg.add_machine(p, type_echo_machine()); break;
                case 2: mg.add_machine(p, uniform_random_machine()); break;
                default: {
                    std::vector<std::size_t> table(g.num_types(p));
                    for (auto& a : table) a = rng.next_below(g.num_actions(p));
                    mg.add_machine(p, table_machine(std::move(table), "t" + std::to_string(m)));
                    break;
                }
            }
        }
    }
    return mg;
}

TEST(PortFuzz, SparseMachineUtilityMatchesReferenceExactly) {
    util::Rng rng{8812026080808ull};
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 2);
        const auto g = random_bayesian_game(rng, n);
        const auto mg = random_machine_game(rng, g);
        const std::string label = "trial " + std::to_string(trial);
        std::vector<std::size_t> radices(n);
        for (std::size_t p = 0; p < n; ++p) radices[p] = mg.num_machines(p);
        util::product_for_each(radices, [&](const std::vector<std::size_t>& profile) {
            for (std::size_t p = 0; p < n; ++p) {
                // Bitwise equality: the sparse walk visits the reference
                // loop's nonzero cells in the same order with the same
                // product association.
                EXPECT_EQ(mg.utility(profile, p), mg.utility_reference(profile, p))
                    << label << " player " << p;
            }
            return true;
        });
        EXPECT_EQ(mg.machine_equilibria(1e-9, SweepMode::kSerial),
                  mg.machine_equilibria(1e-9, SweepMode::kAuto))
            << label;
    }
}

}  // namespace
}  // namespace bnash::core
