// Tests for Section 2's solution concepts: k-resilience, t-immunity,
// (k,t)-robustness, punishment strategies, anonymous-game fast paths,
// mediator policies, and the feasibility oracle. Pins every claim the
// paper makes about its Section 2 examples (E2, E3, E5).
#include <gtest/gtest.h>

#include "core/robust/anonymous.h"
#include "core/robust/feasibility.h"
#include "core/robust/mediator.h"
#include "core/robust/robustness.h"
#include "util/combinatorics.h"
#include "game/catalog.h"
#include "solver/verification.h"

namespace bnash::core {
namespace {

using game::PureProfile;
using game::catalog::attack_coordination_game;
using game::catalog::bargaining_game;
using game::catalog::byzantine_agreement_game;
using game::catalog::correlated_types_game;
using game::catalog::prisoners_dilemma;
using util::Rational;

// ------------------------------------------------------------- resilience

TEST(Resilience, AttackGameAllZeroIsNashButNot2Resilient) {
    // The paper: "Clearly everyone playing 0 is a Nash equilibrium, but
    // any pair of players can do better by deviating and playing 1."
    const auto g = attack_coordination_game(5);
    const auto all_zero = as_exact_profile(g, PureProfile(5, 0));
    EXPECT_TRUE(is_k_resilient(g, all_zero, 1));  // it IS a Nash equilibrium
    EXPECT_FALSE(is_k_resilient(g, all_zero, 2));
    const auto violation = find_resilience_violation(g, all_zero, 2);
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->coalition.size(), 2u);
    EXPECT_EQ(violation->payoff_after, 2.0);  // the deviating pair earns 2
    EXPECT_EQ(violation->payoff_before, 1.0);
}

TEST(Resilience, BargainingGameIsKResilientForAllK) {
    // "everyone staying at the bargaining table is a k-resilient Nash
    // equilibrium for all k >= 0".
    const auto g = bargaining_game(4);
    const auto all_stay = as_exact_profile(g, PureProfile(4, 0));
    for (std::size_t k = 1; k <= 4; ++k) {
        EXPECT_TRUE(is_k_resilient(g, all_stay, k)) << "k = " << k;
    }
}

TEST(Resilience, MaxResilienceComputesTheBoundary) {
    const auto g = attack_coordination_game(5);
    const auto all_zero = as_exact_profile(g, PureProfile(5, 0));
    EXPECT_EQ(max_resilience(g, all_zero, 5), 1u);
    const auto bargaining = bargaining_game(4);
    const auto all_stay = as_exact_profile(bargaining, PureProfile(4, 0));
    EXPECT_EQ(max_resilience(bargaining, all_stay, 4), 4u);
}

TEST(Resilience, WeakCriterionIsMorePermissive) {
    // In the attack game the 2-deviation benefits BOTH members, so even the
    // all-members-gain criterion flags it.
    const auto g = attack_coordination_game(4);
    const auto all_zero = as_exact_profile(g, PureProfile(4, 0));
    RobustnessOptions weak;
    weak.criterion = GainCriterion::kAllMembersGain;
    EXPECT_FALSE(is_k_resilient(g, all_zero, 2, weak));
    // A 3-coalition where only two members gain: any-member fails it,
    // all-members tolerates it (the third member stays at 0).
    EXPECT_FALSE(is_k_resilient(g, all_zero, 3));
    EXPECT_FALSE(is_k_resilient(g, all_zero, 3, weak));  // 2-subset still gains
}

// ---------------------------------------------------------------- immunity

TEST(Immunity, BargainingGameIsNot1Immune) {
    // "all it takes is one person to leave the bargaining table for those
    // who stay to get 0."
    const auto g = bargaining_game(4);
    const auto all_stay = as_exact_profile(g, PureProfile(4, 0));
    EXPECT_FALSE(is_t_immune(g, all_stay, 1));
    const auto violation = find_immunity_violation(g, all_stay, 1);
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->faulty.size(), 1u);
    EXPECT_EQ(violation->payoff_before, 2.0);
    EXPECT_EQ(violation->payoff_after, 0.0);
}

TEST(Immunity, PrisonersDilemmaDefectIsImmune) {
    // At (D,D) the opponent's deviation to C only helps the non-deviator.
    const auto pd = prisoners_dilemma();
    const auto both_defect = as_exact_profile(pd, {1, 1});
    EXPECT_TRUE(is_t_immune(pd, both_defect, 1));
}

TEST(Immunity, AttackGameAllZeroIsNotImmune) {
    // A single faulty player switching to 1 zeroes everyone else's payoff.
    const auto g = attack_coordination_game(4);
    const auto all_zero = as_exact_profile(g, PureProfile(4, 0));
    EXPECT_FALSE(is_t_immune(g, all_zero, 1));
}

// -------------------------------------------------------------- robustness

TEST(Robustness, OneZeroRobustEqualsNash) {
    // "A Nash equilibrium is just a (1,0)-robust equilibrium."
    const auto pd = prisoners_dilemma();
    EXPECT_TRUE(is_kt_robust(pd, as_exact_profile(pd, {1, 1}), 1, 0));
    EXPECT_FALSE(is_kt_robust(pd, as_exact_profile(pd, {0, 0}), 1, 0));
    // Cross-check against the solver's Nash oracle on all pure profiles.
    const auto g = attack_coordination_game(4);
    util::product_for_each(g.action_counts(), [&](const PureProfile& profile) {
        EXPECT_EQ(solver::is_pure_nash(g, profile),
                  is_kt_robust(g, as_exact_profile(g, profile), 1, 0))
            << "disagreement on some profile";
        return true;
    });
}

TEST(Robustness, BargainingFailsOneOneRobustness) {
    const auto g = bargaining_game(4);
    const auto all_stay = as_exact_profile(g, PureProfile(4, 0));
    // k-resilient for all k but not 1-immune => not (1,1)-robust.
    EXPECT_FALSE(is_kt_robust(g, all_stay, 1, 1));
    EXPECT_TRUE(is_kt_robust(g, all_stay, 4, 0));
}

TEST(Robustness, MixedProfileSupported) {
    // Matching pennies' uniform equilibrium is (1,0)-robust and trivially
    // 1-immune (the deviator cannot change the opponent's expected 0).
    const auto mp = game::catalog::matching_pennies();
    const game::ExactMixedProfile uniform{{Rational{1, 2}, Rational{1, 2}},
                                          {Rational{1, 2}, Rational{1, 2}}};
    EXPECT_TRUE(is_kt_robust(mp, uniform, 1, 0));
    EXPECT_TRUE(is_t_immune(mp, uniform, 1));
}

// -------------------------------------------------------------- punishment

TEST(Punishment, BargainingHasNoPunishmentBelowBaseline) {
    // In the bargaining game a leaver always secures 1 > 0, so no profile
    // can push EVERY player strictly below the all-stay baseline of 2
    // while 1 deviator roams: deviator leaves and secures 1 < 2. Actually
    // all-leave gives everyone 1 < 2, and any single deviation (stay)
    // yields 0 < 2: all-leave IS a 1-punishment strategy.
    const auto g = bargaining_game(3);
    const std::vector<Rational> baseline(3, Rational{2});
    EXPECT_TRUE(is_punishment_strategy(g, PureProfile(3, 1), 1, baseline));
    const auto found = find_punishment_strategy(g, 1, baseline);
    ASSERT_TRUE(found.has_value());
    // The search returns the lexicographically first witness; any witness
    // must itself verify.
    EXPECT_TRUE(is_punishment_strategy(g, *found, 1, baseline));
}

TEST(Punishment, NoPunishmentWhenBaselineTooLow) {
    // Against baseline 0 in the attack game, a punished player can always
    // reach >= 0 (payoffs are non-negative), so nothing is strictly worse.
    const auto g = attack_coordination_game(3);
    const std::vector<Rational> baseline(3, Rational{0});
    EXPECT_FALSE(find_punishment_strategy(g, 1, baseline).has_value());
    // The parallel sweep agrees there is nothing to find.
    EXPECT_FALSE(
        find_punishment_strategy(g, 1, baseline, game::SweepMode::kAuto).has_value());
}

TEST(Punishment, SerialAndParallelAgreeOnTheRegimeGames) {
    // The paper's 2k+3t < n <= 3k+3t regime is where a (k+t)-punishment
    // strategy buys implementability: for (k,t) = (1,1) that is n = 6,
    // q = k+t = 2. The parallel candidate sweep must return the SAME
    // (lowest-rank) witness as the serial scan.
    for (const std::size_t n : {6u, 7u}) {
        const auto g = bargaining_game(n);
        const std::vector<Rational> baseline(n, Rational{2});
        const auto serial =
            find_punishment_strategy(g, 2, baseline, game::SweepMode::kSerial);
        const auto parallel =
            find_punishment_strategy(g, 2, baseline, game::SweepMode::kAuto);
        ASSERT_EQ(serial.has_value(), parallel.has_value()) << "n = " << n;
        ASSERT_TRUE(serial.has_value()) << "n = " << n;
        EXPECT_EQ(*serial, *parallel) << "n = " << n;
        EXPECT_TRUE(is_punishment_strategy(g, *serial, 2, baseline)) << "n = " << n;
        // With q = 2 roaming deviators a profile punishes iff at least 3
        // players leave (2 deviators cannot restore all-stay); the
        // lowest-rank such profile has the LAST three players leaving.
        PureProfile expected(n, 0);
        for (std::size_t i = n - 3; i < n; ++i) expected[i] = 1;
        EXPECT_EQ(*serial, expected) << "n = " << n;
    }
}

TEST(Punishment, SerialAndParallelAgreeWhenNoPunishmentExists) {
    // q = n: with EVERY player free to deviate, some deviation restores
    // the all-stay payoff of 2, so no profile can hold everyone below it.
    const auto g = bargaining_game(4);
    const std::vector<Rational> baseline(4, Rational{2});
    EXPECT_FALSE(
        find_punishment_strategy(g, 4, baseline, game::SweepMode::kSerial).has_value());
    EXPECT_FALSE(
        find_punishment_strategy(g, 4, baseline, game::SweepMode::kAuto).has_value());
}

// ---------------------------------------------------------- anonymous games

TEST(Anonymous, MatchesExactCheckersOnSmallGames) {
    for (const std::size_t n : {3u, 4u, 5u, 6u}) {
        const auto fast = AnonymousBinaryGame::attack(n);
        const auto exact = attack_coordination_game(n);
        const auto all_zero = as_exact_profile(exact, PureProfile(n, 0));
        for (std::size_t k = 1; k <= n; ++k) {
            EXPECT_EQ(fast.all_base_is_k_resilient(0, k), is_k_resilient(exact, all_zero, k))
                << "attack n=" << n << " k=" << k;
        }
        for (std::size_t t = 1; t < n; ++t) {
            EXPECT_EQ(fast.all_base_is_t_immune(0, t), is_t_immune(exact, all_zero, t))
                << "attack n=" << n << " t=" << t;
        }
    }
    for (const std::size_t n : {3u, 4u, 5u}) {
        const auto fast = AnonymousBinaryGame::bargaining(n);
        const auto exact = bargaining_game(n);
        const auto all_stay = as_exact_profile(exact, PureProfile(n, 0));
        for (std::size_t k = 1; k <= n; ++k) {
            EXPECT_EQ(fast.all_base_is_k_resilient(0, k), is_k_resilient(exact, all_stay, k));
        }
        EXPECT_EQ(fast.all_base_is_t_immune(0, 1), is_t_immune(exact, all_stay, 1));
    }
}

TEST(Anonymous, ScalesToLargeN) {
    // The whole point: n = 50 without materializing 2^50 payoffs.
    const auto attack = AnonymousBinaryGame::attack(50);
    EXPECT_TRUE(attack.all_base_is_nash(0));
    EXPECT_EQ(attack.min_breaking_coalition(0, 50), 2u);
    const auto bargaining = AnonymousBinaryGame::bargaining(50);
    EXPECT_TRUE(bargaining.all_base_is_k_resilient(0, 50));
    EXPECT_FALSE(bargaining.all_base_is_t_immune(0, 1));
}

TEST(Anonymous, ToNormalFormMatchesCatalog) {
    const auto fast = AnonymousBinaryGame::attack(4).to_normal_form();
    const auto exact = attack_coordination_game(4);
    for (std::uint64_t rank = 0; rank < exact.num_profiles(); ++rank) {
        const auto profile = exact.profile_unrank(rank);
        for (std::size_t p = 0; p < 4; ++p) {
            EXPECT_EQ(fast.payoff(profile, p), exact.payoff(profile, p));
        }
    }
}

// ---------------------------------------------------------------- mediator

TEST(Mediator, ByzantinePolicySolvesAgreementTrivially) {
    // "It is trivial to solve Byzantine agreement with a mediator."
    const auto g = byzantine_agreement_game(4);
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    policy.validate();
    // Everyone follows the general's reported preference: value 2 (full
    // agreement with the general's actual preference, every type).
    for (std::size_t player = 0; player < 4; ++player) {
        EXPECT_EQ(policy.truthful_value(player), Rational{2});
    }
    EXPECT_TRUE(policy.is_truthful_equilibrium());
}

TEST(Mediator, RevealTypesPolicyBeatsNoMediator) {
    // With the mediator each player matches the other's type: value 2
    // (vs. 1 for any unmediated strategy).
    const auto g = correlated_types_game();
    const auto policy = MediatorPolicy::reveal_types(g);
    EXPECT_EQ(policy.truthful_value(0), Rational{2});
    EXPECT_EQ(policy.truthful_value(1), Rational{2});
    EXPECT_TRUE(policy.is_truthful_equilibrium());
}

TEST(Mediator, DetectsProfitableMisreporting) {
    // A policy that rewards reporting type 1: recommending the matching
    // action only when the report is 1 makes truthful type-0 reports
    // suboptimal -- the checker must catch the misreport deviation.
    const auto g = correlated_types_game();
    MediatorPolicy policy(g);
    util::product_for_each(g.type_counts(), [&](const game::TypeProfile& types) {
        if (types[0] == 1) {
            policy.set_recommendation(types, {types[1], types[0]}, Rational{1});
        } else {
            // Punish type-0 reports with a mismatched recommendation.
            policy.set_recommendation(types, {1 - types[1], types[0]}, Rational{1});
        }
        return true;
    });
    policy.validate();
    EXPECT_FALSE(policy.is_truthful_equilibrium());
}

TEST(Mediator, InducedDistributionRowsAreDistributions) {
    const auto g = byzantine_agreement_game(3);
    const auto policy = MediatorPolicy::byzantine_consensus(g);
    const auto dist = policy.induced_action_distribution({1, 0, 0});
    Rational total{0};
    for (const auto& p : dist) total += p;
    EXPECT_EQ(total, Rational{1});
    // The mass sits on "everyone attacks" (action profile (1,1,1)).
    EXPECT_EQ(dist[util::product_rank(g.action_counts(), {1, 1, 1})], Rational{1});
}

TEST(Mediator, CoinSpaceOfDeterministicPolicyIsOne) {
    const auto g = byzantine_agreement_game(3);
    EXPECT_EQ(MediatorPolicy::byzantine_consensus(g).coin_space(), 1u);
}

TEST(Mediator, RandomizedPolicySamplesExactly) {
    const auto g = correlated_types_game();
    MediatorPolicy policy(g);
    util::product_for_each(g.type_counts(), [&](const game::TypeProfile& types) {
        policy.set_recommendation(types, {0, 0}, Rational{1, 2});
        policy.set_recommendation(types, {1, 1}, Rational{1, 2});
        return true;
    });
    policy.validate();
    EXPECT_EQ(policy.coin_space(), 2u);
    const auto rank00 = util::product_rank(g.action_counts(), {0, 0});
    const auto rank11 = util::product_rank(g.action_counts(), {1, 1});
    EXPECT_EQ(policy.sample_rank({0, 0}, 0, 2), rank00);
    EXPECT_EQ(policy.sample_rank({0, 0}, 1, 2), rank11);
}

TEST(Mediator, CoinSpaceOverflowThrowsInsteadOfWrapping) {
    // Regression: the lcm accumulation used to multiply BEFORE checking
    // the cap, so a denominator near int64 max wrapped uint64 and the
    // pair below silently returned coin space 2^19. Both guards (huge
    // single denominator; per-step lcm growth past the cap) must throw.
    const auto g = correlated_types_game();
    MediatorPolicy policy(g);
    policy.set_recommendation({0, 0}, {0, 0}, Rational{1, std::int64_t{1} << 19});
    policy.set_recommendation({0, 0}, {1, 1},
                              Rational{1, (std::int64_t{1} << 45) + 1});
    EXPECT_THROW((void)policy.coin_space(), std::logic_error);

    // Each denominator fits the cap but their lcm does not.
    MediatorPolicy lcm_blowup(g);
    lcm_blowup.set_recommendation({0, 0}, {0, 0}, Rational{1, 999'983});
    lcm_blowup.set_recommendation({0, 0}, {1, 1}, Rational{1, 2});
    EXPECT_THROW((void)lcm_blowup.coin_space(), std::logic_error);
}

TEST(Mediator, GainCriterionChangesCoalitionVerdict) {
    // Joint deviation (1,1) hands player 0 payoff 3 (> 2) and player 1
    // payoff 1 (< 2): some member gains but not all, and no singleton
    // deviation strictly gains — so the two criteria disagree exactly at
    // k = 2, on the sweep and on the archived reference alike.
    game::BayesianGame g({1, 1}, {2, 2});
    g.set_prior({0, 0}, Rational{1});
    const auto set = [&](std::size_t a0, std::size_t a1, std::int64_t u0,
                         std::int64_t u1) {
        g.set_payoff({0, 0}, {a0, a1}, 0, Rational{u0});
        g.set_payoff({0, 0}, {a0, a1}, 1, Rational{u1});
    };
    set(0, 0, 2, 2);
    set(1, 0, 2, 0);
    set(0, 1, 0, 2);
    set(1, 1, 3, 1);
    MediatorPolicy policy(g);
    policy.set_recommendation({0, 0}, {0, 0}, Rational{1});
    policy.validate();
    EXPECT_TRUE(policy.is_truthful_equilibrium());
    for (const auto mode : {game::SweepMode::kSerial, game::SweepMode::kAuto}) {
        EXPECT_FALSE(
            policy.is_truthful_resilient_independent(2, GainCriterion::kAnyMemberGains, mode));
        EXPECT_TRUE(
            policy.is_truthful_resilient_independent(2, GainCriterion::kAllMembersGain, mode));
        // Criteria coincide for singleton coalitions.
        EXPECT_TRUE(
            policy.is_truthful_resilient_independent(1, GainCriterion::kAnyMemberGains, mode));
        EXPECT_TRUE(
            policy.is_truthful_resilient_independent(1, GainCriterion::kAllMembersGain, mode));
    }
    EXPECT_FALSE(reference::is_truthful_resilient_independent(policy, 2,
                                                              GainCriterion::kAnyMemberGains));
    EXPECT_TRUE(reference::is_truthful_resilient_independent(policy, 2,
                                                             GainCriterion::kAllMembersGain));
}

TEST(Robustness, BayesianWrapperMatchesStrategicForm) {
    // Ex-ante (1,0)-robustness of a Bayesian pure profile == Bayes-Nash.
    const auto g = byzantine_agreement_game(3);
    const game::BayesianPureProfile all_zero{{0, 0}, {0}, {0}};
    EXPECT_EQ(g.is_bayes_nash(all_zero), is_kt_robust_bayesian(g, all_zero, 1, 0));
    const game::BayesianPureProfile truthful{{0, 1}, {0}, {0}};
    EXPECT_EQ(g.is_bayes_nash(truthful), is_kt_robust_bayesian(g, truthful, 1, 0));
    // Coalition version: all-zero should survive k = 2 as well (agreement
    // payoffs cannot be improved by any pair given the third holds 0).
    EXPECT_TRUE(is_kt_robust_bayesian(g, all_zero, 2, 0));
    // But it is not 1-immune: a faulty player breaking agreement hurts
    // the others.
    EXPECT_FALSE(is_kt_robust_bayesian(g, all_zero, 0, 1));
}

// -------------------------------------------------------------- feasibility

TEST(Feasibility, PaperBulletOne) {
    // n > 3k+3t: exact, bounded, no knowledge of utilities needed.
    const auto verdict = classify(7, 1, 1, {});
    EXPECT_EQ(verdict.guarantee, Guarantee::kExact);
    EXPECT_EQ(verdict.running_time, RunningTime::kBounded);
    EXPECT_FALSE(verdict.requires_utility_knowledge);
    EXPECT_EQ(verdict.theorem, "n > 3k+3t");
}

TEST(Feasibility, PaperBulletTwoAndThree) {
    // n <= 3k+3t without punishment/utilities: impossible.
    Capabilities none;
    EXPECT_EQ(classify(6, 1, 1, none).guarantee, Guarantee::kImpossible);
    // 2k+3t < n <= 3k+3t with punishment + utilities: exact, finite expected.
    Capabilities caps;
    caps.utilities_known = true;
    caps.punishment_strategy = true;
    const auto verdict = classify(6, 1, 1, caps);
    EXPECT_EQ(verdict.guarantee, Guarantee::kExact);
    EXPECT_EQ(verdict.running_time, RunningTime::kFiniteExpected);
    EXPECT_TRUE(verdict.requires_punishment);
}

TEST(Feasibility, PaperBulletFour) {
    // n <= 2k+3t: impossible even with punishment and known utilities.
    Capabilities caps;
    caps.utilities_known = true;
    caps.punishment_strategy = true;
    const auto verdict = classify(5, 1, 1, caps);
    EXPECT_EQ(verdict.guarantee, Guarantee::kImpossible);
    EXPECT_NE(verdict.theorem.find("n <= 2k+3t"), std::string::npos);
}

TEST(Feasibility, PaperBulletFiveAndSix) {
    // n > 2k+2t + broadcast: epsilon with bounded expected running time.
    Capabilities caps;
    caps.broadcast_channel = true;
    const auto ok = classify(5, 1, 1, caps);
    EXPECT_EQ(ok.guarantee, Guarantee::kEpsilon);
    EXPECT_EQ(ok.running_time, RunningTime::kBoundedExpected);
    EXPECT_TRUE(ok.uses_broadcast);
    // n <= 2k+2t: not even epsilon with broadcast.
    EXPECT_EQ(classify(4, 1, 1, caps).guarantee, Guarantee::kImpossible);
}

TEST(Feasibility, PaperBulletSevenAndEight) {
    Capabilities caps;
    caps.cryptography = true;
    // n > k+3t with crypto: epsilon-implementable. For (k,t) = (1,1),
    // n = 5 also exceeds 2k+2t = 4, so the running time stays bounded.
    const auto ok = classify(5, 1, 1, caps);
    EXPECT_EQ(ok.guarantee, Guarantee::kEpsilon);
    EXPECT_TRUE(ok.uses_cryptography);
    EXPECT_EQ(ok.running_time, RunningTime::kBoundedExpected);
    // With (k,t) = (2,1): k+3t = 5 < n = 6 <= 2k+2t = 6, so the paper's
    // caveat bites: the running time depends on utilities and epsilon.
    const auto tight = classify(6, 2, 1, caps);
    EXPECT_EQ(tight.guarantee, Guarantee::kEpsilon);
    EXPECT_EQ(tight.running_time, RunningTime::kUtilityDependent);
    // n <= k+3t: impossible with crypto alone.
    EXPECT_EQ(classify(4, 1, 1, caps).guarantee, Guarantee::kImpossible);
}

TEST(Feasibility, PaperBulletNine) {
    Capabilities caps;
    caps.cryptography = true;
    caps.pki = true;
    // n > k+t with crypto + PKI: epsilon-implementable.
    EXPECT_EQ(classify(3, 1, 1, caps).guarantee, Guarantee::kEpsilon);
    EXPECT_TRUE(classify(3, 1, 1, caps).uses_pki);
    // n <= k+t: impossible outright.
    EXPECT_EQ(classify(2, 1, 1, caps).guarantee, Guarantee::kImpossible);
}

TEST(Feasibility, NashSpecialCase) {
    // (k,t) = (1,0): a plain mediator for Nash play; tiny n suffices
    // per bullet one when n > 3.
    EXPECT_EQ(classify(4, 1, 0, {}).guarantee, Guarantee::kExact);
}

TEST(Feasibility, MonotoneInN) {
    // Fixing (k, t) and capabilities, growing n never weakens the verdict.
    Capabilities caps;
    caps.utilities_known = true;
    caps.punishment_strategy = true;
    caps.broadcast_channel = true;
    int best_seen = 0;  // 0 impossible, 1 epsilon, 2 exact
    for (std::size_t n = 2; n <= 12; ++n) {
        const auto verdict = classify(n, 1, 1, caps);
        const int strength = verdict.guarantee == Guarantee::kExact     ? 2
                             : verdict.guarantee == Guarantee::kEpsilon ? 1
                                                                        : 0;
        EXPECT_GE(strength, best_seen) << "n = " << n;
        best_seen = std::max(best_seen, strength);
    }
}

}  // namespace
}  // namespace bnash::core
